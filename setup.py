"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``.  This file exists
so that ``pip install -e .`` works in offline environments without the
``wheel`` package (pip falls back to ``setup.py develop`` with
``--no-use-pep517``).
"""

from setuptools import setup

setup()
