"""Setup shim for legacy installers.

The canonical project metadata lives in ``pyproject.toml`` (PEP 621),
including the ``src/`` layout declaration (``[tool.setuptools]``
``package-dir`` + ``packages.find``), so ``pip install -e .`` works
without the ``PYTHONPATH=src`` hack.  This file exists only so that pip
can fall back to ``setup.py develop`` in offline environments without the
``wheel`` package; it intentionally declares nothing that pyproject.toml
already does.
"""

from setuptools import setup

setup()
