"""Determinism rules: no unseeded RNG, no wall-clock decisions, no
set-order or ``id()``-order dependence in decision code.

The scheduler's correctness story is bit-for-bit equivalence between
code paths (indexed vs. linear policies, arena vs. per-tree prediction,
sharded vs. monolithic serving).  Those equivalences only hold if every
source of randomness is seeded and every ordering is explicit; one
unseeded ``default_rng()`` or iteration over a ``set`` feeding a
placement loop breaks them silently.  These rules scope themselves to
the decision-making subpackages (``core``, ``scheduler``, ``serving``,
``ml``, ``perfsim``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.engine import (
    DECISION_PACKAGES,
    Finding,
    ModuleInfo,
    Rule,
)

#: RNG factories that must receive an explicit seed.
_SEEDED_FACTORIES = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
    }
)

#: Draws from the process-global RNG state: never acceptable in decision
#: code, seeded or not (the state is shared across the whole process).
_GLOBAL_STATE_DRAWS = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.gauss",
        "random.expovariate",
        "random.seed",
        "numpy.random.seed",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.random",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.uniform",
        "numpy.random.normal",
    }
)

#: Wall-clock sources; ``time.perf_counter``/``monotonic`` stay legal
#: because they only ever feed *timing stats*, never decisions.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.today",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)

#: Reducers whose result does not depend on iteration order; a set fed
#: straight into one of these is fine.
_ORDER_INSENSITIVE = frozenset(
    {"sum", "max", "min", "len", "any", "all", "sorted", "set", "frozenset"}
)

#: Set methods that return another set.
_SET_PRODUCING_METHODS = frozenset(
    {"difference", "union", "intersection", "symmetric_difference", "copy"}
)


def _has_explicit_seed(call: ast.Call) -> bool:
    """True when the RNG factory call passes a non-``None`` seed."""

    for arg in call.args:
        if not (isinstance(arg, ast.Constant) and arg.value is None):
            return True
    for keyword in call.keywords:
        if keyword.arg is None:
            return True  # **kwargs: assume the caller plumbs a seed
        if keyword.arg in {"seed", "x", "random_state"} and not (
            isinstance(keyword.value, ast.Constant)
            and keyword.value.value is None
        ):
            return True
    return False


class UnseededRngRule(Rule):
    """Flag RNG construction without an explicit seed and any draw from
    process-global RNG state.

    Motivated by the seeded-stream equivalence gates: the sharded service
    must reproduce the monolithic scheduler decision-for-decision
    (``tests/scheduler/test_service.py``), which only holds when every
    RNG in the pipeline derives from ``ScheduleConfig.seed``.
    """

    id = "unseeded-rng"
    packages = DECISION_PACKAGES

    def check(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve(node.func)
            if name is None:
                continue
            if name in _SEEDED_FACTORIES and not _has_explicit_seed(node):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{name}() without an explicit seed; decision code "
                        "must derive all randomness from a config seed",
                    )
                )
            elif name in _GLOBAL_STATE_DRAWS:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{name}() draws from process-global RNG state; use "
                        "a seeded random.Random/numpy Generator instance",
                    )
                )
        return findings


class WallClockRule(Rule):
    """Flag wall-clock and entropy reads in decision code.

    Simulated time drives the lifecycle engine; wall-clock reads make
    replays diverge between runs.  ``time.perf_counter()`` remains legal
    for timing-only stats (e.g. ``decision_seconds``), which never feed
    back into placement (asserted by the sharded-vs-monolithic
    equivalence in ``tests/scheduler/test_service.py``).
    """

    id = "wall-clock"
    packages = DECISION_PACKAGES

    def check(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve(node.func)
            if name in _WALL_CLOCK:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{name}() reads wall-clock/entropy state; decision "
                        "code must use simulated time or seeded RNG "
                        "(time.perf_counter is fine for timing stats)",
                    )
                )
        return findings


def _call_name(node: ast.Call, module: ModuleInfo) -> Optional[str]:
    return module.resolve(node.func)


class _SetExprClassifier:
    """Decide whether an expression evaluates to a ``set`` using local,
    single-function dataflow (conservative: a name counts only if every
    assignment to it in the function is a set expression)."""

    def __init__(self, module: ModuleInfo, set_names: Set[str]) -> None:
        self.module = module
        self.set_names = set_names

    def is_set(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set(node.left) or self.is_set(node.right)
        if isinstance(node, ast.Call):
            name = _call_name(node, self.module)
            if name in {"set", "frozenset"}:
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_PRODUCING_METHODS
                and self.is_set(node.func.value)
            ):
                return True
        return False


def _function_set_names(
    func: ast.AST, module: ModuleInfo
) -> Set[str]:
    """Names assigned exclusively set-valued expressions in ``func``."""

    assigned: Dict[str, bool] = {}
    classifier = _SetExprClassifier(module, set())
    for node in ast.walk(func):
        targets: Iterable[ast.expr] = ()
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            is_set = classifier.is_set(value) if value is not None else False
            if target.id in assigned:
                assigned[target.id] = assigned[target.id] and is_set
            else:
                assigned[target.id] = is_set
        if isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
            node.target, ast.Name
        ):
            # Loop variables get reassigned arbitrary element values.
            assigned[node.target.id] = False
    return {name for name, is_set in assigned.items() if is_set}


class UnsortedSetIterRule(Rule):
    """Flag ordered iteration over set-valued expressions.

    Candidate generation pulls host ids out of ``FleetIndex`` sets; the
    policies only stay bit-for-bit equivalent to a linear scan because
    every such set is passed through an explicit sort first
    (``tests/scheduler/test_index.py`` replays randomized traces to
    prove it).  Iterating a set into a ``for`` loop, list, or ordered
    comprehension reintroduces hash-order dependence.
    """

    id = "unsorted-set-iter"
    packages = DECISION_PACKAGES

    def check(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        functions = [
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        scopes = functions or [module.tree]
        for scope in scopes:
            classifier = _SetExprClassifier(
                module, _function_set_names(scope, module)
            )
            findings.extend(self._check_scope(module, scope, classifier))
        return findings

    def _check_scope(
        self,
        module: ModuleInfo,
        scope: ast.AST,
        classifier: _SetExprClassifier,
    ) -> List[Finding]:
        findings: List[Finding] = []

        def message(kind: str) -> str:
            return (
                f"{kind} over a set has hash-dependent order; wrap the set "
                "in sorted(...) before it feeds ordered decision logic"
            )

        for node in ast.walk(scope):
            if node is not scope and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue  # nested functions get their own scope pass
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if classifier.is_set(node.iter):
                    findings.append(
                        self.finding(module, node.iter, message("for-loop"))
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                if isinstance(node, ast.GeneratorExp) and self._reduced(
                    node, scope, module
                ):
                    continue
                for generator in node.generators:
                    if classifier.is_set(generator.iter):
                        findings.append(
                            self.finding(
                                module,
                                generator.iter,
                                message("comprehension"),
                            )
                        )
            elif isinstance(node, ast.Call):
                name = _call_name(node, module)
                if name in {"list", "tuple", "enumerate"} and node.args:
                    if classifier.is_set(node.args[0]):
                        findings.append(
                            self.finding(
                                module, node.args[0], message(f"{name}()")
                            )
                        )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "extend"
                    and node.args
                    and classifier.is_set(node.args[0])
                ):
                    findings.append(
                        self.finding(
                            module, node.args[0], message(".extend()")
                        )
                    )
        return findings

    @staticmethod
    def _reduced(
        genexp: ast.GeneratorExp, scope: ast.AST, module: ModuleInfo
    ) -> bool:
        """True when the generator is the direct argument of an
        order-insensitive reducer like ``sum(... for ...)``."""

        for node in ast.walk(scope):
            if isinstance(node, ast.Call) and genexp in node.args:
                name = _call_name(node, module)
                if name in _ORDER_INSENSITIVE:
                    return True
        return False


class IdOrderingRule(Rule):
    """Flag sorting keyed on ``id()``.

    ``id()`` is a stable *memo key* (``_target_cache`` in
    ``scheduler/policies.py`` uses it that way, legitimately) but an
    unstable *ordering*: addresses vary run to run, so ``sorted(...,
    key=id)`` breaks the replay equivalences in
    ``tests/scheduler/test_service.py``.  Only ordering positions are
    flagged.
    """

    id = "id-ordering"
    packages = DECISION_PACKAGES

    def check(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve(node.func)
            is_sorter = name in {"sorted", "min", "max"} or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "sort"
            )
            if not is_sorter:
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                if self._uses_id(keyword.value, module):
                    findings.append(
                        self.finding(
                            module,
                            keyword.value,
                            "ordering keyed on id() varies across runs; "
                            "sort on a stable attribute instead",
                        )
                    )
        return findings

    @staticmethod
    def _uses_id(key: ast.expr, module: ModuleInfo) -> bool:
        if isinstance(key, ast.Name) and key.id == "id":
            return True
        if isinstance(key, ast.Lambda):
            for node in ast.walk(key.body):
                if (
                    isinstance(node, ast.Call)
                    and module.resolve(node.func) == "id"
                ):
                    return True
        return False


__all__ = [
    "IdOrderingRule",
    "UnseededRngRule",
    "UnsortedSetIterRule",
    "WallClockRule",
]
