"""Invariant-aware static analysis for the repro tree (``repro lint``).

Four rule families guard the invariants the equivalence tests probe at
runtime:

* **determinism** (``unseeded-rng``, ``wall-clock``,
  ``unsorted-set-iter``, ``id-ordering``) — every RNG seeded, no
  wall-clock decisions, no hash-order or address-order dependence in
  the decision-making subpackages;
* **wire-schema** (``wire-schema``) — ``to_dict``/``from_dict`` pairs
  round-trip every declared field;
* **memo-invalidation** (``memo-invalidation``) — mutations of memoized
  state bump the matching version/invalidator, table-driven via
  :data:`repro.analysis.invalidation.CACHE_SURFACES`;
* **pipe-safety** (``pipe-safety``, ``blocking-dispatch``) — shard
  transport payloads stay JSON-safe, and dispatch loops in the service
  fire messages through the overlapped send/gather helpers instead of
  blocking ``client.request()`` calls.

Suppress a finding inline with ``# repro-lint: disable=<rule> — reason``
or a whole file with ``# repro-lint: disable-file=<rule>``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Type

from repro.analysis.cache import DEFAULT_CACHE_NAME, LintCache
from repro.analysis.determinism import (
    IdOrderingRule,
    UnseededRngRule,
    UnsortedSetIterRule,
    WallClockRule,
)
from repro.analysis.engine import (
    ANALYZER_VERSION,
    Analyzer,
    DECISION_PACKAGES,
    Finding,
    ModuleInfo,
    Rule,
)
from repro.analysis.invalidation import (
    CACHE_SURFACES,
    CacheSurface,
    MemoInvalidationRule,
)
from repro.analysis.pipesafety import BlockingDispatchRule, PipeSafetyRule
from repro.analysis.wire import WireSchemaRule

#: Every registered rule class, keyed by rule id.  ``default_rules()``
#: instantiates all of them; ``--rules`` filters by these ids.
RULE_CLASSES: Dict[str, Type[Rule]] = {
    rule_class.id: rule_class
    for rule_class in (
        UnseededRngRule,
        WallClockRule,
        UnsortedSetIterRule,
        IdOrderingRule,
        WireSchemaRule,
        MemoInvalidationRule,
        PipeSafetyRule,
        BlockingDispatchRule,
    )
}


def default_rules() -> List[Rule]:
    """One instance of every registered rule, in registration order."""

    return [rule_class() for rule_class in RULE_CLASSES.values()]


def rules_named(names: Iterable[str]) -> List[Rule]:
    """Instantiate the rules with the given ids; unknown ids raise."""

    rules: List[Rule] = []
    for name in names:
        try:
            rules.append(RULE_CLASSES[name]())
        except KeyError:
            known = ", ".join(sorted(RULE_CLASSES))
            raise ValueError(f"unknown rule {name!r}; known rules: {known}")
    return rules


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Convenience wrapper: analyze one source string."""

    selected = rules_named(rules) if rules is not None else default_rules()
    return Analyzer(selected).analyze_source(source, path)


__all__ = [
    "ANALYZER_VERSION",
    "Analyzer",
    "CACHE_SURFACES",
    "CacheSurface",
    "DECISION_PACKAGES",
    "DEFAULT_CACHE_NAME",
    "Finding",
    "LintCache",
    "ModuleInfo",
    "RULE_CLASSES",
    "Rule",
    "analyze_source",
    "default_rules",
    "rules_named",
]
