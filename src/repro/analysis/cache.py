"""Per-file analysis result cache keyed on content hash.

A clean ``repro lint`` run in CI should cost roughly one tree walk: the
cache maps ``sha256(signature, path, source)`` to the JSON-serialized
findings for that file, so unchanged files skip parsing and rule
execution entirely.  The signature folds in the analyzer version and the
active rule ids, so upgrading the suite or narrowing ``--rules``
invalidates naturally — no mtime heuristics, no stale positives.

The cache file is plain JSON (one object, ``version`` + ``entries``) and
is safe to delete at any time.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional

#: On-disk format version; mismatches discard the whole file.
CACHE_FORMAT = 1

#: Entry cap: oldest entries are dropped first (insertion order — dicts
#: preserve it, which doubles as the eviction queue).
MAX_ENTRIES = 8192

DEFAULT_CACHE_NAME = ".repro-lint-cache.json"


class LintCache:
    """Content-addressed findings cache backed by one JSON file."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._entries: Dict[str, List[dict]] = {}
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict) or raw.get("version") != CACHE_FORMAT:
            return
        entries = raw.get("entries")
        if isinstance(entries, dict):
            self._entries = {
                key: value
                for key, value in entries.items()
                if isinstance(key, str) and isinstance(value, list)
            }

    @staticmethod
    def key(path: str, source: str, signature: str) -> str:
        digest = hashlib.sha256()
        digest.update(signature.encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.encode("utf-8"))
        digest.update(b"\0")
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    def get(self, key: str) -> Optional[List[dict]]:
        return self._entries.get(key)

    def put(self, key: str, findings: List[dict]) -> None:
        if self._entries.get(key) == findings:
            return
        self._entries[key] = findings
        self._dirty = True
        while len(self._entries) > MAX_ENTRIES:
            oldest = next(iter(self._entries))
            del self._entries[oldest]

    def __len__(self) -> int:
        return len(self._entries)

    def save(self) -> None:
        """Write back if anything changed; best-effort (CI caches may sit
        on read-only mounts — a failed write costs speed, not findings)."""

        if not self._dirty:
            return
        payload = {"version": CACHE_FORMAT, "entries": self._entries}
        try:
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            tmp.replace(self.path)
        except OSError:
            return
        self._dirty = False


__all__ = ["CACHE_FORMAT", "DEFAULT_CACHE_NAME", "LintCache", "MAX_ENTRIES"]
