"""Shared core of the invariant lints: findings, modules, the analyzer.

The analysis subsystem is a small AST-based checker framework.  Each rule
is a :class:`Rule` subclass that inspects one parsed module
(:class:`ModuleInfo`) and returns :class:`Finding` objects.  The
:class:`Analyzer` owns a rule set, applies package scoping, filters
suppressed findings, and (optionally) consults a content-hash cache so a
clean CI run over the whole tree stays fast.

Suppression syntax (mirrors the familiar ``# noqa`` shape)::

    risky_call()  # repro-lint: disable=unseeded-rng — reason why

    # repro-lint: disable-file=wire-schema — whole-module opt-out

``disable=all`` suppresses every rule on that line; rule lists may be
comma-separated.  Everything after the rule list (a dash and a reason)
is ignored by the parser but required by convention: a suppression
without a reason will not survive review.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

#: Bump when rule semantics change so stale cache entries are ignored.
ANALYZER_VERSION = 1

_SUPPRESSION = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\- ]+)"
)

#: Subpackages of ``repro`` where placement decisions are made; the
#: determinism rules scope themselves to these (plus standalone files,
#: so fixtures outside the package are always checked).
DECISION_PACKAGES = frozenset({"core", "scheduler", "serving", "ml", "perfsim"})


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Finding":
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            rule=str(data["rule"]),
            message=str(data["message"]),
        )


def _parse_suppressions(
    source: str,
) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Extract file-level and per-line suppression directives."""

    file_rules: Set[str] = set()
    line_rules: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        if "repro-lint" not in text:
            continue
        for match in _SUPPRESSION.finditer(text):
            kind, raw = match.group(1), match.group(2)
            rules = {token.strip() for token in raw.split(",")}
            rules.discard("")
            if not rules:
                continue
            if kind == "disable-file":
                file_rules |= rules
            else:
                line_rules.setdefault(lineno, set()).update(rules)
    return file_rules, line_rules


def _subpackage_of(path: str) -> Optional[str]:
    """``repro`` subpackage a file belongs to, '' for top-level modules,
    ``None`` for files outside the package (e.g. test fixtures)."""

    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            remainder = parts[index + 1 :]
            if len(remainder) >= 2:
                return remainder[0]
            return ""
    return None


def _import_map(tree: ast.Module) -> Dict[str, str]:
    """Map local names to canonical dotted names (``np`` -> ``numpy``,
    ``default_rng`` -> ``numpy.random.default_rng``)."""

    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                mapping[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def dotted_name(node: ast.AST, imports: Mapping[str, str]) -> Optional[str]:
    """Canonical dotted name of an expression, resolving import aliases.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; plain names resolve through ``from``
    imports.  Returns ``None`` for anything that is not a simple
    attribute/name chain.
    """

    segments: List[str] = []
    while isinstance(node, ast.Attribute):
        segments.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    segments.append(node.id)
    segments.reverse()
    root = segments[0]
    resolved = imports.get(root)
    if resolved is not None:
        segments[0:1] = resolved.split(".")
    return ".".join(segments)


class ModuleInfo:
    """A parsed module plus everything rules need: the AST, the import
    alias map, the owning ``repro`` subpackage, and suppressions."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.subpackage = _subpackage_of(path)
        self.imports = _import_map(self.tree)
        self._file_suppressions, self._line_suppressions = _parse_suppressions(
            source
        )

    def resolve(self, node: ast.AST) -> Optional[str]:
        return dotted_name(node, self.imports)

    def suppressed(self, finding: Finding) -> bool:
        for rules in (
            self._file_suppressions,
            self._line_suppressions.get(finding.line, frozenset()),
        ):
            if finding.rule in rules or "all" in rules:
                return True
        return False


class Rule:
    """Base class for one lint rule.

    Subclasses set ``id`` (the name used in findings, ``--rules``
    filters, and suppression comments), optionally ``packages`` (a
    frozenset of ``repro`` subpackages the rule scopes itself to), and
    implement :meth:`check`.
    """

    id: str = ""
    #: ``None`` means the rule applies to every module it sees.
    packages: Optional[frozenset] = None

    def applies_to(self, module: ModuleInfo) -> bool:
        if self.packages is None:
            return True
        if module.subpackage is None:
            return True  # standalone files (fixtures) are always checked
        return module.subpackage in self.packages

    def check(self, module: ModuleInfo) -> List[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            message=message,
        )


class Analyzer:
    """Run a rule set over sources, files, or directory trees."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        cache: Optional["LintCache"] = None,
    ) -> None:
        if rules is None:
            from repro.analysis import default_rules

            rules = default_rules()
        self.rules: List[Rule] = list(rules)
        self.cache = cache

    @property
    def signature(self) -> str:
        """Cache key component describing the analyzer + active rule set."""

        rules = ",".join(sorted(rule.id for rule in self.rules))
        return f"v{ANALYZER_VERSION}:{rules}"

    def analyze_source(self, source: str, path: str = "<string>") -> List[Finding]:
        try:
            module = ModuleInfo(path, source)
        except SyntaxError as error:
            return [
                Finding(
                    path=path,
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    rule="parse-error",
                    message=f"could not parse module: {error.msg}",
                )
            ]
        findings: List[Finding] = []
        for rule in self.rules:
            if rule.applies_to(module):
                findings.extend(rule.check(module))
        return sorted(f for f in findings if not module.suppressed(f))

    def analyze_file(self, path: Path) -> List[Finding]:
        source = path.read_text(encoding="utf-8")
        if self.cache is not None:
            key = self.cache.key(str(path), source, self.signature)
            cached = self.cache.get(key)
            if cached is not None:
                return [Finding.from_dict(entry) for entry in cached]
        findings = self.analyze_source(source, str(path))
        if self.cache is not None:
            self.cache.put(key, [f.to_dict() for f in findings])
        return findings

    def analyze_paths(
        self, paths: Iterable[Path]
    ) -> Tuple[List[Finding], int]:
        """Analyze files and directory trees; returns (findings, n_files).

        Directory trees are walked in sorted order so output is stable
        across filesystems — the determinism discipline the suite
        enforces applies to the suite itself.
        """

        files: List[Path] = []
        seen: Set[Path] = set()
        for path in paths:
            if path.is_dir():
                candidates = sorted(path.rglob("*.py"))
            else:
                candidates = [path]
            for candidate in candidates:
                if "__pycache__" in candidate.parts:
                    continue
                resolved = candidate.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                files.append(candidate)
        findings: List[Finding] = []
        for file_path in files:
            findings.extend(self.analyze_file(file_path))
        return sorted(findings), len(files)


from repro.analysis.cache import LintCache  # noqa: E402  (cycle-free re-export)

__all__ = [
    "ANALYZER_VERSION",
    "Analyzer",
    "DECISION_PACKAGES",
    "Finding",
    "LintCache",
    "ModuleInfo",
    "Rule",
    "dotted_name",
]
