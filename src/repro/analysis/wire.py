"""Wire-schema rule: ``to_dict``/``from_dict`` must round-trip every
declared field.

The sharded service moves every report, summary, and decision through
JSON (``repro/core/serialize.py`` holds the shared helpers:
``tupled``/``listed`` for sequence fields, ``machines_by_name``/
``resolve_machine`` for by-name machine references).  A field added to a
dataclass but forgotten in ``from_dict`` survives the in-process path
and silently zeroes out across a pipe.  ``tests/scheduler/test_wire.py``
round-trips a hand-listed set of types; this rule proves the property
for *every* wire class the tree grows.

Checks, per class that defines ``to_dict``:

* a ``from_dict`` must exist;
* for dataclasses, every declared field must appear in the emitted keys
  (``asdict(self)`` counts as all fields) and must be handled by
  ``from_dict`` (``cls(**values)`` counts as all fields minus keys the
  body pops without reading);
* for plain classes, the emitted key set and the handled key set are
  compared directly.

Extra *emitted* keys are legal (reports attach derived summaries);
``from_dict`` reading a key that is neither a field nor ever emitted is
not.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, ModuleInfo, Rule

_DATACLASS_NAMES = frozenset({"dataclass", "dataclasses.dataclass"})


def _is_dataclass(node: ast.ClassDef, module: ModuleInfo) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if module.resolve(target) in _DATACLASS_NAMES:
            return True
    return False


def _declared_fields(node: ast.ClassDef) -> List[str]:
    fields: List[str] = []
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            if "ClassVar" in ast.unparse(stmt.annotation):
                continue
            fields.append(stmt.target.id)
    return fields


class _KeySet:
    """A set of string keys plus a ``known`` flag; unknown means the
    analysis lost track (dynamic keys) and the check stays silent."""

    def __init__(self, keys: Optional[Set[str]] = None, known: bool = True):
        self.keys: Set[str] = set(keys or ())
        self.known = known

    def merge(self, other: "_KeySet") -> None:
        self.keys |= other.keys
        self.known = self.known and other.known

    @classmethod
    def unknown(cls) -> "_KeySet":
        return cls(known=False)


def _emitted_keys(
    func: ast.FunctionDef,
    module: ModuleInfo,
    fields: List[str],
    is_dataclass: bool,
) -> _KeySet:
    """Keys the ``to_dict`` body can emit, via local dataflow over dict
    literals, ``asdict(self)``, subscript stores, ``update``/``pop``."""

    env: Dict[str, _KeySet] = {}
    result = _KeySet()

    def eval_expr(node: ast.expr) -> _KeySet:
        if isinstance(node, ast.Dict):
            keyset = _KeySet()
            for key, value in zip(node.keys, node.values):
                if key is None:  # **spread
                    if isinstance(value, ast.Name) and value.id in env:
                        keyset.merge(env[value.id])
                    else:
                        keyset.merge(eval_expr(value))
                elif isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keyset.keys.add(key.value)
                else:
                    keyset.known = False
            return keyset
        if isinstance(node, ast.Call):
            name = module.resolve(node.func)
            if name in {"asdict", "dataclasses.asdict"}:
                return _KeySet(set(fields), known=is_dataclass)
            if name == "dict":
                if not node.args and not node.keywords:
                    return _KeySet()
                if len(node.args) == 1 and not node.keywords:
                    return eval_expr(node.args[0])
                return _KeySet.unknown()
        if isinstance(node, ast.Name):
            return _KeySet(env[node.id].keys, env[node.id].known) if (
                node.id in env
            ) else _KeySet.unknown()
        if isinstance(node, ast.IfExp):
            keyset = eval_expr(node.body)
            keyset.merge(eval_expr(node.orelse))
            return keyset
        return _KeySet.unknown()

    # Two passes: build the variable environment first, then evaluate
    # return expressions — ast.walk is breadth-first, so a return at
    # statement level would otherwise be seen before a nested
    # ``payload["key"] = ...`` store inside an ``if`` block.
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            value = eval_expr(node.value)
            for target in node.targets:
                if isinstance(target, ast.Name):
                    env[target.id] = value
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in env
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    env[target.value.id].keys.add(target.slice.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                env[node.target.id] = eval_expr(node.value)
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            owner = node.func.value
            if not (isinstance(owner, ast.Name) and owner.id in env):
                continue
            keyset = env[owner.id]
            if node.func.attr == "update":
                for arg in node.args:
                    keyset.merge(eval_expr(arg))
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        keyset.keys.add(keyword.arg)
                    else:
                        keyset.known = False
            elif node.func.attr in {"pop", "__delitem__"}:
                if (
                    node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    keyset.keys.discard(node.args[0].value)
            elif node.func.attr == "setdefault":
                if (
                    node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    keyset.keys.add(node.args[0].value)
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            result.merge(eval_expr(node.value))
    return result


def _handled_keys(
    func: ast.FunctionDef,
) -> Tuple[Set[str], bool, Set[str]]:
    """Keys ``from_dict`` reads: (handled, wildcard, popped_unread).

    ``wildcard`` is set by ``cls(**values)`` where ``values`` aliases the
    payload — every remaining key reaches the constructor.
    ``popped_unread`` collects keys removed with a bare ``pop`` whose
    value is discarded: those never reach the object at all.
    """

    args = func.args.args
    skip = 1 if args and args[0].arg in {"cls", "self"} else 0
    if len(args) <= skip:
        return set(), False, set()
    aliases: Set[str] = {args[skip].arg}
    handled: Set[str] = set()
    popped_unread: Set[str] = set()
    wildcard = False

    def is_alias(node: ast.expr) -> bool:
        return isinstance(node, ast.Name) and node.id in aliases

    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
            if isinstance(target, ast.Name):
                if (
                    isinstance(value, ast.Call)
                    and not value.keywords
                    and len(value.args) == 1
                    and is_alias(value.args[0])
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "dict"
                ):
                    aliases.add(target.id)
                elif (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and value.func.attr == "copy"
                    and is_alias(value.func.value)
                ):
                    aliases.add(target.id)
                elif is_alias(value):
                    aliases.add(target.id)
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Subscript)
            and is_alias(node.value)
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            handled.add(node.slice.value)
        elif isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and is_alias(node.func.value)
                and node.func.attr in {"get", "pop"}
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                handled.add(node.args[0].value)
            for keyword in node.keywords:
                if keyword.arg is None and is_alias(keyword.value):
                    wildcard = True
    # A bare `values.pop("k")` statement drops the key without reading it
    # anywhere else: under a wildcard construction that key is lost.
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr == "pop"
            and is_alias(node.value.func.value)
            and node.value.args
            and isinstance(node.value.args[0], ast.Constant)
            and isinstance(node.value.args[0].value, str)
        ):
            popped_unread.add(node.value.args[0].value)
    return handled, wildcard, popped_unread


class WireSchemaRule(Rule):
    """Flag wire classes whose ``to_dict``/``from_dict`` drop fields.

    Motivated by ``tests/scheduler/test_wire.py`` (hand-listed
    round-trip checks) and the sharded/monolithic report equivalence in
    ``tests/scheduler/test_service.py``: a field that does not survive
    ``from_dict(to_dict(x))`` diverges the moment a shard crosses a
    process boundary.
    """

    id = "wire-schema"
    packages = None  # wire types may live anywhere

    def check(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    def _check_class(
        self, module: ModuleInfo, node: ast.ClassDef
    ) -> List[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, ast.FunctionDef)
        }
        to_dict = methods.get("to_dict")
        from_dict = methods.get("from_dict")
        if to_dict is None:
            return []
        if from_dict is None:
            return [
                self.finding(
                    module,
                    to_dict,
                    f"{node.name} defines to_dict but no from_dict; wire "
                    "types must round-trip (see repro/core/serialize.py)",
                )
            ]
        is_dc = _is_dataclass(node, module)
        fields = _declared_fields(node) if is_dc else []
        emitted = _emitted_keys(to_dict, module, fields, is_dc)
        handled, wildcard, popped_unread = _handled_keys(from_dict)
        findings: List[Finding] = []
        if is_dc:
            if emitted.known:
                for field in fields:
                    if field not in emitted.keys:
                        findings.append(
                            self.finding(
                                module,
                                to_dict,
                                f"{node.name}.to_dict omits declared field "
                                f"{field!r}",
                            )
                        )
            if wildcard:
                for field in sorted(popped_unread):
                    if field in fields:
                        findings.append(
                            self.finding(
                                module,
                                from_dict,
                                f"{node.name}.from_dict drops declared "
                                f"field {field!r} (popped, never read)",
                            )
                        )
            else:
                for field in fields:
                    if field not in handled:
                        findings.append(
                            self.finding(
                                module,
                                from_dict,
                                f"{node.name}.from_dict never reads "
                                f"declared field {field!r}",
                            )
                        )
                if emitted.known:
                    for key in sorted(handled - set(fields) - emitted.keys):
                        findings.append(
                            self.finding(
                                module,
                                from_dict,
                                f"{node.name}.from_dict reads key {key!r} "
                                "that to_dict never emits",
                            )
                        )
        elif emitted.known:
            if not wildcard:
                for key in sorted(emitted.keys - handled):
                    findings.append(
                        self.finding(
                            module,
                            from_dict,
                            f"{node.name}.from_dict never reads emitted "
                            f"key {key!r}",
                        )
                    )
                for key in sorted(handled - emitted.keys):
                    findings.append(
                        self.finding(
                            module,
                            from_dict,
                            f"{node.name}.from_dict reads key {key!r} "
                            "that to_dict never emits",
                        )
                    )
        return findings


__all__ = ["WireSchemaRule"]
