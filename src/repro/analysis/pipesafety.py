"""Pipe-safety rule: shard transport payloads must be JSON-safe.

The sharded scheduler service speaks one message protocol over two
transports: ``InlineShardClient`` pushes every payload through
``json.dumps``/``loads`` precisely so the in-process path cannot cheat,
and ``ProcessShardClient`` moves the same dicts over a
``multiprocessing.Pipe``.  A numpy scalar or a dataclass instance
survives pickling over the pipe but not JSON — the two transports then
disagree, which is exactly the divergence the single-shard-equals-
monolith gate in ``tests/scheduler/test_service.py`` exists to prevent.

The rule scopes itself to the transport modules
(``scheduler/shard.py``, ``scheduler/service.py``) and inspects payload
roots only: arguments of ``.send``/``.request``/``._send`` calls, and
return values of ``handle``/``_handle_*``/``*_message``/``to_dict``
functions, following local variable assignments.  Inside a payload
expression, calls into the ``numpy`` namespace, wire-class
constructors, and ``from_dict`` calls are flagged; conversion wrappers
(``float``/``int``/``str``/``bool``/``len``/``round``, ``.to_dict()``/
``.tolist()``/``.item()``) terminate the descent as known-safe.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.engine import Finding, ModuleInfo, Rule

#: Module path suffixes that speak the shard wire protocol.  The
#: supervision layer journals and replays the same wire messages
#: (supervisor.py) and the fault layer forwards them (faults.py), so
#: both are payload-bearing modules.
TRANSPORT_SUFFIXES = (
    "scheduler/shard.py",
    "scheduler/service.py",
    "scheduler/supervisor.py",
    "scheduler/faults.py",
    "scheduler/capacity.py",
    "scheduler/admission.py",
)

#: Payload-bearing call attributes (the split protocol fires payloads
#: through ``send``/``request_many`` as well as the blocking ``request``).
_SEND_ATTRS = frozenset({"send", "request", "request_many", "_send"})

#: Calls that produce JSON-safe values; descent stops at them.
_SAFE_CALLS = frozenset(
    {"float", "int", "str", "bool", "len", "round", "abs", "sorted", "list",
     "tuple", "dict", "min", "max", "sum"}
)
_SAFE_METHODS = frozenset({"to_dict", "tolist", "item", "as_dict"})

#: Classes whose instances are wire *objects* — sending one raw (instead
#: of its ``to_dict()``) breaks the JSON transport.
WIRE_CLASSES = frozenset(
    {
        "ShardSummary",
        "GradedDecision",
        "FleetReport",
        "PlacementRequest",
        "Placement",
        "ChurnStats",
        "CacheInfo",
        "FaultAction",
        "FaultPlan",
        "JournalEntry",
        "ServiceStats",
        "CapacityVector",
        "AdmissionDecision",
        "AdmissionStats",
    }
)


def _is_transport_module(module: ModuleInfo) -> bool:
    if module.subpackage is None:
        return True  # standalone fixtures opt in by construction
    normalized = module.path.replace("\\", "/")
    return any(normalized.endswith(suffix) for suffix in TRANSPORT_SUFFIXES)


def _payload_function(name: str) -> bool:
    return (
        name == "handle"
        or name.startswith("_handle")
        or name.endswith("_message")
        or name == "to_dict"
    )


class PipeSafetyRule(Rule):
    """Flag non-JSON-safe values in shard transport payloads.

    Motivated by the transport-equivalence gate
    (``tests/scheduler/test_service.py``): inline clients JSON-round-trip
    every message, so a numpy scalar that would ride a
    ``multiprocessing.Pipe`` unnoticed fails the JSON path — this rule
    catches it before either transport runs.
    """

    id = "pipe-safety"
    packages = None  # scoped by module suffix instead

    def applies_to(self, module: ModuleInfo) -> bool:
        return _is_transport_module(module)

    def check(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(module, node))
        return findings

    def _check_function(
        self, module: ModuleInfo, func: ast.FunctionDef
    ) -> List[Finding]:
        roots: List[ast.expr] = []
        payload_vars: Set[str] = set()

        # Arguments of send-like calls are payload roots.
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SEND_ATTRS
            ):
                candidates: Iterable[ast.expr] = list(node.args) + [
                    kw.value for kw in node.keywords
                ]
                for arg in candidates:
                    if isinstance(arg, ast.Name):
                        payload_vars.add(arg.id)
                    else:
                        roots.append(arg)

        # Return values of payload-shaped functions are payload roots.
        if _payload_function(func.name):
            for node in ast.walk(func):
                if isinstance(node, ast.Return) and node.value is not None:
                    if isinstance(node.value, ast.Name):
                        payload_vars.add(node.value.id)
                    else:
                        roots.append(node.value)

        # Follow local assignments into payload variables (including
        # subscript stores: `response["summary"] = ...`).
        if payload_vars:
            for node in ast.walk(func):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id in payload_vars
                        ):
                            roots.append(node.value)
                        elif (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in payload_vars
                        ):
                            roots.append(node.value)
                elif (
                    isinstance(node, ast.AnnAssign)
                    and node.value is not None
                    and isinstance(node.target, ast.Name)
                    and node.target.id in payload_vars
                ):
                    roots.append(node.value)

        findings: List[Finding] = []
        for root in roots:
            findings.extend(self._scan_payload(module, root))
        return findings

    def _scan_payload(
        self, module: ModuleInfo, node: ast.expr
    ) -> List[Finding]:
        findings: List[Finding] = []
        self._scan(module, node, findings)
        return findings

    def _scan(
        self, module: ModuleInfo, node: ast.AST, findings: List[Finding]
    ) -> None:
        if isinstance(node, ast.Call):
            name = module.resolve(node.func)
            if name is not None and (
                name.startswith("numpy.") or name == "numpy"
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{name}() in a pipe payload is not JSON-safe; "
                        "convert with float()/int()/.tolist() first",
                    )
                )
                return
            if name is not None and name.split(".")[-1] == "from_dict":
                findings.append(
                    self.finding(
                        module,
                        node,
                        "from_dict() builds a wire object inside a pipe "
                        "payload; send the dict form instead",
                    )
                )
                return
            if name in WIRE_CLASSES or (
                name is not None and name.split(".")[-1] in WIRE_CLASSES
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{name.split('.')[-1]} instance in a pipe payload "
                        "is not JSON-safe; send its to_dict() output",
                    )
                )
                return
            if name in _SAFE_CALLS:
                return  # conversion wrapper: result is JSON-safe
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SAFE_METHODS
            ):
                return
            # Unknown call: scan its arguments but trust its result.
            for child in list(node.args) + [kw.value for kw in node.keywords]:
                self._scan(module, child, findings)
            return
        if isinstance(node, ast.Attribute):
            name = module.resolve(node)
            if name is not None and name.startswith("numpy."):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{name} in a pipe payload is not JSON-safe",
                    )
                )
                return
            return  # plain attribute reads (self.shard_id, ...) are opaque
        for child in ast.iter_child_nodes(node):
            self._scan(module, child, findings)
        return


#: Functions in ``scheduler/service.py`` allowed to issue a blocking
#: ``client.request(...)`` — the supervised send helpers (one round trip
#: each, or the sequential A/B baseline driven through them).  Dispatch
#: loops everywhere else must fire with ``send()`` and gather.
SANCTIONED_DISPATCH = frozenset(
    {"_send", "_send_supervised", "_resolve_supervised", "_tracked_request"}
)


class BlockingDispatchRule(Rule):
    """Flag blocking ``client.request(...)`` calls inside service loops.

    Overlapped dispatch exists precisely because a sequential
    ``for shard in ...: client.request(...)`` loop serializes the worker
    processes; after the split-protocol refactor the only sanctioned
    blocking call sites are the supervised send helpers
    (:data:`SANCTIONED_DISPATCH`).  A ``.request()`` reappearing inside a
    loop in ``scheduler/service.py`` is a perf regression waiting to
    land — fire the messages with ``send()`` and gather instead.
    """

    id = "blocking-dispatch"
    packages = None  # scoped by module suffix instead

    def applies_to(self, module: ModuleInfo) -> bool:
        if module.subpackage is None:
            return True  # standalone fixtures opt in by construction
        normalized = module.path.replace("\\", "/")
        return normalized.endswith("scheduler/service.py")

    def check(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[tuple] = set()
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if func.name in SANCTIONED_DISPATCH:
                continue
            for loop in ast.walk(func):
                if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                    continue
                for node in ast.walk(loop):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "request"
                    ):
                        continue
                    key = (node.lineno, node.col_offset)
                    if key in seen:
                        continue  # nested loops / functions walk twice
                    seen.add(key)
                    findings.append(
                        self.finding(
                            module,
                            node,
                            "blocking client.request() inside a dispatch "
                            "loop serializes the shards; fire with send() "
                            "and gather replies (only the supervised send "
                            "helpers may call request() directly)",
                        )
                    )
        return findings


__all__ = [
    "BlockingDispatchRule",
    "PipeSafetyRule",
    "SANCTIONED_DISPATCH",
    "TRANSPORT_SUFFIXES",
    "WIRE_CLASSES",
]
