"""Memo-invalidation rule: mutations of memoized state must invalidate.

The tree memoizes aggressively — the forest compiles an arena from
``trees_``, ``FleetIndex`` mirrors host capacity in O(1) counters,
``BlockScoreCache`` keys score tables on ``(fingerprint, kind,
version)``, ``ModelRegistry`` keys baseline-IPC memos on a model version
token.  Every one of those stays correct only because each mutation path
bumps the matching version or drops the derived structure.  This rule
encodes those pairings in a small registry (:data:`CACHE_SURFACES`) so
the static check and the runtime debug hooks
(``BlockScoreCache.assert_version_consistency``,
``ModelRegistry.assert_version_consistency``,
``FleetIndex.assert_consistent``) name the same surfaces, and new caches
opt in by adding a row.

Two check styles per surface:

* **guarded attributes** — any method that mutates a guarded attribute
  in place must, in the same method, either touch an invalidator
  attribute or reassign one of the ``setter_resets`` properties (whose
  setter performs the invalidation);
* **declared methods** — a method named in ``declared`` must reference
  every listed token (attribute or call) somewhere in its body.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, ModuleInfo, Rule

#: Attribute calls that mutate a container in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "sort",
        "reverse",
        "appendleft",
        "popleft",
    }
)


@dataclass(frozen=True)
class CacheSurface:
    """One memoized surface: which class, which state, which bump."""

    name: str
    class_name: str
    #: Module path suffix the surface lives at; fixture files (outside
    #: the ``repro`` package) match any surface by class name alone.
    module_suffix: str
    #: Attributes whose in-place mutation requires invalidation.
    guarded_attrs: Tuple[str, ...] = ()
    #: Attributes whose reassignment/mutation counts as invalidation.
    invalidators: Tuple[str, ...] = ()
    #: Properties whose *setter* invalidates: plain reassignment of one
    #: of these is itself a valid bump (``self.trees_ = [...]``).
    setter_resets: Tuple[str, ...] = ()
    #: method name -> tokens (attributes or callables) it must touch.
    declared: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Methods on the class exempt from the guarded-attr check (the
    #: invalidation primitives themselves).
    exempt_methods: Tuple[str, ...] = ()
    #: The runtime check that verifies the same invariant dynamically.
    runtime_check: str = ""


CACHE_SURFACES: Tuple[CacheSurface, ...] = (
    CacheSurface(
        name="forest-arena",
        class_name="RandomForestRegressor",
        module_suffix="ml/forest.py",
        guarded_attrs=("trees_", "_trees"),
        invalidators=("_arena",),
        setter_resets=("trees_",),
        exempt_methods=("trees_",),
        runtime_check=(
            "arena-vs-per-tree bit-for-bit equivalence "
            "(tests/ml/test_arena.py)"
        ),
    ),
    CacheSurface(
        name="fleet-index-counters",
        class_name="FleetHost",
        module_suffix="scheduler/fleet.py",
        declared={
            "allocate": ("on_allocate",),
            "release": ("on_release",),
        },
        runtime_check=(
            "FleetIndex.assert_consistent randomized replay "
            "(tests/scheduler/test_index.py)"
        ),
    ),
    CacheSurface(
        name="capacity-vectors",
        class_name="FleetIndex",
        module_suffix="scheduler/index.py",
        declared={
            # FleetHost.allocate/release notify the index (see the
            # fleet-index-counters row above); on_allocate/on_release
            # funnel through _resize, which must forward every
            # free-count transition to the attached CapacityTracker,
            # and register must seed newly indexed hosts into it.
            "register": ("_capacity", "on_register"),
            "_resize": ("_capacity", "on_resize"),
            "on_allocate": ("_resize",),
            "on_release": ("_resize",),
        },
        runtime_check=(
            "incremental-vs-brute-force capacity replay "
            "(tests/scheduler/test_capacity.py)"
        ),
    ),
    CacheSurface(
        name="block-score-tables",
        class_name="BlockScoreCache",
        module_suffix="core/blockscores.py",
        guarded_attrs=("_versions",),
        invalidators=("_tables",),
        exempt_methods=("clear", "assert_version_consistency"),
        runtime_check="BlockScoreCache.assert_version_consistency",
    ),
    CacheSurface(
        name="model-promotion-memos",
        class_name="ModelServer",
        module_suffix="serving/server.py",
        declared={
            "promote": (
                "_baseline_ipc",
                "invalidate",
                "assert_version_consistency",
            ),
        },
        runtime_check="ModelRegistry.assert_version_consistency",
    ),
    CacheSurface(
        name="shard-respawn-state",
        class_name="SchedulerService",
        module_suffix="scheduler/service.py",
        declared={
            # A respawned worker starts empty: the cached ShardSummary
            # must be reset and the journal replayed through a fresh
            # client, or the router trusts pre-crash state.
            "_recover_shard": ("summaries", "journals", "_make_client"),
            # Deferred departures must survive a down shard: a failed
            # flush re-queues its pairs on the outbox instead of
            # dropping them.
            "_flush_departures": ("_outbox",),
        },
        runtime_check=(
            "crash-sweep report convergence "
            "(tests/scheduler/test_faults.py)"
        ),
    ),
)


def _self_attr(node: ast.expr) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _base_self_attr(node: ast.expr) -> Optional[str]:
    """``self.attr`` at the base of a subscript chain, if any."""

    while isinstance(node, ast.Subscript):
        node = node.value
    return _self_attr(node)


def _mutations(func: ast.FunctionDef, attrs: Sequence[str]) -> List[ast.AST]:
    """AST nodes that mutate ``self.<attr>`` in place for any watched
    attribute (method calls, subscript stores/deletes, augmented
    assignment)."""

    watched = set(attrs)
    sites: List[ast.AST] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATING_METHODS:
                attr = _base_self_attr(node.func.value)
                if attr in watched:
                    sites.append(node)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Subscript):
                    attr = _base_self_attr(target)
                    if attr in watched:
                        sites.append(node)
                elif isinstance(node, ast.AugAssign) and isinstance(
                    target, ast.Attribute
                ):
                    if _self_attr(target) in watched:
                        sites.append(node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    attr = _base_self_attr(target)
                    if attr in watched:
                        sites.append(node)
    return sites


def _touched_tokens(func: ast.FunctionDef) -> Set[str]:
    """Names this method references as ``self.<attr>``, call targets
    (``anything.token(...)`` or ``token(...)``), or assignment targets —
    the vocabulary the ``declared``/``invalidators`` checks match on."""

    tokens: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            tokens.add(node.attr)
        elif isinstance(node, ast.Name):
            tokens.add(node.id)
    return tokens


def _plain_reassignments(func: ast.FunctionDef) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        targets: Sequence[ast.expr] = ()
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        for target in targets:
            attr = _self_attr(target)
            if attr is not None:
                names.add(attr)
    return names


class MemoInvalidationRule(Rule):
    """Flag cached-state mutations that skip the matching invalidation.

    Motivated by the memo-correctness gates: arena-vs-per-tree
    equivalence (``tests/ml/test_arena.py``), indexed-vs-linear decision
    equivalence (``tests/scheduler/test_index.py``), and the version-
    token keyed serving memos (``tests/serving/test_server.py``).  The
    rule is table-driven: see :data:`CACHE_SURFACES`.
    """

    id = "memo-invalidation"
    packages = None  # surfaces carry their own module scoping

    def check(self, module: ModuleInfo) -> List[Finding]:
        findings: List[Finding] = []
        normalized = module.path.replace("\\", "/")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for surface in CACHE_SURFACES:
                if node.name != surface.class_name:
                    continue
                if module.subpackage is not None and not normalized.endswith(
                    surface.module_suffix
                ):
                    continue
                findings.extend(self._check_surface(module, node, surface))
        return findings

    def _check_surface(
        self, module: ModuleInfo, node: ast.ClassDef, surface: CacheSurface
    ) -> List[Finding]:
        findings: List[Finding] = []
        methods = [
            stmt for stmt in node.body if isinstance(stmt, ast.FunctionDef)
        ]
        for method in methods:
            declared = surface.declared.get(method.name)
            if declared:
                tokens = _touched_tokens(method)
                missing = [t for t in declared if t not in tokens]
                if missing:
                    findings.append(
                        self.finding(
                            module,
                            method,
                            f"{node.name}.{method.name} is declared to "
                            f"maintain the {surface.name!r} surface but "
                            f"never touches {', '.join(missing)} "
                            f"(runtime check: {surface.runtime_check})",
                        )
                    )
            if not surface.guarded_attrs:
                continue
            if method.name in surface.exempt_methods:
                continue
            sites = _mutations(method, surface.guarded_attrs)
            if not sites:
                continue
            tokens = _touched_tokens(method)
            reassigned = _plain_reassignments(method)
            invalidated = any(
                token in tokens for token in surface.invalidators
            ) or any(prop in reassigned for prop in surface.setter_resets)
            if not invalidated:
                expected = " or ".join(
                    [f"self.{t}" for t in surface.invalidators]
                    + [f"reassigning self.{p}" for p in surface.setter_resets]
                )
                findings.append(
                    self.finding(
                        module,
                        sites[0],
                        f"{node.name}.{method.name} mutates "
                        f"{'/'.join(surface.guarded_attrs)} "
                        f"({surface.name!r} surface) without invalidating "
                        f"— expected {expected} "
                        f"(runtime check: {surface.runtime_check})",
                    )
                )
        return findings


__all__ = ["CACHE_SURFACES", "CacheSurface", "MemoInvalidationRule"]
