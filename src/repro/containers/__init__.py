"""Virtual containers and the simulated host they run on.

The paper runs workloads in lxc containers whose vCPUs the scheduler maps
to hardware threads.  :class:`~repro.containers.container.VirtualContainer`
is that unit of deployment; :class:`~repro.containers.host.SimulatedHost`
stands in for the physical machine + container runtime: it deploys
containers (pinned to a placement, or unpinned under a Linux-CFS-like
default mapping), models interference between co-located containers, and
reports the online performance metric the model consumes.
"""

from repro.containers.container import VirtualContainer
from repro.containers.host import Deployment, SimulatedHost

__all__ = ["VirtualContainer", "Deployment", "SimulatedHost"]
