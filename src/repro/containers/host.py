"""The simulated host: deploys containers and reports their performance.

Two deployment modes mirror the policies of Section 7:

* **pinned** — the container's vCPUs are bound to a specific
  :class:`~repro.core.placements.Placement` (what the ML and
  Smart-Aggressive policies do);
* **unpinned** — the Linux scheduler maps vCPUs wherever it likes (the
  Conservative and Aggressive policies).  The paper observes that this "may
  map vCPUs unevenly to shared resources, causing unnecessary contention",
  so unpinned deployments get a balanced all-node placement *plus* a
  deterministic per-deployment imbalance penalty scaled by how sensitive
  the workload is to uneven sharing.

Performance measurements route through
:meth:`repro.perfsim.simulator.PerformanceSimulator.simulate_colocated`, so
containers sharing nodes contend for caches, DRAM, and the interconnect.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.containers.container import VirtualContainer
from repro.core.placements import Placement
from repro.perfsim.simulator import PerformanceSimulator
from repro.topology.machine import MachineTopology

#: Worst-case throughput loss from Linux's uneven default mapping, for a
#: maximally sensitive workload.
_MAX_IMBALANCE_PENALTY = 0.18


@dataclass(frozen=True)
class Deployment:
    """A container running on the host."""

    container: VirtualContainer
    placement: Placement
    pinned: bool
    imbalance: float  # multiplier <= 1; exactly 1.0 for pinned deployments


class SimulatedHost:
    """One physical machine hosting containers.

    Parameters
    ----------
    machine:
        The machine model.
    simulator:
        Performance simulator (a default one is built when omitted).
    seed:
        Drives the deterministic "Linux mapping" imbalance draws.
    """

    def __init__(
        self,
        machine: MachineTopology,
        *,
        simulator: PerformanceSimulator | None = None,
        seed: int = 0,
    ) -> None:
        self.machine = machine
        self.simulator = simulator or PerformanceSimulator(machine, seed=seed)
        self.seed = seed
        self._deployments: Dict[int, Deployment] = {}
        self._measure_counter = 0

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    @property
    def deployments(self) -> List[Deployment]:
        return list(self._deployments.values())

    def free_threads(self) -> int:
        used = sum(
            d.container.vcpus
            for d in self._deployments.values()
        )
        return self.machine.total_threads - used

    def deploy(
        self,
        container: VirtualContainer,
        placement: Placement | None = None,
    ) -> Deployment:
        """Start a container, pinned to ``placement`` or unpinned."""
        if container.container_id in self._deployments:
            raise ValueError(f"{container.name} is already deployed")
        if container.vcpus > self.free_threads():
            raise ValueError(
                f"{container.name} needs {container.vcpus} threads, host has "
                f"{self.free_threads()} free"
            )
        if placement is not None:
            pinned = True
            imbalance = 1.0
            if placement.vcpus != container.vcpus:
                raise ValueError(
                    f"placement is for {placement.vcpus} vCPUs, container "
                    f"has {container.vcpus}"
                )
        else:
            pinned = False
            placement = self._linux_default_placement(container)
            imbalance = self._imbalance_penalty(container)
        deployment = Deployment(container, placement, pinned, imbalance)
        self._deployments[container.container_id] = deployment
        return deployment

    def migrate(
        self, container: VirtualContainer, placement: Placement
    ) -> Deployment:
        """Re-pin a running container to a new placement (the mechanics and
        cost of moving memory live in :mod:`repro.migration`)."""
        if container.container_id not in self._deployments:
            raise KeyError(f"{container.name} is not deployed")
        del self._deployments[container.container_id]
        return self.deploy(container, placement)

    def remove(self, container: VirtualContainer) -> None:
        if container.container_id not in self._deployments:
            raise KeyError(f"{container.name} is not deployed")
        del self._deployments[container.container_id]

    # ------------------------------------------------------------------
    # Linux default mapping model
    # ------------------------------------------------------------------

    def _linux_default_placement(self, container: VirtualContainer) -> Placement:
        """What CFS roughly does with an unpinned container: spread the
        threads across all nodes, sharing L2 groups only when it must."""
        machine = self.machine
        nodes = list(machine.nodes)
        vcpus = container.vcpus
        # Spread over as many nodes as divide the vCPU count evenly.
        for n_nodes in range(machine.n_nodes, 0, -1):
            if vcpus % n_nodes != 0:
                continue
            per_node = vcpus // n_nodes
            if per_node > machine.threads_per_node:
                continue
            # Prefer one thread per L2 group; fall back to sharing.
            if per_node <= machine.l2_groups_per_node:
                return Placement(machine, nodes[:n_nodes], vcpus, l2_share=1)
            for share in range(2, machine.threads_per_l2 + 1):
                if per_node % share == 0 and per_node // share <= machine.l2_groups_per_node:
                    return Placement(
                        machine, nodes[:n_nodes], vcpus, l2_share=share
                    )
        raise ValueError(
            f"cannot fit {vcpus} vCPUs on {machine.name} in any balanced way"
        )

    def _imbalance_penalty(self, container: VirtualContainer) -> float:
        """Deterministic per-deployment penalty for uneven Linux mapping."""
        profile = container.profile
        sensitivity = max(
            profile.cache_sensitivity,
            profile.comm_intensity * profile.comm_latency_sensitivity,
            1.0 - (1.0 + profile.smt_affinity) / 2.0,
        )
        rng = np.random.default_rng(
            zlib.crc32(
                f"{self.seed}|imbalance|{container.name}|{container.container_id}".encode()
            )
        )
        draw = rng.uniform(0.2, 1.0)
        return 1.0 - _MAX_IMBALANCE_PENALTY * sensitivity * draw

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def measure_all(
        self, *, duration_s: float = 10.0, noise: bool = True
    ) -> Dict[int, float]:
        """Application-metric throughput of every deployed container,
        including cross-container interference."""
        if not self._deployments:
            return {}
        self._measure_counter += 1
        deployments = list(self._deployments.values())
        assignments = [
            (d.container.profile, d.placement) for d in deployments
        ]
        values = self.simulator.simulate_colocated(
            assignments, noise=noise, repetition=self._measure_counter
        )
        return {
            d.container.container_id: value * d.imbalance
            for d, value in zip(deployments, values)
        }

    def measure(
        self,
        container: VirtualContainer,
        *,
        duration_s: float = 10.0,
        noise: bool = True,
    ) -> float:
        """Throughput of one container under current co-location."""
        if container.container_id not in self._deployments:
            raise KeyError(f"{container.name} is not deployed")
        return self.measure_all(duration_s=duration_s, noise=noise)[
            container.container_id
        ]

    def measure_ipc(
        self,
        container: VirtualContainer,
        *,
        duration_s: float = 10.0,
        noise: bool = True,
    ) -> float:
        """The generic online metric (IPC) for one container — what the
        placement model consumes.  Derived from the same co-located
        simulation as :meth:`measure`, so interference shows up here too."""
        deployment = self._deployments.get(container.container_id)
        if deployment is None:
            raise KeyError(f"{container.name} is not deployed")
        profile = container.profile
        solo_metric = self.simulator.throughput(
            profile, deployment.placement, noise=False
        )
        achieved = self.measure(container, duration_s=duration_s, noise=noise)
        solo_ipc = self.simulator.measured_ipc(
            profile, deployment.placement, noise=False
        )
        if solo_metric <= 0:
            raise RuntimeError("degenerate solo throughput")
        return solo_ipc * achieved / solo_metric
