"""The unit of deployment: a virtual container."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.perfsim.workload import WorkloadProfile

_ids = itertools.count(1)


@dataclass(frozen=True)
class VirtualContainer:
    """A containerized workload with a fixed vCPU count.

    Managed clouds sell instances with fixed vCPU counts (Section 3), which
    is why the methodology trains one model per (machine, vCPU count) and a
    container's size never changes after creation.
    """

    profile: WorkloadProfile
    vcpus: int
    name: str = ""
    container_id: int = field(default_factory=lambda: next(_ids))

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValueError("vcpus must be >= 1")
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.profile.name}-{self.container_id}"
            )

    @property
    def metric_name(self) -> str:
        return self.profile.metric_name

    def __repr__(self) -> str:
        return (
            f"VirtualContainer({self.name!r}, vcpus={self.vcpus})"
        )
