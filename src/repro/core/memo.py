"""Memoized important-placement enumeration.

The Algorithm 1-3 pipeline in :mod:`repro.core.enumeration` depends only on
the machine's topology fingerprint and the container's vCPU count, so a
fleet scheduler handling thousands of requests against a handful of machine
shapes should run it once per distinct ``(fingerprint, vcpus)`` key, not
once per request.  :class:`EnumerationCache` provides exactly that: a
dictionary keyed by :meth:`repro.topology.machine.MachineTopology.fingerprint`
with hit/miss accounting, so callers (and tests) can verify how many times
the pipeline actually ran.

Cached :class:`~repro.core.enumeration.ImportantPlacementSet` objects are
shared between callers.  That is safe because the set exposes only
immutable views (tuples of :class:`~repro.core.placements.Placement` and
score vectors); a caller that copies them into a list and mutates the copy
cannot corrupt the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.enumeration import (
    ImportantPlacementSet,
    enumerate_important_placements,
)
from repro.topology.machine import MachineTopology


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of a cache's accounting counters."""

    hits: int
    misses: int
    currsize: int

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "currsize": self.currsize,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "CacheInfo":
        return cls(
            hits=data["hits"],
            misses=data["misses"],
            currsize=data["currsize"],
        )

    def __add__(self, other: "CacheInfo") -> "CacheInfo":
        """Merge two caches' accounting (the sharded service sums its
        workers' per-shard counters into one fleet-level snapshot)."""
        if not isinstance(other, CacheInfo):
            return NotImplemented
        return CacheInfo(
            self.hits + other.hits,
            self.misses + other.misses,
            self.currsize + other.currsize,
        )


class EnumerationCache:
    """Topology-fingerprint-keyed memo cache for placement enumeration.

    Parameters
    ----------
    maxsize:
        Maximum number of distinct ``(fingerprint, vcpus)`` entries kept;
        ``None`` means unbounded.  Eviction is FIFO — distinct machine
        shapes are few and enumeration is cheap to redo, so anything
        smarter would be ceremony.
    """

    def __init__(self, maxsize: int | None = None) -> None:
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be >= 1 or None")
        self.maxsize = maxsize
        self._entries: Dict[Tuple, ImportantPlacementSet] = {}
        self._hits = 0
        self._misses = 0

    def get(
        self, machine: MachineTopology, vcpus: int
    ) -> ImportantPlacementSet:
        """The important placements for ``(machine shape, vcpus)``, running
        the enumeration pipeline only on the first request for this key.

        A hit returns the set enumerated for the *first* machine seen with
        this fingerprint; fingerprint-equal machines are interchangeable
        for every consumer in this repository.  The cache always derives
        the concern set from the machine — callers with a hand-built
        :class:`~repro.core.concerns.ConcernSet` must use
        :func:`~repro.core.enumeration.enumerate_important_placements`
        directly, since custom concerns are not part of the cache key.
        """
        key = (machine.fingerprint(), int(vcpus))
        cached = self._entries.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        result = enumerate_important_placements(machine, vcpus)
        if self.maxsize is not None and len(self._entries) >= self.maxsize:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        self._entries[key] = result
        return result

    def info(self) -> CacheInfo:
        return CacheInfo(self._hits, self._misses, len(self._entries))

    def clear(self) -> None:
        self._entries.clear()
        self._hits = 0
        self._misses = 0


#: Process-wide default cache, used by the fleet scheduler registry (and by
#: anyone who wants cross-call memoization without threading a cache
#: object through their API).
DEFAULT_ENUMERATION_CACHE = EnumerationCache()


def cached_enumerate_important_placements(
    machine: MachineTopology, vcpus: int
) -> ImportantPlacementSet:
    """Drop-in memoized variant of
    :func:`repro.core.enumeration.enumerate_important_placements`."""
    return DEFAULT_ENUMERATION_CACHE.get(machine, vcpus)


def cached_block_score_table(machine: MachineTopology, kind: str = "interconnect"):
    """The process-wide shared per-shape block-score table (see
    :mod:`repro.core.blockscores`; same fingerprint-keyed memoization
    discipline as the enumeration cache).  Returns None for machines too
    large to tabulate."""
    # Imported lazily: blockscores borrows CacheInfo from this module.
    from repro.core.blockscores import DEFAULT_BLOCK_SCORE_CACHE

    return DEFAULT_BLOCK_SCORE_CACHE.get(machine, kind)
