"""Performance-prediction models (Section 5).

Two model variants, matching the paper's comparison:

* :class:`PlacementModel` — the paper's contribution.  Inputs are the
  measured performance (IPC) of the container in **two** important
  placements; output is the predicted relative-performance vector over all
  important placements.  The input pair is selected automatically during
  training by cross-validated search, and the first element of the chosen
  pair becomes the baseline every vector is normalized to ("the baseline
  placement can be any of the two placements whose performance is required
  as the input").

* :class:`HpeModel` — the conventional baseline.  Inputs are hardware
  performance events measured in a **single** placement, with the most
  predictive events chosen by Sequential Forward Selection.  Section 6 shows
  (and this reproduction confirms) that it is markedly less reliable: the
  characteristics that shape performance vectors most — communication
  latency sensitivity, whether the working set will fit a different cache
  count — are simply not visible in single-placement counters.

Both models are thin wrappers around the multi-output random forest in
:mod:`repro.ml.forest` and share the evaluation interface used by
:func:`repro.core.training.leave_one_workload_out`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.training import TrainingSet
from repro.ml.forest import RandomForestRegressor
from repro.ml.selection import sequential_forward_selection
from repro.ml.validation import KFold


@dataclass
class ModelEvaluation:
    """Summary of a model's cross-validated accuracy (used by benchmarks)."""

    model_name: str
    per_workload_mape: dict
    mean_mape: float
    worst_workload: str
    fit_seconds: float = 0.0


def _pair_features(ipc_i: np.ndarray, ipc_j: np.ndarray) -> np.ndarray:
    """Feature matrix from two performance observations.

    Raw IPCs are comparable across workloads (memory-bound applications run
    at low IPC everywhere), and their ratio isolates the placement response;
    the forest gets both views.
    """
    ipc_i = np.asarray(ipc_i, dtype=float)
    ipc_j = np.asarray(ipc_j, dtype=float)
    if np.any(ipc_i <= 0):
        raise ValueError("performance observations must be positive")
    return np.column_stack([ipc_i, ipc_j, ipc_j / ipc_i])


class PlacementModel:
    """The two-observation multi-output random forest (Section 5).

    Parameters
    ----------
    input_pair:
        Force a specific (i, j) placement-index pair instead of searching.
    n_estimators:
        Forest size of the final model.
    selection_estimators, selection_folds:
        Cheaper forest/CV used during the pair search (the search fits a
        model per candidate pair per fold; the paper reports training takes
        seconds, so the search must stay light).
    candidate_pairs:
        Restrict the search space (all index pairs by default).
    random_state:
        Seed for all forests.
    """

    def __init__(
        self,
        *,
        input_pair: Tuple[int, int] | None = None,
        n_estimators: int = 100,
        selection_estimators: int = 12,
        selection_folds: int = 3,
        candidate_pairs: Sequence[Tuple[int, int]] | None = None,
        pair_search: str = "exhaustive",
        random_state: int = 0,
    ) -> None:
        if pair_search not in ("exhaustive", "halving"):
            raise ValueError(
                f"pair_search must be 'exhaustive' or 'halving', "
                f"got {pair_search!r}"
            )
        self.input_pair = input_pair
        self.n_estimators = n_estimators
        self.selection_estimators = selection_estimators
        self.selection_folds = selection_folds
        self.candidate_pairs = (
            [tuple(p) for p in candidate_pairs] if candidate_pairs else None
        )
        self.pair_search = pair_search
        self.random_state = random_state
        self._forest: RandomForestRegressor | None = None
        self._n_placements: int | None = None
        self.selection_errors_: dict | None = None
        self.search_evaluations_: int = 0
        self.fit_seconds_: float = 0.0

    # ------------------------------------------------------------------

    def _pair_cv_error(
        self,
        ipc: np.ndarray,
        pair: Tuple[int, int],
        *,
        n_repeats: int = 2,
        n_estimators: int | None = None,
    ) -> float:
        """Mean relative CV error of a light forest using this input pair.

        Repeated k-fold (two shuffles by default) keeps the pair ranking
        stable against fold-assignment luck; a noisy criterion here would
        make the selected pair — and hence the whole trained model —
        irreproducible.
        """
        i, j = pair
        X = _pair_features(ipc[:, i], ipc[:, j])
        # Targets: the whole vector normalized to placement i.
        Y = ipc / ipc[:, i : i + 1]
        n = len(X)
        folds = min(self.selection_folds, n)
        if folds < 2:
            raise ValueError("need at least 2 samples to select a pair")
        if n_estimators is None:
            n_estimators = self.selection_estimators
        errors: List[float] = []
        for repeat in range(n_repeats):
            splitter = KFold(
                folds, shuffle=True, random_state=self.random_state + repeat
            )
            for train, test in splitter.split(n):
                forest = RandomForestRegressor(
                    n_estimators=n_estimators,
                    random_state=self.random_state,
                )
                forest.fit(X[train], Y[train])
                predicted = forest.predict(X[test])
                errors.append(
                    float(
                        np.mean(np.abs(predicted - Y[test]) / np.abs(Y[test]))
                    )
                )
        return float(np.mean(errors))

    def _search_pair_halving(
        self, ipc: np.ndarray, pairs: List[Tuple[int, int]]
    ) -> Tuple[int, int]:
        """Budgeted pair search via successive halving (see
        :mod:`repro.ml.search`): cheap single-repeat screening of every
        pair, then progressively better estimates for the survivors."""
        from repro.ml.search import successive_halving

        budgets = [(4, 1), (8, 1), (self.selection_estimators, 2)]
        result = successive_halving(
            pairs,
            lambda pair, budget: self._pair_cv_error(
                ipc, pair, n_estimators=budget[0], n_repeats=budget[1]
            ),
            budgets,
        )
        self.selection_errors_ = dict(result.losses)
        self.search_evaluations_ = result.evaluations
        return result.best

    def fit(self, training_set: TrainingSet) -> "PlacementModel":
        start = time.perf_counter()
        ipc = training_set.ipc
        n_placements = training_set.n_placements

        if self.input_pair is None:
            # Ordered pairs: (i, j) normalizes to i, (j, i) to j.
            pairs = self.candidate_pairs or list(
                itertools.permutations(range(n_placements), 2)
            )
            if self.pair_search == "halving":
                self.input_pair = self._search_pair_halving(ipc, pairs)
            else:
                errors = {}
                for pair in pairs:
                    errors[pair] = self._pair_cv_error(ipc, pair)
                self.selection_errors_ = errors
                self.search_evaluations_ = 2 * len(pairs)
                self.input_pair = min(errors, key=errors.get)

        i, j = self.input_pair
        if not (0 <= i < n_placements and 0 <= j < n_placements and i != j):
            raise ValueError(f"invalid input pair {self.input_pair}")
        X = _pair_features(ipc[:, i], ipc[:, j])
        Y = ipc / ipc[:, i : i + 1]
        self._forest = RandomForestRegressor(
            n_estimators=self.n_estimators, random_state=self.random_state
        )
        self._forest.fit(X, Y)
        self._n_placements = n_placements
        self.fit_seconds_ = time.perf_counter() - start
        return self

    def warm_refit(
        self,
        training_set: TrainingSet,
        *,
        n_grow: int = 16,
        tree_budget: int | None = None,
    ) -> "PlacementModel":
        """A new model continuing this one's forest on an extended corpus.

        The grow-and-prune budget discipline of online retraining: the
        candidate starts from the incumbent's trees (they are read-only
        once fitted, so sharing them is safe), grows ``n_grow`` fresh trees
        on the extended training set, then prunes the *oldest* trees back
        to ``tree_budget`` (default: the incumbent's size, so serving cost
        stays flat across retrains).  The input pair is inherited — the
        predicted vectors of incumbent and candidate stay normalized to the
        same baseline placement, which is what makes their shadow-mode
        errors directly comparable.

        Returns a fresh :class:`PlacementModel`; the incumbent is not
        modified and keeps serving until the candidate is promoted.
        """
        if self._forest is None or self.input_pair is None:
            raise RuntimeError("warm_refit() called before fit()")
        if training_set.n_placements != self._n_placements:
            raise ValueError(
                f"training set has {training_set.n_placements} placements, "
                f"model was fitted for {self._n_placements}"
            )
        if tree_budget is None:
            tree_budget = len(self._forest.trees_)
        start = time.perf_counter()
        i, j = self.input_pair
        ipc = training_set.ipc
        X = _pair_features(ipc[:, i], ipc[:, j])
        Y = ipc / ipc[:, i : i + 1]

        forest = RandomForestRegressor(
            n_estimators=len(self._forest.trees_),
            random_state=self.random_state,
        )
        forest.trees_ = list(self._forest.trees_)
        forest.grow(X, Y, n_grow)
        forest.prune(tree_budget)

        candidate = PlacementModel(
            input_pair=self.input_pair,
            n_estimators=len(forest.trees_),
            random_state=self.random_state,
        )
        candidate._forest = forest
        candidate._n_placements = self._n_placements
        candidate.fit_seconds_ = time.perf_counter() - start
        return candidate

    # ------------------------------------------------------------------

    @property
    def baseline_index(self) -> int:
        """The placement the predicted vectors are normalized to."""
        if self.input_pair is None:
            raise RuntimeError("model is not fitted")
        return self.input_pair[0]

    @property
    def forest(self) -> RandomForestRegressor:
        """The fitted forest — the fused arena path
        (:func:`repro.ml.arena.predict_fused`) evaluates many models'
        forests in one call and needs direct access."""
        if self._forest is None:
            raise RuntimeError("model is not fitted")
        return self._forest

    def batch_features(
        self, perf_i: np.ndarray, perf_j: np.ndarray
    ) -> np.ndarray:
        """The forest's feature matrix for aligned observation arrays —
        exactly what :meth:`predict_batch` feeds its forest, exposed so a
        fused multi-model call can assemble per-group features first."""
        perf_i = np.atleast_1d(np.asarray(perf_i, dtype=float))
        perf_j = np.atleast_1d(np.asarray(perf_j, dtype=float))
        if perf_i.shape != perf_j.shape or perf_i.ndim != 1:
            raise ValueError(
                f"perf_i and perf_j must be equal-length 1-d arrays, got "
                f"shapes {perf_i.shape} and {perf_j.shape}"
            )
        return _pair_features(perf_i, perf_j)

    def predict(self, perf_i: float, perf_j: float) -> np.ndarray:
        """Predicted relative-performance vector from two observations.

        ``perf_i``/``perf_j`` are the measured metric in the input pair's
        placements; the result is relative to the first of the two.
        """
        if self._forest is None:
            raise RuntimeError("predict() called before fit()")
        X = _pair_features(np.array([perf_i]), np.array([perf_j]))
        return self._forest.predict(X)[0]

    def predict_batch(
        self, perf_i: np.ndarray, perf_j: np.ndarray
    ) -> np.ndarray:
        """Predicted vectors for many containers in one vectorized call.

        ``perf_i``/``perf_j`` are aligned arrays of the measured metric in
        the input pair's placements, one entry per container; the result has
        one row per container and is bit-for-bit identical to stacking the
        corresponding single :meth:`predict` calls — the whole batch goes
        through the forest as one matrix (the fleet scheduler's hot path).
        """
        if self._forest is None:
            raise RuntimeError("predict_batch() called before fit()")
        return self._forest.predict(self.batch_features(perf_i, perf_j))

    def predict_many(
        self, perf_i: np.ndarray, perf_j: np.ndarray
    ) -> np.ndarray:
        """Backwards-compatible alias of :meth:`predict_batch`."""
        return self.predict_batch(perf_i, perf_j)

    # Evaluation interface (leave_one_workload_out) ---------------------

    def predict_row(self, training_set: TrainingSet, row: int) -> np.ndarray:
        i, j = self.input_pair
        return self.predict(
            float(training_set.ipc[row, i]), float(training_set.ipc[row, j])
        )

    def actual_row(self, training_set: TrainingSet, row: int) -> np.ndarray:
        i, _ = self.input_pair
        return training_set.ipc[row] / training_set.ipc[row, i]


class HpeModel:
    """The single-placement HPE baseline (Sections 5-6).

    Features are z-scored hardware events measured in the training set's
    baseline placement; the most predictive subset is chosen by Sequential
    Forward Selection.  Output vectors are normalized to that same baseline
    placement.
    """

    def __init__(
        self,
        *,
        features: Sequence[str] | None = None,
        max_features: int = 8,
        n_estimators: int = 100,
        selection_estimators: int = 10,
        selection_folds: int = 3,
        random_state: int = 0,
    ) -> None:
        if max_features < 1:
            raise ValueError("max_features must be >= 1")
        self.features = list(features) if features else None
        self.max_features = max_features
        self.n_estimators = n_estimators
        self.selection_estimators = selection_estimators
        self.selection_folds = selection_folds
        self.random_state = random_state
        self._forest: RandomForestRegressor | None = None
        self._feature_indices: List[int] | None = None
        self._means: np.ndarray | None = None
        self._stds: np.ndarray | None = None
        self._hpe_names: List[str] | None = None
        self.selection_history_: List[float] | None = None
        self.fit_seconds_: float = 0.0

    # ------------------------------------------------------------------

    def _subset_cv_error(
        self, X: np.ndarray, Y: np.ndarray, feature_indices: Sequence[int]
    ) -> float:
        n = len(X)
        folds = min(self.selection_folds, n)
        if folds < 2:
            raise ValueError("need at least 2 samples to select features")
        errors: List[float] = []
        splitter = KFold(folds, shuffle=True, random_state=self.random_state)
        X_sub = X[:, list(feature_indices)]
        for train, test in splitter.split(n):
            forest = RandomForestRegressor(
                n_estimators=self.selection_estimators,
                random_state=self.random_state,
            )
            forest.fit(X_sub[train], Y[train])
            predicted = forest.predict(X_sub[test])
            errors.append(
                float(np.mean(np.abs(predicted - Y[test]) / np.abs(Y[test])))
            )
        return float(np.mean(errors))

    def fit(self, training_set: TrainingSet) -> "HpeModel":
        start = time.perf_counter()
        raw = training_set.hpe_features
        self._hpe_names = list(training_set.hpe_names)
        self._means = raw.mean(axis=0)
        self._stds = raw.std(axis=0)
        self._stds[self._stds == 0] = 1.0
        X = (raw - self._means) / self._stds
        Y = training_set.vectors

        if self.features is not None:
            name_to_index = {n: i for i, n in enumerate(self._hpe_names)}
            unknown = [f for f in self.features if f not in name_to_index]
            if unknown:
                raise ValueError(f"unknown HPE features: {unknown}")
            self._feature_indices = [name_to_index[f] for f in self.features]
        else:
            selected, history = sequential_forward_selection(
                X.shape[1],
                lambda indices: -self._subset_cv_error(X, Y, indices),
                max_features=self.max_features,
            )
            self._feature_indices = selected
            self.selection_history_ = history

        self._forest = RandomForestRegressor(
            n_estimators=self.n_estimators, random_state=self.random_state
        )
        self._forest.fit(X[:, self._feature_indices], Y)
        self.fit_seconds_ = time.perf_counter() - start
        return self

    # ------------------------------------------------------------------

    @property
    def selected_features(self) -> List[str]:
        if self._feature_indices is None or self._hpe_names is None:
            raise RuntimeError("model is not fitted")
        return [self._hpe_names[i] for i in self._feature_indices]

    def predict(self, hpe_values: Sequence[float]) -> np.ndarray:
        """Predict from a full HPE vector (aligned with the training set's
        ``hpe_names``) measured in the baseline placement."""
        if self._forest is None:
            raise RuntimeError("predict() called before fit()")
        values = np.asarray(hpe_values, dtype=float)
        if values.shape != self._means.shape:
            raise ValueError(
                f"expected {self._means.shape[0]} HPE values, got {values.shape}"
            )
        X = ((values - self._means) / self._stds)[self._feature_indices]
        return self._forest.predict(X[None, :])[0]

    # Evaluation interface ----------------------------------------------

    def predict_row(self, training_set: TrainingSet, row: int) -> np.ndarray:
        return self.predict(training_set.hpe_features[row])

    def actual_row(self, training_set: TrainingSet, row: int) -> np.ndarray:
        return training_set.vectors[row]
