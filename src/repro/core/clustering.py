"""Behaviour categories (Section 5, Figure 3).

Workloads "naturally fall into several categories, according to the shapes
of their performance vectors".  This module clusters performance vectors
with k-means, chooses k by the average silhouette coefficient (the paper's
rule; six categories emerged on their systems), and exposes the per-cluster
membership and centroid shapes that Figure 3 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.training import TrainingSet
from repro.ml.kmeans import KMeans, choose_k_by_silhouette, silhouette_score


@dataclass
class BehaviourClusters:
    """Result of clustering performance vectors."""

    names: List[str]
    vectors: np.ndarray
    labels: np.ndarray
    centroids: np.ndarray
    k: int
    silhouette: float
    silhouette_by_k: Dict[int, float]

    def members(self, label: int) -> List[str]:
        """Workload names in one cluster."""
        if not 0 <= label < self.k:
            raise ValueError(f"label {label} out of range [0, {self.k})")
        return [
            name
            for name, assigned in zip(self.names, self.labels)
            if assigned == label
        ]

    def label_of(self, name: str) -> int:
        try:
            index = self.names.index(name)
        except ValueError:
            raise KeyError(f"unknown workload {name!r}") from None
        return int(self.labels[index])

    def cluster_sizes(self) -> Dict[int, int]:
        return {
            label: int((self.labels == label).sum()) for label in range(self.k)
        }

    def example_clusters(self, n: int = 2) -> List[int]:
        """The ``n`` most populated clusters — what Figure 3 shows two of."""
        sizes = self.cluster_sizes()
        return sorted(sizes, key=lambda label: -sizes[label])[:n]

    def describe(self) -> str:
        lines = [
            f"{self.k} behaviour categories "
            f"(mean silhouette {self.silhouette:.3f})"
        ]
        for label in range(self.k):
            members = self.members(label)
            shape = ", ".join(f"{v:.2f}" for v in self.centroids[label])
            lines.append(
                f"  category {label}: {len(members)} workloads "
                f"(e.g. {', '.join(members[:4])})"
            )
            lines.append(f"    centroid: [{shape}]")
        return "\n".join(lines)


def cluster_behaviours(
    vectors: np.ndarray,
    names: Sequence[str],
    *,
    k: int | None = None,
    k_min: int = 2,
    k_max: int = 10,
    normalize: str = "shape",
    random_state: int = 0,
) -> BehaviourClusters:
    """Cluster performance vectors into behaviour categories.

    Parameters
    ----------
    vectors:
        (n_workloads, n_placements) relative-performance matrix.
    names:
        Workload names aligned with the rows.
    k:
        Fixed cluster count; chosen by maximum silhouette when None.
    normalize:
        ``"shape"`` (default) divides each vector by its mean so clustering
        groups by the *shape* of the response — what Figure 3 depicts —
        rather than by overall magnitude, which would otherwise dominate
        the distances for strongly placement-sensitive workloads.
        ``"none"`` clusters the raw vectors.
    """
    vectors = np.asarray(vectors, dtype=float)
    if vectors.ndim != 2:
        raise ValueError("vectors must be 2-dimensional")
    if len(names) != len(vectors):
        raise ValueError("names and vectors disagree on workload count")
    if normalize not in ("shape", "none"):
        raise ValueError(f"unknown normalize mode {normalize!r}")
    features = (
        vectors / vectors.mean(axis=1, keepdims=True)
        if normalize == "shape"
        else vectors
    )

    silhouette_by_k: Dict[int, float] = {}
    if k is None:
        k, silhouette_by_k = choose_k_by_silhouette(
            features, k_min=k_min, k_max=k_max, random_state=random_state
        )
    model = KMeans(k, random_state=random_state)
    labels = model.fit_predict(features)
    score = (
        silhouette_score(features, labels)
        if len(np.unique(labels)) > 1
        else 0.0
    )
    assert model.cluster_centers_ is not None
    return BehaviourClusters(
        names=list(names),
        vectors=vectors,
        labels=labels,
        centroids=model.cluster_centers_,
        k=k,
        silhouette=score,
        silhouette_by_k=silhouette_by_k,
    )


def cluster_training_set(
    training_set: TrainingSet,
    *,
    k: int | None = None,
    normalize: str = "shape",
    random_state: int = 0,
) -> BehaviourClusters:
    """Cluster a training set's performance vectors (Figure 3's input)."""
    return cluster_behaviours(
        training_set.vectors,
        training_set.names,
        k=k,
        normalize=normalize,
        random_state=random_state,
    )
