"""Placements: how a container's vCPUs map onto hardware threads.

The paper only considers *balanced* placements (Section 3): the vCPUs divide
evenly over the NUMA nodes in use, and within each node they divide evenly
over the L2 groups in use.  A placement is therefore fully described by

* the set of NUMA nodes it occupies,
* how many hardware threads of each L2 group it uses (``l2_share``; 1 means
  no SMT/module sharing, ``threads_per_l2`` means fully shared), and
* for split-L3 machines, how many L3 groups per node it occupies.

From these the concrete vCPU -> hardware-thread assignment follows
deterministically (nodes in ascending order, L2 groups in ascending order
within a node).  Two placements with the same score vector are
interchangeable for the model (Section 3: "identically scored placements
yield identical performance"), so the deterministic choice loses nothing.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, List, Tuple

from repro.topology.machine import MachineTopology


class Placement:
    """A balanced assignment of ``vcpus`` virtual cores to hardware threads.

    Parameters
    ----------
    machine:
        Target machine.
    nodes:
        NUMA nodes in use.  ``vcpus`` must divide evenly by their count.
    vcpus:
        Number of virtual cores (each gets its own hardware thread).
    l2_share:
        Hardware threads used per occupied L2 group.  ``1`` avoids SMT
        sharing entirely; ``machine.threads_per_l2`` packs each group fully.
    l3_groups_per_node:
        L3 groups used in each node; only meaningful on machines with
        split L3 (defaults to however many are needed, preferring fewer).
    """

    def __init__(
        self,
        machine: MachineTopology,
        nodes: Iterable[int],
        vcpus: int,
        *,
        l2_share: int = 1,
        l3_groups_per_node: int | None = None,
    ) -> None:
        node_tuple = tuple(sorted(set(nodes)))
        if not node_tuple:
            raise ValueError("a placement needs at least one node")
        for node in node_tuple:
            if not 0 <= node < machine.n_nodes:
                raise ValueError(f"unknown node {node}")
        if vcpus < 1:
            raise ValueError("vcpus must be >= 1")
        if vcpus % len(node_tuple) != 0:
            raise ValueError(
                f"unbalanced placement: {vcpus} vCPUs on {len(node_tuple)} nodes"
            )
        if not 1 <= l2_share <= machine.threads_per_l2:
            raise ValueError(
                f"l2_share must be in [1, {machine.threads_per_l2}], got {l2_share}"
            )
        per_node = vcpus // len(node_tuple)
        if per_node % l2_share != 0:
            raise ValueError(
                f"unbalanced L2 sharing: {per_node} vCPUs per node with "
                f"l2_share={l2_share}"
            )
        groups_per_node = per_node // l2_share
        if groups_per_node > machine.l2_groups_per_node:
            raise ValueError(
                f"infeasible: needs {groups_per_node} L2 groups per node, "
                f"machine has {machine.l2_groups_per_node}"
            )

        if l3_groups_per_node is None:
            # Prefer the fewest L3 groups that can hold the needed L2 groups.
            l2_per_l3 = machine.l2_groups_per_node // machine.l3_groups_per_node
            l3_groups_per_node = -(-groups_per_node // l2_per_l3)  # ceil div
        if not 1 <= l3_groups_per_node <= machine.l3_groups_per_node:
            raise ValueError(
                f"l3_groups_per_node must be in [1, {machine.l3_groups_per_node}]"
            )
        l2_per_l3 = machine.l2_groups_per_node // machine.l3_groups_per_node
        if groups_per_node % l3_groups_per_node != 0:
            raise ValueError(
                f"unbalanced L3 split: {groups_per_node} L2 groups per node "
                f"over {l3_groups_per_node} L3 groups"
            )
        if groups_per_node // l3_groups_per_node > l2_per_l3:
            raise ValueError(
                f"infeasible: needs {groups_per_node // l3_groups_per_node} "
                f"L2 groups per L3 group, machine has {l2_per_l3}"
            )

        self._machine = machine
        self._nodes = node_tuple
        self._vcpus = vcpus
        self._l2_share = l2_share
        self._l3_groups_per_node = l3_groups_per_node

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def balanced(
        cls,
        machine: MachineTopology,
        nodes: Iterable[int],
        vcpus: int,
        *,
        use_smt: bool = False,
    ) -> "Placement":
        """The two placements users most often want: SMT fully on or off."""
        l2_share = machine.threads_per_l2 if use_smt else 1
        return cls(machine, nodes, vcpus, l2_share=l2_share)

    @classmethod
    def from_l2_score(
        cls,
        machine: MachineTopology,
        nodes: Iterable[int],
        vcpus: int,
        l2_score: int,
    ) -> "Placement":
        """Build a placement that uses exactly ``l2_score`` L2 groups (the
        parametrization of the enumeration algorithms)."""
        if l2_score < 1 or vcpus % l2_score != 0:
            raise ValueError(
                f"l2_score {l2_score} does not divide {vcpus} vCPUs evenly"
            )
        return cls(machine, nodes, vcpus, l2_share=vcpus // l2_score)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def machine(self) -> MachineTopology:
        return self._machine

    @property
    def nodes(self) -> Tuple[int, ...]:
        return self._nodes

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def vcpus(self) -> int:
        return self._vcpus

    @property
    def l2_share(self) -> int:
        return self._l2_share

    @property
    def uses_smt(self) -> bool:
        """True when any L2 group hosts more than one vCPU."""
        return self._l2_share > 1

    @property
    def vcpus_per_node(self) -> int:
        return self._vcpus // len(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Placement):
            return NotImplemented
        return (
            self._machine.name == other._machine.name
            and self._nodes == other._nodes
            and self._vcpus == other._vcpus
            and self._l2_share == other._l2_share
            and self._l3_groups_per_node == other._l3_groups_per_node
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._machine.name,
                self._nodes,
                self._vcpus,
                self._l2_share,
                self._l3_groups_per_node,
            )
        )

    def __repr__(self) -> str:
        smt = "smt" if self.uses_smt else "no-smt"
        return (
            f"Placement(nodes={list(self._nodes)}, vcpus={self._vcpus}, {smt})"
        )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe identity of this placement.

        The machine travels by *name*: topologies are process-local
        constants, and every field the placement's equality checks is in
        the payload (``l3_groups_per_node`` serializes resolved, never
        None, so the round-trip is exact even when the constructor
        defaulted it).
        """
        return {
            "machine": self._machine.name,
            "nodes": list(self._nodes),
            "vcpus": self._vcpus,
            "l2_share": self._l2_share,
            "l3_groups_per_node": self._l3_groups_per_node,
        }

    @classmethod
    def from_dict(cls, data: dict, machines) -> "Placement":
        """Inverse of :meth:`to_dict`; ``machines`` maps name -> topology
        (see :func:`repro.core.serialize.machines_by_name`)."""
        from repro.core.serialize import resolve_machine

        return cls(
            resolve_machine(data["machine"], machines),
            data["nodes"],
            data["vcpus"],
            l2_share=data["l2_share"],
            l3_groups_per_node=data["l3_groups_per_node"],
        )

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------

    @cached_property
    def l2_groups(self) -> Tuple[int, ...]:
        """Global ids of the L2 groups in use."""
        groups: List[int] = []
        per_node = self.vcpus_per_node // self._l2_share
        per_l3 = per_node // self._l3_groups_per_node
        l2_per_l3 = (
            self._machine.l2_groups_per_node // self._machine.l3_groups_per_node
        )
        for node in self._nodes:
            node_first_group = node * self._machine.l2_groups_per_node
            for l3_index in range(self._l3_groups_per_node):
                start = node_first_group + l3_index * l2_per_l3
                groups.extend(range(start, start + per_l3))
        return tuple(groups)

    @cached_property
    def l3_groups(self) -> Tuple[int, ...]:
        """Global ids of the L3 groups in use."""
        groups: List[int] = []
        for node in self._nodes:
            start = node * self._machine.l3_groups_per_node
            groups.extend(range(start, start + self._l3_groups_per_node))
        return tuple(groups)

    @cached_property
    def threads(self) -> Tuple[int, ...]:
        """Hardware thread of each vCPU (index = vCPU id)."""
        assignment: List[int] = []
        for group in self.l2_groups:
            group_threads = self._machine.threads_of_l2_group(group)
            assignment.extend(group_threads[: self._l2_share])
        return tuple(assignment)

    @property
    def l2_score(self) -> int:
        """Number of L2 groups in use (the paper's L2/SMT concern score)."""
        return len(self.l2_groups)

    @property
    def l3_score(self) -> int:
        """Number of L3 caches in use (the paper's L3 concern score)."""
        return len(self.l3_groups)

    @property
    def node_score(self) -> int:
        """Number of NUMA nodes in use."""
        return len(self._nodes)

    def cpu_affinity_masks(self) -> List[Tuple[int, ...]]:
        """Per-vCPU affinity masks (singleton: each vCPU is pinned to one
        hardware thread).  This is the boundary where a real backend would
        call ``sched_setaffinity``/cgroup cpusets."""
        return [(thread,) for thread in self.threads]

    def describe(self) -> str:
        return (
            f"{self._vcpus} vCPUs on nodes {list(self._nodes)} "
            f"({'SMT' if self.uses_smt else 'no SMT'}: "
            f"{self.l2_score} L2 groups, {self.l3_score} L3 caches)"
        )
