"""The end-to-end scheduler prototype (Section 1, steps 1-4; Section 7).

One :class:`PlacementScheduler` wires everything together for a single
machine:

1. the concern specification comes from the machine model (step 1);
2. the important placements are enumerated once (step 2);
3. a model trained for the machine and vCPU count predicts performance
   vectors from two probe runs (step 3);
4. the scheduler runs an arriving container in the two input placements for
   a couple of seconds each, predicts, chooses a final placement subject to
   the operator's goal, and migrates the container there — charging the
   migration cost modelled by :mod:`repro.migration` (step 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.containers.container import VirtualContainer
from repro.containers.host import SimulatedHost
from repro.core.enumeration import ImportantPlacementSet
from repro.core.model import PlacementModel
from repro.core.placements import Placement
from repro.migration.planner import MigrationAdvice, MigrationPlanner


@dataclass
class SchedulerReport:
    """Everything that happened while placing one container."""

    container: str
    probe_observations: Tuple[float, float]
    predicted_vector: np.ndarray
    chosen_placement: Placement
    chosen_id: int
    goal_fraction: float | None
    predicted_relative: float
    migration: MigrationAdvice
    probe_seconds: float

    def summary(self) -> str:
        lines = [
            f"container {self.container}:",
            f"  probed {self.probe_observations[0]:.3f} / "
            f"{self.probe_observations[1]:.3f} IPC in the two input placements "
            f"({self.probe_seconds:.1f}s of probing)",
            f"  chose placement #{self.chosen_id}: "
            f"{self.chosen_placement.describe()}",
            f"  predicted relative performance {self.predicted_relative:.2f}"
            + (
                f" (goal {self.goal_fraction:.2f})"
                if self.goal_fraction is not None
                else ""
            ),
            f"  migration: {self.migration.recommended} — {self.migration.reason}",
        ]
        return "\n".join(lines)


class PlacementScheduler:
    """Places containers on one machine using the trained model.

    Parameters
    ----------
    host:
        The machine (with its container runtime).
    model:
        A fitted :class:`PlacementModel` for this machine and vCPU count.
    placements:
        The machine's important placements (the model's output space).
    probe_duration_s:
        How long each probe placement runs ("for a couple of seconds",
        Section 1).
    planner:
        Migration planner used for the final move.
    """

    def __init__(
        self,
        host: SimulatedHost,
        model: PlacementModel,
        placements: ImportantPlacementSet,
        *,
        probe_duration_s: float = 3.0,
        planner: MigrationPlanner | None = None,
    ) -> None:
        if model.input_pair is None:
            raise ValueError("model must be fitted before scheduling")
        self.host = host
        self.model = model
        self.placements = placements
        self.probe_duration_s = probe_duration_s
        self.planner = planner or MigrationPlanner()

    def place(
        self,
        container: VirtualContainer,
        *,
        goal_fraction: float | None = None,
    ) -> SchedulerReport:
        """Probe, predict, choose, and migrate one container.

        With a ``goal_fraction`` the scheduler picks the placement using
        the fewest NUMA nodes whose predicted performance (relative to the
        model baseline) meets the goal — the cost/performance trade-off of
        Section 1.  Without one it simply maximizes predicted performance.
        """
        if container.vcpus != self.placements.vcpus:
            raise ValueError(
                f"container has {container.vcpus} vCPUs, model was trained "
                f"for {self.placements.vcpus}"
            )
        i, j = self.model.input_pair

        # Step 4a: run in the two input placements, a couple of seconds
        # each, without interrupting the workload.
        self.host.deploy(container, self.placements[i])
        obs_i = self.host.measure_ipc(container, duration_s=self.probe_duration_s)
        self.host.migrate(container, self.placements[j])
        obs_j = self.host.measure_ipc(container, duration_s=self.probe_duration_s)

        # Step 4b: predict the full vector.
        vector = self.model.predict(obs_i, obs_j)

        # Step 4c: choose.
        if goal_fraction is not None:
            meeting = [
                (placement, predicted)
                for placement, predicted in zip(self.placements, vector)
                if predicted >= goal_fraction
            ]
            if meeting:
                chosen, predicted = min(
                    meeting, key=lambda c: (c[0].n_nodes, -c[1])
                )
            else:
                index = int(np.argmax(vector))
                chosen, predicted = self.placements[index], float(vector[index])
        else:
            index = int(np.argmax(vector))
            chosen, predicted = self.placements[index], float(vector[index])

        # Step 4d: migrate to the final placement.
        self.host.migrate(container, chosen)
        advice = self.planner.advise(container.profile, probe_migrations=2)

        return SchedulerReport(
            container=container.name,
            probe_observations=(obs_i, obs_j),
            predicted_vector=vector,
            chosen_placement=chosen,
            chosen_id=self.placements.id_of(chosen),
            goal_fraction=goal_fraction,
            predicted_relative=float(predicted),
            migration=advice,
            probe_seconds=2 * self.probe_duration_s
            + advice.results[advice.recommended if advice.recommended != "offline" else "fast"].seconds,
        )
