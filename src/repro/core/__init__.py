"""The paper's contribution: scheduling concerns, important placements,
performance prediction, and placement policies.

NOTE: imports grow as modules land; the full public API is re-exported from
:mod:`repro` once complete.
"""

from repro.core.concerns import (
    SchedulingConcern,
    CountingConcern,
    BandwidthConcern,
    ConcernSet,
    ScoreVector,
    concerns_for,
)
from repro.core.placements import Placement
from repro.core.enumeration import (
    ImportantPlacementSet,
    Packing,
    enumerate_important_placements,
    generate_scores,
    gen_packings,
    important_placements,
    pareto_filter_packings,
)
from repro.core.memo import (
    DEFAULT_ENUMERATION_CACHE,
    CacheInfo,
    EnumerationCache,
    cached_block_score_table,
    cached_enumerate_important_placements,
)
from repro.core.blockscores import (
    DEFAULT_BLOCK_SCORE_CACHE,
    SCORE_TOLERANCE,
    BlockScoreCache,
    BlockScoreTable,
    block_score_table,
    scores_match,
)
from repro.core.model import HpeModel, ModelEvaluation, PlacementModel
from repro.core.training import (
    FoldResult,
    TrainingSet,
    build_training_set,
    leave_one_workload_out,
    workload_family,
)
from repro.core.clustering import (
    BehaviourClusters,
    cluster_behaviours,
    cluster_training_set,
)
from repro.core.policies import (
    AggressivePolicy,
    ConservativePolicy,
    MlPolicy,
    PackingOutcome,
    PlacementPolicy,
    SmartAggressivePolicy,
    best_min_node_sets,
    evaluate_policy,
)
from repro.core.runtime import PlacementScheduler, SchedulerReport
from repro.core.interleaving import (
    InterleaveOutcome,
    interconnect_disjoint,
    interleave_experiment,
    is_safe_filler,
)

__all__ = [
    "InterleaveOutcome",
    "interconnect_disjoint",
    "interleave_experiment",
    "is_safe_filler",
    "PlacementPolicy",
    "MlPolicy",
    "ConservativePolicy",
    "AggressivePolicy",
    "SmartAggressivePolicy",
    "PackingOutcome",
    "best_min_node_sets",
    "evaluate_policy",
    "PlacementScheduler",
    "SchedulerReport",
    "PlacementModel",
    "HpeModel",
    "ModelEvaluation",
    "FoldResult",
    "TrainingSet",
    "build_training_set",
    "leave_one_workload_out",
    "workload_family",
    "BehaviourClusters",
    "cluster_behaviours",
    "cluster_training_set",
    "SchedulingConcern",
    "CountingConcern",
    "BandwidthConcern",
    "ConcernSet",
    "ScoreVector",
    "concerns_for",
    "Placement",
    "ImportantPlacementSet",
    "Packing",
    "CacheInfo",
    "EnumerationCache",
    "DEFAULT_ENUMERATION_CACHE",
    "BlockScoreCache",
    "BlockScoreTable",
    "DEFAULT_BLOCK_SCORE_CACHE",
    "SCORE_TOLERANCE",
    "block_score_table",
    "scores_match",
    "cached_block_score_table",
    "cached_enumerate_important_placements",
    "enumerate_important_placements",
    "generate_scores",
    "gen_packings",
    "important_placements",
    "pareto_filter_packings",
]
