"""Scheduling concerns: the paper's abstraction of shared resources.

A scheduling concern (Section 4) is responsible for one hardware resource
(or an inseparable bundle of resources) and produces a numeric *score* for a
placement describing its static utilization of that resource.  Two flags
steer the enumeration of important placements:

* ``affects_cost`` — a lower score means the container occupies less of the
  machine (e.g. fewer NUMA nodes), so lower-scoring placements must be kept
  as cost/performance trade-off options even if they may be slower.
* ``inverse_performance_possible`` — a lower score can sometimes *help*
  (cooperative cache sharing, cheaper communication), so lower-scoring
  placements cannot be discarded as strictly worse.

Resources for which both flags are false (the AMD interconnect) allow
Pareto-filtering: a placement with a lower score and equal everything else
is never useful.

The concern set for a machine is what Table 1 of the paper specifies for
the AMD system; :func:`concerns_for` derives it automatically from the
machine model.
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.core.placements import Placement
from repro.topology.machine import MachineTopology

#: Number of decimals kept when scores are compared / hashed.  Bandwidth
#: scores are measurements; beyond 3 decimals differences are noise.
SCORE_DECIMALS = 3


class ScoreVector:
    """An ordered, hashable vector of concern scores.

    Placements with equal score vectors are deemed to perform identically
    (Section 3), so the vector is the dedup key of the whole methodology.
    """

    def __init__(self, entries: Iterable[Tuple[str, float]]) -> None:
        self._entries: Tuple[Tuple[str, float], ...] = tuple(
            (name, round(float(value), SCORE_DECIMALS))
            for name, value in entries
        )
        names = [name for name, _ in self._entries]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate concern names in score vector: {names}")

    @property
    def entries(self) -> Tuple[Tuple[str, float], ...]:
        return self._entries

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self._entries)

    @property
    def values(self) -> Tuple[float, ...]:
        return tuple(value for _, value in self._entries)

    def __getitem__(self, name: str) -> float:
        for entry_name, value in self._entries:
            if entry_name == name:
                return value
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return name in self.names

    def as_dict(self) -> Dict[str, float]:
        return dict(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScoreVector):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def __repr__(self) -> str:
        body = ", ".join(f"{name}={value:g}" for name, value in self._entries)
        return f"ScoreVector({body})"


class SchedulingConcern(abc.ABC):
    """Scores the static utilization of one shared resource."""

    #: Short identifier used in score vectors ("l2", "l3", "interconnect").
    name: str
    #: The hardware resources the concern bundles (documentation; Table 1).
    resources: Tuple[str, ...]
    #: True when the score is proportional to what the placement costs the
    #: operator (more nodes used = fewer containers per machine).
    affects_cost: bool
    #: True when a *lower* score can improve performance for some workloads.
    inverse_performance_possible: bool

    @abc.abstractmethod
    def score(self, placement: Placement) -> float:
        """Static utilization of the resource by ``placement``."""

    @property
    def protects_low_scores(self) -> bool:
        """Whether placements with lower scores must be retained during
        enumeration (Section 4)."""
        return self.affects_cost or self.inverse_performance_possible

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"cost={self.affects_cost}, "
            f"inverse={self.inverse_performance_possible})"
        )


class CountingConcern(SchedulingConcern):
    """Counts distinct resource instances in use (L2 groups, L3 caches,
    NUMA nodes).

    Parameters
    ----------
    name:
        Score-vector key.
    count:
        Total instances on the machine (the paper's ``Count``).
    capacity:
        Hardware threads per instance (the paper's ``Capacity``).
    """

    def __init__(
        self,
        name: str,
        *,
        count: int,
        capacity: int,
        resources: Sequence[str],
        affects_cost: bool = True,
        inverse_performance_possible: bool = True,
    ) -> None:
        if count < 1 or capacity < 1:
            raise ValueError("count and capacity must be positive")
        self.name = name
        self.count = count
        self.capacity = capacity
        self.resources = tuple(resources)
        self.affects_cost = affects_cost
        self.inverse_performance_possible = inverse_performance_possible

    def score(self, placement: Placement) -> float:
        if self.name == "l2":
            return float(placement.l2_score)
        if self.name == "l3":
            return float(placement.l3_score)
        if self.name == "node":
            return float(placement.node_score)
        raise ValueError(f"CountingConcern cannot score {self.name!r}")

    def possible_scores(self, vcpus: int) -> List[int]:
        """Algorithm 1: scores that are balanced and feasible for ``vcpus``.

        A score ``i`` is balanced when the vCPUs divide evenly over ``i``
        instances, and feasible when each instance can hold its share.
        """
        if vcpus < 1:
            raise ValueError("vcpus must be >= 1")
        return [
            i
            for i in range(1, self.count + 1)
            if vcpus % i == 0 and vcpus // i <= self.capacity
        ]


class BandwidthConcern(SchedulingConcern):
    """The interconnect concern: aggregate measured bandwidth of the node
    set in use.

    The score comes from a table of STREAM-like measurements (Section 4:
    "it is simpler and more accurate to measure the aggregate bandwidth with
    a benchmark for each possible combination of nodes").  Lower bandwidth
    never helps and never saves the operator anything, so both flags are
    false and placements may be Pareto-filtered on this score.
    """

    def __init__(
        self,
        machine: MachineTopology,
        *,
        name: str = "interconnect",
        bandwidth_table: Mapping[FrozenSet[int], float] | None = None,
    ) -> None:
        self.name = name
        self.resources = ("interconnect bandwidth",)
        self.affects_cost = False
        self.inverse_performance_possible = False
        self._machine = machine
        self._table: Dict[FrozenSet[int], float] = (
            dict(bandwidth_table) if bandwidth_table is not None else {}
        )

    def score(self, placement: Placement) -> float:
        return self.score_nodes(placement.nodes)

    def score_nodes(self, nodes: Iterable[int]) -> float:
        """Score an arbitrary node combination (used by the enumeration,
        which scores packing blocks before placements exist)."""
        key = frozenset(nodes)
        if key in self._table:
            return self._table[key]
        value = self._machine.interconnect.aggregate_bandwidth(key)
        self._table[key] = value
        return value


class ConcernSet:
    """The ordered collection of concerns for one machine (Table 1)."""

    def __init__(self, machine: MachineTopology, concerns: Sequence[SchedulingConcern]) -> None:
        if not concerns:
            raise ValueError("a concern set needs at least one concern")
        names = [concern.name for concern in concerns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate concern names: {names}")
        self.machine = machine
        self._concerns: Tuple[SchedulingConcern, ...] = tuple(concerns)

    def __iter__(self):
        return iter(self._concerns)

    def __len__(self) -> int:
        return len(self._concerns)

    def __getitem__(self, name: str) -> SchedulingConcern:
        for concern in self._concerns:
            if concern.name == name:
                return concern
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(concern.name == name for concern in self._concerns)

    def score_vector(self, placement: Placement) -> ScoreVector:
        """The vector that uniquely identifies the placement's resource
        sharing (Section 4)."""
        return ScoreVector(
            (concern.name, concern.score(placement)) for concern in self._concerns
        )

    @property
    def bandwidth_concern(self) -> BandwidthConcern | None:
        for concern in self._concerns:
            if isinstance(concern, BandwidthConcern):
                return concern
        return None

    def counting(self, name: str) -> CountingConcern:
        concern = self[name]
        if not isinstance(concern, CountingConcern):
            raise TypeError(f"concern {name!r} is not a CountingConcern")
        return concern

    def table(self) -> str:
        """Render the concern set the way Table 1 of the paper does."""
        rows = []
        header = f"{'Concern':<14}{'Resources':<52}{'Cost?':<7}{'Inverse?':<8}"
        rows.append(header)
        rows.append("-" * len(header))
        for concern in self._concerns:
            rows.append(
                f"{concern.name:<14}"
                f"{', '.join(concern.resources):<52}"
                f"{'Y' if concern.affects_cost else 'N':<7}"
                f"{'Y' if concern.inverse_performance_possible else 'N':<8}"
            )
        return "\n".join(rows)


def concerns_for(machine: MachineTopology) -> ConcernSet:
    """Derive the Table-1 concern set from a machine model.

    * Every machine gets an **L2/SMT** concern (threads sharing an L2 group
      also share the front-end/FP units or the SMT pipeline) and an **L3**
      concern (L3 cache plus, on ordinary machines, the memory controller
      and DRAM bandwidth behind it).
    * Machines with split L3 (Zen) additionally get a **node** concern for
      the memory controller, since L3 no longer implies the node.
    * Machines with an asymmetric interconnect get the **interconnect**
      bandwidth concern.  Symmetric machines (the paper's Intel system) do
      not: every equal-sized node set scores identically, so the concern
      would never distinguish placements.
    """
    concerns: List[SchedulingConcern] = [
        CountingConcern(
            "l2",
            count=machine.l2_count,
            capacity=machine.l2_capacity,
            resources=(
                "L2 cache",
                "instruction fetch and decode",
                "floating point units"
                if machine.threads_per_l2 > 1
                else "core pipeline",
            ),
        )
    ]
    l3_resources: Tuple[str, ...]
    if machine.l3_groups_per_node == 1:
        l3_resources = ("L3 cache", "memory controller", "bandwidth to DRAM")
    else:
        l3_resources = ("L3 cache",)
    concerns.append(
        CountingConcern(
            "l3",
            count=machine.l3_count,
            capacity=machine.l3_capacity,
            resources=l3_resources,
        )
    )
    if machine.l3_groups_per_node > 1:
        concerns.append(
            CountingConcern(
                "node",
                count=machine.n_nodes,
                capacity=machine.threads_per_node,
                resources=("memory controller", "bandwidth to DRAM"),
            )
        )
    if machine.n_nodes > 1 and not machine.interconnect.is_symmetric:
        concerns.append(BandwidthConcern(machine))
    return ConcernSet(machine, concerns)
