"""Interleaving containers on one machine (Section 3's future work).

The paper's model assumes the target container does not share NUMA nodes:
"Unused NUMA nodes can be safely used to run other containers without
interference as long as those nodes do not share the interconnect — a
condition that can be automatically checked using the machine
specification."  It then sketches an alternative: "only interleave with
'safe' containers, e.g., those with low CPU utilization or otherwise known
to cause negligible interference."

This module implements both ideas:

* :func:`interconnect_disjoint` — the automatic machine-spec check: two
  node sets are interconnect-disjoint when the links their internal traffic
  routes over do not overlap;
* :func:`is_safe_filler` — the "safe container" heuristic: negligible
  bandwidth and communication demand;
* :func:`interleave_experiment` — place a primary container with the ML
  policy, fill the leftover nodes with a filler container, and measure
  whether the primary's goal survives.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Set

import networkx as nx

from repro.core.placements import Placement
from repro.core.policies import MlPolicy
from repro.perfsim.simulator import PerformanceSimulator
from repro.perfsim.workload import WorkloadProfile
from repro.topology.machine import MachineTopology

#: Safety thresholds for :func:`is_safe_filler`, as fractions of one node's
#: DRAM bandwidth (per filler vCPU) and of the comm scale.
_SAFE_MEMBW_FRACTION = 0.03
_SAFE_COMM_INTENSITY = 0.15


def _links_used_within(machine: MachineTopology, nodes: Iterable[int]) -> Set[FrozenSet[int]]:
    """Interconnect links that traffic internal to ``nodes`` routes over
    (union over all shortest paths between member pairs)."""
    node_list = sorted(set(nodes))
    graph = nx.Graph()
    graph.add_nodes_from(machine.interconnect.nodes)
    for link in machine.interconnect.links:
        a, b = sorted(link)
        graph.add_edge(a, b)
    used: Set[FrozenSet[int]] = set()
    for a, b in itertools.combinations(node_list, 2):
        for path in nx.all_shortest_paths(graph, a, b):
            used.update(frozenset(pair) for pair in zip(path, path[1:]))
    return used


def interconnect_disjoint(
    machine: MachineTopology, nodes_a: Iterable[int], nodes_b: Iterable[int]
) -> bool:
    """True when the two node sets' internal traffic shares no link.

    Single-node sets generate no interconnect traffic, so they are disjoint
    from everything.  This is the condition under which the paper declares
    co-residency safe without extending the model.
    """
    set_a, set_b = set(nodes_a), set(nodes_b)
    if set_a & set_b:
        return False  # sharing a node is never interconnect-disjoint
    links_a = _links_used_within(machine, set_a)
    links_b = _links_used_within(machine, set_b)
    return not (links_a & links_b)


def is_safe_filler(
    machine: MachineTopology, profile: WorkloadProfile
) -> bool:
    """The paper's "safe container" heuristic: negligible demand on the
    shared resources our model tracks."""
    membw_fraction = profile.membw_per_vcpu / machine.dram_bandwidth_mbps
    return (
        membw_fraction <= _SAFE_MEMBW_FRACTION
        and profile.comm_intensity <= _SAFE_COMM_INTENSITY
    )


@dataclass
class InterleaveOutcome:
    """Result of one interleaving experiment."""

    primary_instances: int
    filler_instances: int
    primary_goal_value: float
    primary_achieved: List[float]
    filler_achieved: List[float]
    filler_safe: bool
    interconnect_disjoint: bool

    @property
    def primary_violation_pct(self) -> float:
        if not self.primary_achieved:
            return 0.0
        worst = min(self.primary_achieved)
        return max(
            0.0,
            (self.primary_goal_value - worst)
            / self.primary_goal_value
            * 100.0,
        )

    @property
    def primary_meets_goal(self) -> bool:
        return self.primary_violation_pct == 0.0


def interleave_experiment(
    policy: MlPolicy,
    machine: MachineTopology,
    primary: WorkloadProfile,
    filler: WorkloadProfile,
    vcpus: int,
    *,
    goal_fraction: float,
    baseline_placement: Placement,
    simulator: PerformanceSimulator | None = None,
    filler_vcpus: int | None = None,
) -> InterleaveOutcome:
    """Place the primary container with the ML policy, then fill the idle
    nodes with instances of ``filler`` and measure everyone together.

    The filler is deployed one instance per idle node (its vCPU count
    defaults to a full node), pinned — the scenario of an operator
    harvesting leftover capacity with batch jobs.
    """
    simulator = simulator or PerformanceSimulator(machine)
    baseline_value = simulator.throughput(primary, baseline_placement, noise=False)
    goal_value = goal_fraction * baseline_value

    primary_placements = policy.assignments(
        machine, primary, vcpus, goal_fraction
    )
    used: Set[int] = set()
    for placement in primary_placements:
        used |= set(placement.nodes)
    idle = [n for n in machine.nodes if n not in used]

    if filler_vcpus is None:
        filler_vcpus = machine.threads_per_node
    filler_placements = [
        Placement(
            machine,
            [node],
            filler_vcpus,
            l2_share=max(
                1, -(-filler_vcpus // machine.l2_groups_per_node)
            ),
        )
        for node in idle
    ]

    assignments = [(primary, p) for p in primary_placements] + [
        (filler, p) for p in filler_placements
    ]
    values = simulator.simulate_colocated(assignments, noise=False)
    n_primary = len(primary_placements)

    disjoint = all(
        interconnect_disjoint(machine, p.nodes, f.nodes)
        for p in primary_placements
        for f in filler_placements
    )
    return InterleaveOutcome(
        primary_instances=n_primary,
        filler_instances=len(filler_placements),
        primary_goal_value=goal_value,
        primary_achieved=list(values[:n_primary]),
        filler_achieved=list(values[n_primary:]),
        filler_safe=is_safe_filler(machine, filler),
        interconnect_disjoint=disjoint,
    )
