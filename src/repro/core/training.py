"""Training-set assembly and per-application cross-validation (Section 6).

A training set row is one workload "executed" in every important placement:
its measured IPC per placement, the derived relative performance vector, and
the HPE values observed in the evaluation baseline placement.  The paper's
evaluation is *per-application cross-validated*: predicting a workload must
not use any run of that workload — or of its siblings (neither spark-cc nor
spark-pr-lj may inform a Spark prediction) — during training.
:func:`workload_family` encodes that grouping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.core.enumeration import (
    ImportantPlacementSet,
    enumerate_important_placements,
)
from repro.perfsim.hpe import HpeMonitor
from repro.perfsim.simulator import PerformanceSimulator
from repro.perfsim.workload import WorkloadProfile
from repro.topology.machine import MachineTopology


def workload_family(name: str) -> str:
    """Cross-validation group of a workload.

    Workloads that share an application (the two Spark jobs, the two
    Postgres benchmarks) are one family; synthetic workloads group by their
    archetype so sibling samples cannot leak either.
    """
    if name.startswith("spark-"):
        return "spark"
    if name.startswith("postgres-"):
        return "postgres"
    if name.startswith("synthetic-"):
        # synthetic-<archetype>-0001 -> synthetic-<archetype>
        return name.rsplit("-", 1)[0]
    return name


@dataclass
class TrainingSet:
    """Measured executions of a workload corpus across important placements.

    Attributes
    ----------
    placements:
        The important placements (columns of all matrices).
    workloads:
        Profiles, one per row.
    ipc:
        Measured IPC per (workload, placement).
    vectors:
        Relative performance per (workload, placement), normalized to
        ``baseline_index`` (the model's target).
    hpe_features:
        HPE values measured in the baseline placement, aligned with
        ``hpe_names``.
    baseline_index:
        Column the vectors are normalized to.
    """

    machine: MachineTopology
    placements: ImportantPlacementSet
    workloads: List[WorkloadProfile]
    ipc: np.ndarray
    vectors: np.ndarray
    hpe_features: np.ndarray
    hpe_names: List[str]
    baseline_index: int

    def __post_init__(self) -> None:
        n, k = self.ipc.shape
        if len(self.workloads) != n:
            raise ValueError("workload count does not match matrix rows")
        if k != len(self.placements):
            raise ValueError("placement count does not match matrix columns")
        if self.vectors.shape != (n, k):
            raise ValueError("vectors shape mismatch")
        if self.hpe_features.shape[0] != n:
            raise ValueError("hpe_features row mismatch")
        if not 0 <= self.baseline_index < k:
            raise ValueError("baseline_index out of range")

    @property
    def names(self) -> List[str]:
        return [w.name for w in self.workloads]

    @property
    def families(self) -> List[str]:
        return [workload_family(w.name) for w in self.workloads]

    def __len__(self) -> int:
        return len(self.workloads)

    @property
    def n_placements(self) -> int:
        return len(self.placements)

    def subset(self, rows: Sequence[int]) -> "TrainingSet":
        """A new training set restricted to the given rows."""
        rows = list(rows)
        return TrainingSet(
            machine=self.machine,
            placements=self.placements,
            workloads=[self.workloads[i] for i in rows],
            ipc=self.ipc[rows],
            vectors=self.vectors[rows],
            hpe_features=self.hpe_features[rows],
            hpe_names=self.hpe_names,
            baseline_index=self.baseline_index,
        )

    def renormalized(self, baseline_index: int) -> "TrainingSet":
        """The same data with vectors normalized to another placement."""
        if not 0 <= baseline_index < self.n_placements:
            raise ValueError("baseline_index out of range")
        vectors = self.vectors / self.vectors[:, baseline_index : baseline_index + 1]
        return TrainingSet(
            machine=self.machine,
            placements=self.placements,
            workloads=list(self.workloads),
            ipc=self.ipc,
            vectors=vectors,
            hpe_features=self.hpe_features,
            hpe_names=self.hpe_names,
            baseline_index=baseline_index,
        )


def build_training_set(
    machine: MachineTopology,
    vcpus: int,
    workloads: Sequence[WorkloadProfile],
    *,
    simulator: PerformanceSimulator | None = None,
    placements: ImportantPlacementSet | None = None,
    baseline_index: int = 0,
    noise: bool = True,
    repetition: int = 0,
) -> TrainingSet:
    """Run every workload in every important placement and collect the
    matrices the models train on.

    On real hardware this is the expensive step the paper's methodology
    minimizes (each row is one run per important placement — a couple dozen
    runs, not billions); on the simulator it is instant.
    """
    if not workloads:
        raise ValueError("workloads must not be empty")
    if simulator is None:
        simulator = PerformanceSimulator(machine)
    if placements is None:
        placements = enumerate_important_placements(machine, vcpus)
    monitor = HpeMonitor(simulator)

    # The whole (workload x placement) IPC matrix in one vectorized
    # simulator pass — bit-for-bit what the per-cell measured_ipc loop
    # produced, so models trained before and after the batched kernels
    # are identical.
    ipc = simulator.measured_ipc_batch(
        list(workloads), list(placements), noise=noise, repetition=repetition
    )
    vectors = ipc / ipc[:, baseline_index : baseline_index + 1]

    baseline_placement = placements[baseline_index]
    hpe_rows = []
    for profile in workloads:
        values = monitor.measure(
            profile, baseline_placement, repetition=repetition
        )
        hpe_rows.append([values[name] for name in monitor.event_names])

    return TrainingSet(
        machine=machine,
        placements=placements,
        workloads=list(workloads),
        ipc=ipc,
        vectors=vectors,
        hpe_features=np.asarray(hpe_rows),
        hpe_names=list(monitor.event_names),
        baseline_index=baseline_index,
    )


def extend_training_set(
    base: TrainingSet,
    new_workloads: Sequence[WorkloadProfile],
    *,
    simulator: PerformanceSimulator | None = None,
    noise: bool = True,
    repetition: int = 0,
) -> TrainingSet:
    """Warm-start corpus growth: simulate *only* the new rows and append.

    The online retraining loop (:mod:`repro.serving.retrain`) folds freshly
    observed workloads into an existing corpus.  Re-running
    :func:`build_training_set` on the union would re-simulate every old row
    per retrain; this appends new rows to the existing matrices instead, so
    a retrain costs ``len(new_workloads) x len(placements)`` simulator runs
    however large the accumulated corpus is.  Workloads whose *name* is
    already in the base set are skipped (an arrival stream repeats
    profiles; duplicated rows would just re-weight them).
    """
    existing = set(base.names)
    fresh = [w for w in new_workloads if w.name not in existing]
    if not fresh:
        return base
    if simulator is None:
        simulator = PerformanceSimulator(base.machine)
    placements = base.placements
    monitor = HpeMonitor(simulator)

    # Only the fresh rows are simulated, and all of them in one batched
    # kernel call — the per-retrain cost every serving-loop round pays.
    ipc_rows = simulator.measured_ipc_batch(
        fresh, list(placements), noise=noise, repetition=repetition
    )
    hpe_rows = []
    for profile in fresh:
        values = monitor.measure(
            profile, placements[base.baseline_index], repetition=repetition
        )
        hpe_rows.append([values[name] for name in base.hpe_names])

    ipc = np.vstack([base.ipc, ipc_rows])
    return TrainingSet(
        machine=base.machine,
        placements=placements,
        workloads=list(base.workloads) + fresh,
        ipc=ipc,
        vectors=ipc / ipc[:, base.baseline_index : base.baseline_index + 1],
        hpe_features=np.vstack([base.hpe_features, np.asarray(hpe_rows)]),
        hpe_names=list(base.hpe_names),
        baseline_index=base.baseline_index,
    )


@dataclass
class FoldResult:
    """Cross-validation result for one held-out workload."""

    name: str
    family: str
    actual: np.ndarray
    predicted: np.ndarray

    @property
    def mape(self) -> float:
        """Mean absolute relative error over placements, in percent."""
        return float(
            (np.abs(self.predicted - self.actual) / np.abs(self.actual)).mean()
            * 100.0
        )

    @property
    def max_error_pct(self) -> float:
        return float(
            (np.abs(self.predicted - self.actual) / np.abs(self.actual)).max()
            * 100.0
        )


def leave_one_workload_out(
    model_factory,
    training_set: TrainingSet,
    *,
    evaluate_names: Sequence[str] | None = None,
) -> List[FoldResult]:
    """Per-application cross-validation (Section 6).

    For each evaluated workload, a fresh model from ``model_factory`` is
    fitted on every row whose *family* differs, then asked to predict the
    held-out row.  ``evaluate_names`` restricts which workloads are scored
    (e.g. only the 18 paper workloads when the corpus also contains
    synthetic training rows).
    """
    families = np.asarray(training_set.families)
    names = training_set.names
    wanted = set(evaluate_names) if evaluate_names is not None else set(names)
    unknown = wanted - set(names)
    if unknown:
        raise ValueError(f"evaluate_names not in training set: {sorted(unknown)}")

    results: List[FoldResult] = []
    for row, name in enumerate(names):
        if name not in wanted:
            continue
        family = families[row]
        train_rows = [i for i in range(len(names)) if families[i] != family]
        if not train_rows:
            raise ValueError(
                f"workload {name} has no out-of-family training data"
            )
        model = model_factory()
        model.fit(training_set.subset(train_rows))
        predicted = model.predict_row(training_set, row)
        actual = model.actual_row(training_set, row)
        results.append(
            FoldResult(
                name=name, family=family, actual=actual, predicted=predicted
            )
        )
    return results
