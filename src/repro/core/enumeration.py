"""Important-placement enumeration (Section 4, Algorithms 1-3).

The placement space is astronomically large (choosing 16 of 64 cores allows
~10^14 assignments), but almost all of it is redundant: what matters is how
much of each shared resource a placement uses, not which physical instances.
The enumeration reduces the space to the couple dozen *important placements*
that a model must distinguish:

1. **Algorithm 1** (:func:`generate_scores`): per counting concern, the
   scores that are *balanced* (vCPUs divide evenly) and *feasible* (each
   resource instance can hold its share).
2. **Algorithm 2** (:func:`gen_packings`): all ways to partition the
   machine's nodes into blocks whose sizes are valid node scores.  Packings
   matter because the scheduler may later need to place further containers
   on the remaining nodes, so the enumeration must retain the placements
   those packings use — even when they are not the best for a single
   container (the paper's {0,1,6,7} example).
3. **Algorithm 3** (:func:`pareto_filter_packings` + the variant expansion in
   :func:`enumerate_important_placements`): drop duplicate packings, drop
   packings that are Pareto-dominated on the interconnect score (the one
   concern that neither affects cost nor can invert), then expand every
   surviving block with every feasible L2 (and, on split-L3 machines, L3)
   score and dedup by score vector.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.concerns import ConcernSet, ScoreVector, concerns_for
from repro.core.placements import Placement
from repro.topology.machine import MachineTopology

#: Scores a node block; bandwidth concerns provide this, symmetric machines
#: use a constant.
BlockScorer = Callable[[FrozenSet[int]], float]


def generate_scores(count: int, capacity: int, vcpus: int) -> List[int]:
    """Algorithm 1 for one counting concern.

    Returns every score ``i`` (number of resource instances used) with
    ``vcpus mod i == 0`` (balance) and ``vcpus / i <= capacity``
    (feasibility).
    """
    if count < 1 or capacity < 1:
        raise ValueError("count and capacity must be positive")
    if vcpus < 1:
        raise ValueError("vcpus must be >= 1")
    return [
        i
        for i in range(1, count + 1)
        if vcpus % i == 0 and vcpus // i <= capacity
    ]


@dataclass(frozen=True)
class Packing:
    """A partition of the machine's nodes into placement blocks."""

    blocks: Tuple[FrozenSet[int], ...]

    def __post_init__(self) -> None:
        seen: set = set()
        for block in self.blocks:
            if not block:
                raise ValueError("packing blocks must be non-empty")
            if seen & block:
                raise ValueError("packing blocks must be disjoint")
            seen |= block
        # Canonical order: blocks sorted by their smallest node.
        ordered = tuple(sorted(self.blocks, key=lambda b: sorted(b)))
        object.__setattr__(self, "blocks", ordered)

    @property
    def sizes(self) -> Tuple[int, ...]:
        """Sorted block sizes — the packing's node-score multiset."""
        return tuple(sorted(len(block) for block in self.blocks))

    def ic_scores(self, scorer: BlockScorer) -> Tuple[float, ...]:
        """Sorted interconnect scores of the blocks."""
        return tuple(sorted(scorer(block) for block in self.blocks))

    def signature(self, scorer: BlockScorer) -> Tuple[Tuple[int, float], ...]:
        """Dedup key: the multiset of (size, interconnect score) per block."""
        return tuple(
            sorted((len(block), round(scorer(block), 3)) for block in self.blocks)
        )

    def __len__(self) -> int:
        return len(self.blocks)


def gen_packings(
    block_sizes: Iterable[int], nodes: Iterable[int]
) -> List[Packing]:
    """Algorithm 2: enumerate all partitions of ``nodes`` into blocks whose
    sizes are valid node scores.

    The paper's recursive formulation enumerates each partition many times
    (once per block ordering); we canonicalize by always assigning the
    smallest remaining node to the next block, which generates each
    partition exactly once.
    """
    sizes = sorted({int(s) for s in block_sizes})
    if not sizes:
        raise ValueError("no valid block sizes — the container does not fit")
    if sizes[0] < 1:
        raise ValueError("block sizes must be positive")
    node_tuple = tuple(sorted(set(nodes)))
    if not node_tuple:
        raise ValueError("node set must not be empty")

    packings: List[Packing] = []

    def recurse(remaining: Tuple[int, ...], blocks: List[FrozenSet[int]]) -> None:
        if not remaining:
            packings.append(Packing(tuple(blocks)))
            return
        first, rest = remaining[0], remaining[1:]
        for size in sizes:
            if size > len(remaining):
                continue
            for combo in itertools.combinations(rest, size - 1):
                block = frozenset((first, *combo))
                combo_set = set(combo)
                blocks.append(block)
                recurse(
                    tuple(x for x in rest if x not in combo_set), blocks
                )
                blocks.pop()

    recurse(node_tuple, [])
    return packings


def dedup_packings(
    packings: Sequence[Packing], scorer: BlockScorer
) -> List[Packing]:
    """Remove packings whose (size, interconnect score) multisets coincide.

    Such packings use the same amounts of every scored resource, so the
    model treats them identically (Section 3).
    """
    seen: set = set()
    unique: List[Packing] = []
    for packing in packings:
        signature = packing.signature(scorer)
        if signature not in seen:
            seen.add(signature)
            unique.append(packing)
    return unique


def pareto_filter_packings(
    packings: Sequence[Packing], scorer: BlockScorer
) -> List[Packing]:
    """Algorithm 3's filter: within each class of packings with the same
    block-size multiset, remove packings whose sorted interconnect scores are
    dominated (elementwise <=, and strictly < somewhere) by another packing.

    The interconnect concern neither affects cost nor can invert, so a
    dominated packing offers nothing a dominating one does not.
    """
    by_sizes: Dict[Tuple[int, ...], List[Packing]] = {}
    for packing in packings:
        by_sizes.setdefault(packing.sizes, []).append(packing)

    survivors: List[Packing] = []
    for class_packings in by_sizes.values():
        # Rounded scores: packings whose scores differ only by measurement
        # noise must be treated as ties, not mutual domination.
        scored = [
            (
                packing,
                tuple(round(s, 3) for s in packing.ic_scores(scorer)),
            )
            for packing in class_packings
        ]
        for packing, ic in scored:
            dominated = any(
                other_ic != ic
                and all(a <= b for a, b in zip(ic, other_ic))
                for _other, other_ic in scored
            )
            if not dominated:
                survivors.append(packing)
    return survivors


class ImportantPlacementSet:
    """The enumeration result: placements numbered 1..N as in the paper's
    figures, plus the intermediate statistics for reporting."""

    def __init__(
        self,
        machine: MachineTopology,
        vcpus: int,
        concerns: ConcernSet,
        placements: Sequence[Placement],
        *,
        packings_total: int,
        packings_after_dedup: int,
        packings_after_pareto: int,
        surviving_packings: Sequence[Packing],
    ) -> None:
        self.machine = machine
        self.vcpus = vcpus
        self.concerns = concerns
        self._placements: Tuple[Placement, ...] = tuple(placements)
        self._vectors: Tuple[ScoreVector, ...] = tuple(
            concerns.score_vector(p) for p in self._placements
        )
        self.packings_total = packings_total
        self.packings_after_dedup = packings_after_dedup
        self.packings_after_pareto = packings_after_pareto
        self.surviving_packings: Tuple[Packing, ...] = tuple(surviving_packings)

    def __len__(self) -> int:
        return len(self._placements)

    def __iter__(self):
        return iter(self._placements)

    def __getitem__(self, index: int) -> Placement:
        return self._placements[index]

    @property
    def placements(self) -> Tuple[Placement, ...]:
        return self._placements

    @property
    def score_vectors(self) -> Tuple[ScoreVector, ...]:
        return self._vectors

    def by_id(self, placement_id: int) -> Placement:
        """1-based lookup matching the paper's placement numbering."""
        if not 1 <= placement_id <= len(self._placements):
            raise IndexError(
                f"placement id {placement_id} out of range "
                f"[1, {len(self._placements)}]"
            )
        return self._placements[placement_id - 1]

    def id_of(self, placement: Placement) -> int:
        """1-based id of a placement in this set."""
        return self._placements.index(placement) + 1

    def counts_by_node_count(self) -> Dict[int, int]:
        """How many important placements use each node count (the paper's
        composition statement: e.g. AMD = {2: 3, 4: 8, 8: 2})."""
        counts: Dict[int, int] = {}
        for placement in self._placements:
            counts[placement.n_nodes] = counts.get(placement.n_nodes, 0) + 1
        return dict(sorted(counts.items()))

    def describe(self) -> str:
        """Table of all important placements with their score vectors."""
        lines = [
            f"{len(self._placements)} important placements for "
            f"{self.vcpus} vCPUs on {self.machine.name}",
            f"(packings: {self.packings_total} generated, "
            f"{self.packings_after_dedup} after dedup, "
            f"{self.packings_after_pareto} after Pareto filter)",
        ]
        for index, (placement, vector) in enumerate(
            zip(self._placements, self._vectors), start=1
        ):
            scores = ", ".join(
                f"{name}={value:g}" for name, value in vector.entries
            )
            lines.append(f"#{index:>2}: {placement.describe()}  [{scores}]")
        return "\n".join(lines)


def enumerate_important_placements(
    machine: MachineTopology,
    vcpus: int,
    concerns: ConcernSet | None = None,
) -> ImportantPlacementSet:
    """Run the full Section-4 pipeline for one machine and container size.

    Returns the important placements sorted by (node count, L3 count,
    L2 count, descending interconnect score) and numbered from 1, which is
    the ordering used for placement ids throughout this repository.
    """
    if concerns is None:
        concerns = concerns_for(machine)
    if concerns.machine is not machine:
        raise ValueError("concern set was built for a different machine")
    if vcpus > machine.total_threads:
        raise ValueError(
            f"{vcpus} vCPUs cannot get dedicated threads on "
            f"{machine.total_threads}-thread machine"
        )

    bandwidth = concerns.bandwidth_concern
    if bandwidth is not None:
        scorer: BlockScorer = lambda block: bandwidth.score_nodes(block)
    else:
        scorer = lambda block: 0.0

    # Algorithm 1 for each counting concern.
    node_scores = generate_scores(machine.n_nodes, machine.threads_per_node, vcpus)
    if not node_scores:
        raise ValueError(
            f"no balanced, feasible node count exists for {vcpus} vCPUs on "
            f"{machine.name}"
        )
    l2_concern = concerns.counting("l2")
    l2_scores = l2_concern.possible_scores(vcpus)
    l3_concern = concerns.counting("l3")
    l3_scores = set(l3_concern.possible_scores(vcpus))

    # Algorithm 2 + dedup + Pareto filter (Algorithm 3, first half).
    packings = gen_packings(node_scores, machine.nodes)
    packings_total = len(packings)
    packings = dedup_packings(packings, scorer)
    packings_after_dedup = len(packings)
    packings = pareto_filter_packings(packings, scorer)
    packings_after_pareto = len(packings)

    # Algorithm 3, second half: expand blocks into placements with every
    # feasible L2 (and L3, on split-L3 machines) score; dedup by score
    # vector.
    candidates: List[Placement] = []
    seen_vectors: set = set()
    l2_per_l3 = machine.l2_groups_per_node // machine.l3_groups_per_node
    for packing in packings:
        for block in packing.blocks:
            n_block = len(block)
            per_node_vcpus = vcpus // n_block
            for l3_per_node in range(1, machine.l3_groups_per_node + 1):
                if (n_block * l3_per_node) not in l3_scores:
                    continue
                if per_node_vcpus > l3_per_node * l3_concern.capacity:
                    continue
                for l2_score in l2_scores:
                    if l2_score % n_block != 0:
                        continue
                    per_node_l2 = l2_score // n_block
                    if per_node_l2 % l3_per_node != 0:
                        continue
                    if per_node_l2 // l3_per_node > l2_per_l3:
                        continue
                    placement = Placement(
                        machine,
                        block,
                        vcpus,
                        l2_share=vcpus // l2_score,
                        l3_groups_per_node=l3_per_node,
                    )
                    vector = concerns.score_vector(placement)
                    if vector in seen_vectors:
                        continue
                    seen_vectors.add(vector)
                    candidates.append(placement)

    if not candidates:
        raise ValueError(
            f"no balanced placement exists for {vcpus} vCPUs on "
            f"{machine.name}: every feasible node count leaves the L2/L3 "
            f"groups unevenly shared (Section 3's balance assumption)"
        )

    candidates.sort(
        key=lambda p: (
            p.n_nodes,
            p.l3_score,
            p.l2_score,
            -scorer(frozenset(p.nodes)),
            p.nodes,
        )
    )
    return ImportantPlacementSet(
        machine,
        vcpus,
        concerns,
        candidates,
        packings_total=packings_total,
        packings_after_dedup=packings_after_dedup,
        packings_after_pareto=packings_after_pareto,
        surviving_packings=packings,
    )


def important_placements(
    machine: MachineTopology, vcpus: int
) -> List[Placement]:
    """Convenience wrapper returning just the placement list."""
    return list(enumerate_important_placements(machine, vcpus))
