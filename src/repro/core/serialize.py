"""Shared helpers for the wire surface (``to_dict`` / ``from_dict``).

The scheduler's serializable types only use JSON-safe values: strings,
ints, floats, bools, None, lists, and dicts.  Python round-trips floats
exactly through ``json`` (``float(repr(x)) == x``), so a dict that has
been through ``json.dumps``/``loads`` reconstructs bit-for-bit equal
objects — the property the shard <-> front-end protocol and the
round-trip tests rely on.

Two conversions recur everywhere and live here:

* tuples (machine fingerprints, node blocks, timeline entries) become
  JSON lists and must be re-tupled — recursively, because fingerprints
  nest (the interconnect signature is a tuple of tuples);
* :class:`~repro.topology.machine.MachineTopology` objects are referenced
  *by name* on the wire.  Topologies are process-local constants (every
  fleet participant builds them from the same presets), so shipping the
  name and resolving it against a name -> machine mapping keeps payloads
  small and guarantees both sides use the identical, memo-shared object.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.topology.machine import MachineTopology


def tupled(value):
    """Recursively convert lists (JSON's tuple stand-in) back to tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(tupled(item) for item in value)
    return value


def listed(value):
    """Recursively convert tuples to lists (JSON-encodable form)."""
    if isinstance(value, (list, tuple)):
        return [listed(item) for item in value]
    return value


def machines_by_name(
    machines: Iterable[MachineTopology],
) -> Dict[str, MachineTopology]:
    """Name -> topology resolver for ``from_dict`` calls.

    Machine identity in this repository is the name (placements and
    simulators check it; the fingerprint includes it), so two entries
    sharing a name must be the same shape — passing structurally
    different machines under one name is a caller bug worth failing on.
    """
    resolved: Dict[str, MachineTopology] = {}
    for machine in machines:
        existing = resolved.get(machine.name)
        if existing is None:
            resolved[machine.name] = machine
        elif existing.fingerprint() != machine.fingerprint():
            raise ValueError(
                f"two different machine shapes named {machine.name!r}"
            )
    return resolved


def resolve_machine(
    name: str, machines: Mapping[str, MachineTopology]
) -> MachineTopology:
    try:
        return machines[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r} on the wire; known: "
            f"{', '.join(sorted(machines)) or '(none)'}"
        )
