"""Container placement policies and the packing experiment (Section 7,
Figure 5).

Four policies are compared on the question: how many instances of one
container type fit on a machine while respecting a performance goal?

* **ML** — the paper's policy.  Probe the container in the model's two
  input placements, predict the full performance vector, then allocate the
  fewest NUMA nodes whose predicted performance meets the goal and pack the
  machine with disjoint instances of that allocation.
* **Conservative** — one instance per machine, unpinned (Linux decides the
  mapping).  Wastes most of the machine, and can *still* violate the goal
  because Linux may map vCPUs unevenly.
* **Aggressive** — as many instances as there are hardware threads,
  unpinned.  Maximum utilization, no performance control.
* **Smart-Aggressive** — the same instance count, but each instance pinned
  to the best minimum node set (highest interconnect bandwidth), so
  instances at least do not share nodes.

The performance goal is expressed as a fraction of the throughput observed
in the baseline placement (the paper uses 90%, 100%, and 110%).
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.containers.container import VirtualContainer
from repro.containers.host import SimulatedHost
from repro.core.enumeration import ImportantPlacementSet, gen_packings
from repro.core.model import PlacementModel
from repro.core.placements import Placement
from repro.perfsim.simulator import PerformanceSimulator
from repro.perfsim.workload import WorkloadProfile
from repro.topology.machine import MachineTopology


@dataclass
class PackingOutcome:
    """Result of running one policy on one machine (a Figure-5 bar + star)."""

    policy: str
    goal_fraction: float
    goal_value: float
    instances: int
    achieved: List[float]
    baseline_value: float

    @property
    def violations_pct(self) -> float:
        """Worst violation of the goal across instances, in percent of the
        goal (Figure 5's star series; 0 when every instance meets it)."""
        if not self.achieved:
            return 0.0
        worst = min(self.achieved)
        return max(0.0, (self.goal_value - worst) / self.goal_value * 100.0)

    @property
    def mean_violation_pct(self) -> float:
        if not self.achieved:
            return 0.0
        deficits = [
            max(0.0, (self.goal_value - a) / self.goal_value * 100.0)
            for a in self.achieved
        ]
        return float(np.mean(deficits))

    @property
    def meets_goal(self) -> bool:
        return self.violations_pct == 0.0


class PlacementPolicy(abc.ABC):
    """Decides how many instances to run and where to pin them."""

    name: str

    @abc.abstractmethod
    def assignments(
        self,
        machine: MachineTopology,
        profile: WorkloadProfile,
        vcpus: int,
        goal_fraction: float,
    ) -> List[Placement | None]:
        """One entry per instance; None means "leave it unpinned"."""


class ConservativePolicy(PlacementPolicy):
    """One unpinned instance per machine."""

    name = "Conservative"

    def assignments(self, machine, profile, vcpus, goal_fraction):
        return [None]


class AggressivePolicy(PlacementPolicy):
    """Fill the machine with unpinned instances."""

    name = "Aggressive"

    def assignments(self, machine, profile, vcpus, goal_fraction):
        count = machine.total_threads // vcpus
        return [None] * max(1, count)


class SmartAggressivePolicy(PlacementPolicy):
    """Fill the machine, but pin every instance to the best minimum node
    set — "the best minimum set of nodes, which we define as having the
    highest interconnect bandwidth" (Section 7)."""

    name = "Aggressive (Smart)"

    def assignments(self, machine, profile, vcpus, goal_fraction):
        count = max(1, machine.total_threads // vcpus)
        min_nodes = self._min_nodes(machine, vcpus)
        node_sets = best_min_node_sets(machine, min_nodes, count)
        placements = []
        for nodes in node_sets:
            per_node = vcpus // len(nodes)
            l2_share = 1
            while per_node // l2_share > machine.l2_groups_per_node:
                l2_share += 1
            placements.append(
                Placement(machine, nodes, vcpus, l2_share=l2_share)
            )
        return placements

    @staticmethod
    def _min_nodes(machine: MachineTopology, vcpus: int) -> int:
        for n in range(1, machine.n_nodes + 1):
            if vcpus % n == 0 and vcpus // n <= machine.threads_per_node:
                return n
        raise ValueError(f"{vcpus} vCPUs cannot be balanced on {machine.name}")


def best_min_node_sets(
    machine: MachineTopology, set_size: int, count: int
) -> List[Tuple[int, ...]]:
    """Partition (part of) the machine into ``count`` node sets of
    ``set_size``, choosing the partition with the highest total interconnect
    bandwidth.  This is the "analysis of the interconnect topology" the
    Smart-Aggressive policy requires."""
    if set_size * count > machine.n_nodes:
        raise ValueError(
            f"cannot carve {count} sets of {set_size} nodes out of "
            f"{machine.n_nodes}"
        )
    ic = machine.interconnect
    if set_size == 1:
        return [(n,) for n in range(count)]

    best_sets: List[Tuple[int, ...]] | None = None
    best_score = -1.0
    # Enumerate partitions of node subsets of size set_size*count into
    # blocks of set_size, via the packing generator.
    for subset in itertools.combinations(range(machine.n_nodes), set_size * count):
        for packing in gen_packings([set_size], subset):
            score = sum(
                ic.aggregate_bandwidth(block) for block in packing.blocks
            )
            if score > best_score:
                best_score = score
                best_sets = [tuple(sorted(b)) for b in packing.blocks]
    assert best_sets is not None
    return best_sets


class MlPolicy(PlacementPolicy):
    """The paper's model-driven policy.

    Requires a fitted :class:`PlacementModel` and the machine's important
    placements.  ``assignments`` probes the workload in the model's two
    input placements (short noisy measurements through the simulator, as
    the real system would), predicts the performance vector, picks the
    cheapest placement predicted to meet the goal, and packs the machine
    with disjoint clones of it.
    """

    name = "ML"

    def __init__(
        self,
        model: PlacementModel,
        placements: ImportantPlacementSet,
        simulator: PerformanceSimulator,
        *,
        probe_duration_s: float = 3.0,
        safety_margin: float = 0.05,
    ) -> None:
        if safety_margin < 0:
            raise ValueError("safety_margin must be >= 0")
        self.model = model
        self.placements = placements
        self.simulator = simulator
        self.probe_duration_s = probe_duration_s
        #: Predictions must clear the goal by this fraction before a
        #: placement counts as "meeting" it — headroom for prediction error
        #: and run-to-run noise, so the policy keeps its no-violations
        #: record.
        self.safety_margin = safety_margin

    def predict_vector(
        self, profile: WorkloadProfile, *, repetition: int = 0
    ) -> np.ndarray:
        """Probe the two input placements and predict relative performance
        (relative to the model's baseline = first input placement)."""
        i, j = self.model.input_pair
        obs_i = self.simulator.measured_ipc(
            profile,
            self.placements[i],
            duration_s=self.probe_duration_s,
            repetition=repetition,
        )
        obs_j = self.simulator.measured_ipc(
            profile,
            self.placements[j],
            duration_s=self.probe_duration_s,
            repetition=repetition + 1,
        )
        return self.model.predict(obs_i, obs_j)

    def choose_placement(
        self, profile: WorkloadProfile, goal_fraction: float
    ) -> Placement:
        """Cheapest important placement predicted to meet the goal; falls
        back to the best-predicted placement when none does.

        The goal is relative to the baseline placement's performance, so a
        placement meets it when its predicted relative performance is at
        least ``goal_fraction``.
        """
        vector = self.predict_vector(profile)
        threshold = goal_fraction * (1.0 + self.safety_margin)
        candidates = [
            (placement, predicted)
            for placement, predicted in zip(self.placements, vector)
            if predicted >= threshold
        ]
        if candidates:
            # Cheapest first; break ties by predicted performance.
            best = min(candidates, key=lambda c: (c[0].n_nodes, -c[1]))
            return best[0]
        index = int(np.argmax(vector))
        return self.placements[index]

    def _block_lookup(self) -> Dict[Tuple[int, float], List[int]]:
        """Map (node count, interconnect score) to the important-placement
        indices realizable on such a block (the L2/SMT variants)."""
        scorer = self._block_scorer()
        lookup: Dict[Tuple[int, float], List[int]] = {}
        for index, placement in enumerate(self.placements):
            key = (placement.n_nodes, round(scorer(placement.nodes), 3))
            lookup.setdefault(key, []).append(index)
        return lookup

    def _block_scorer(self):
        bandwidth = self.placements.concerns.bandwidth_concern
        if bandwidth is None:
            return lambda nodes: 0.0
        return lambda nodes: bandwidth.score_nodes(nodes)

    def assignments(self, machine, profile, vcpus, goal_fraction):
        """Pack the machine with the most instances that all meet the goal.

        This is where the enumeration's *packings* pay off: every surviving
        packing partitions the machine into blocks whose score vectors the
        model has predictions for, so the policy can count — per packing —
        how many instances would meet the goal, and deploy only those.
        Predicting performance for the chosen placement but packing clones
        onto differently-scored node sets would silently violate the goal.
        """
        vector = self.predict_vector(profile)
        threshold = goal_fraction * (1.0 + self.safety_margin)
        lookup = self._block_lookup()
        scorer = self._block_scorer()

        best_blocks: List[Tuple[Tuple[int, ...], int]] = []
        best_key = (-1, -1.0)
        for packing in self.placements.surviving_packings:
            blocks: List[Tuple[Tuple[int, ...], int]] = []
            total_predicted = 0.0
            for block in packing.blocks:
                key = (len(block), round(scorer(block), 3))
                meeting = [
                    idx
                    for idx in lookup.get(key, [])
                    if vector[idx] >= threshold
                ]
                if not meeting:
                    continue
                chosen_idx = max(meeting, key=lambda idx: vector[idx])
                blocks.append(
                    (tuple(sorted(block)), self.placements[chosen_idx].l2_share)
                )
                total_predicted += float(vector[chosen_idx])
            key = (len(blocks), total_predicted)
            if key > best_key:
                best_key = key
                best_blocks = blocks

        if not best_blocks:
            # No placement meets the goal anywhere: run one instance in the
            # best-predicted placement.
            fallback = self.placements[int(np.argmax(vector))]
            return [fallback]
        return [
            Placement(machine, nodes, vcpus, l2_share=l2_share)
            for nodes, l2_share in best_blocks
        ]


def evaluate_policy(
    policy: PlacementPolicy,
    machine: MachineTopology,
    profile: WorkloadProfile,
    vcpus: int,
    *,
    goal_fraction: float,
    baseline_placement: Placement,
    simulator: PerformanceSimulator | None = None,
    seed: int = 0,
) -> PackingOutcome:
    """Run one Figure-5 cell: deploy the policy's instances on a fresh host
    and measure everyone under interference.

    The goal value is ``goal_fraction`` times the throughput observed in
    ``baseline_placement`` (solo, long measurement) — how the paper
    expresses its 90%/100%/110% targets.
    """
    if goal_fraction <= 0:
        raise ValueError("goal_fraction must be positive")
    simulator = simulator or PerformanceSimulator(machine, seed=seed)
    baseline_value = simulator.throughput(
        profile, baseline_placement, noise=False
    )
    goal_value = goal_fraction * baseline_value

    host = SimulatedHost(machine, simulator=simulator, seed=seed)
    containers: List[VirtualContainer] = []
    for placement in policy.assignments(machine, profile, vcpus, goal_fraction):
        container = VirtualContainer(profile, vcpus)
        host.deploy(container, placement)
        containers.append(container)
    measured = host.measure_all(duration_s=60.0)
    achieved = [measured[c.container_id] for c in containers]
    return PackingOutcome(
        policy=policy.name,
        goal_fraction=goal_fraction,
        goal_value=goal_value,
        instances=len(containers),
        achieved=achieved,
        baseline_value=baseline_value,
    )
