"""Shared per-shape block-score tables.

``FleetHost.find_block`` used to re-score ``itertools.combinations`` of the
host's free nodes on every call — per request, per host, per candidate
rank.  But a block's interconnect score depends only on the machine shape
and the node subset, never on the host, so a fleet of a thousand
identically shaped hosts asks the exact same questions a thousand times
over.  A :class:`BlockScoreTable` answers them from a table instead: it
scores every node subset of one machine shape exactly once and keeps

* a ``frozenset -> score`` map (direct score lookups),
* per block size, the enumeration-rank order and the best-score-first
  order (the Smart-Aggressive "highest bandwidth wins" rule), and
* an inverted ``rounded score -> blocks`` map, so finding a free block
  matching a target interconnect score is a bucket probe instead of a
  combinations loop.

Lookups are *bit-for-bit equivalent* to the naive loop in
``FleetHost.find_block``: the same tolerance rules
(:func:`repro.scheduler.fleet.scores_match`), the same tie-breaking (first
block in combinations order wins), the same floats (scores come from the
same scorer).  ``tests/core/test_blockscores.py`` asserts the equivalence
exhaustively.

Tables are cached per ``(machine fingerprint, scorer kind)`` in a
:class:`BlockScoreCache` (same accounting scheme as
:class:`repro.core.memo.EnumerationCache`); all hosts of one shape share
one table.  Machines with more than :data:`MAX_TABLE_NODES` nodes would
need exponentially many entries, so :func:`block_score_table` returns
``None`` for them and callers fall back to the loop.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

import itertools

from repro.core.memo import CacheInfo
from repro.topology.machine import MachineTopology

#: Largest machine (in NUMA nodes) a table is built for: 2^12 = 4096
#: subsets.  Beyond that the table costs more than the loops it replaces.
MAX_TABLE_NODES = 12

#: Decimals used for the inverted score buckets — the granularity the
#: enumeration rounds scores to (see ``repro.core.concerns.SCORE_DECIMALS``).
_BUCKET_DECIMALS = 3

#: Interconnect scores within this of each other are the same score even
#: when they straddle a 3-decimal rounding boundary.  Canonical home of
#: the constant; ``repro.scheduler.fleet`` re-exports it.
SCORE_TOLERANCE = 5e-4


def scores_match(score: float, target: float) -> bool:
    """Whether two interconnect scores identify the same block class.

    Two conditions, because each covers the other's blind spot: the
    absolute tolerance catches scores a hair's width apart that round to
    different 3-decimal buckets (the silent-rejection bug), while the
    rounded comparison keeps accepting scores in the same bucket that sit
    up to a full rounding step apart — which the enumeration, deduping on
    ``round(score, 3)``, treats as identical.

    This is the single definition both the naive ``find_block`` loop and
    the table's bucket filter use — they cannot drift apart.
    """
    return (
        abs(score - target) <= SCORE_TOLERANCE
        or round(score, _BUCKET_DECIMALS) == round(target, _BUCKET_DECIMALS)
    )


class _SizeTable:
    """All blocks of one size on one machine shape, pre-scored."""

    __slots__ = ("entries", "best_order", "buckets", "near_cache", "match_cache")

    def __init__(
        self, nodes: Tuple[int, ...], size: int, scorer
    ) -> None:
        #: rank -> (block as frozenset, block as sorted tuple, score).
        #: Rank is the position in ``itertools.combinations`` order over
        #: the machine's full node list — restricting that enumeration to
        #: the subsets of any free-node set preserves relative order, so
        #: rank ties break exactly like the naive per-host loop.
        self.entries: List[Tuple[FrozenSet[int], Tuple[int, ...], float]] = []
        for combo in itertools.combinations(nodes, size):
            block = frozenset(combo)
            self.entries.append((block, combo, scorer(block)))
        #: Ranks sorted best score first, enumeration order within a score
        #: (the naive loop's strict ``>`` keeps the first max it sees).
        self.best_order: Tuple[int, ...] = tuple(
            sorted(
                range(len(self.entries)),
                key=lambda rank: (-self.entries[rank][2], rank),
            )
        )
        #: Inverted map: rounded score -> ranks (ascending).
        self.buckets: Dict[float, List[int]] = {}
        for rank, (_, _, score) in enumerate(self.entries):
            self.buckets.setdefault(
                round(score, _BUCKET_DECIMALS), []
            ).append(rank)
        #: rounded target -> merged rank list of its 3-bucket
        #: neighbourhood (distinct targets are few; the merge is paid
        #: once, not per lookup).
        self.near_cache: Dict[float, Tuple[int, ...]] = {}
        #: exact target -> (block set, block tuple) of every matching
        #: block, ascending rank.  The tolerance filter depends on the
        #: exact target, not its rounding, so this is keyed separately.
        self.match_cache: Dict[
            float, Tuple[Tuple[FrozenSet[int], Tuple[int, ...]], ...]
        ] = {}

    def ranks_near(self, center: float) -> Tuple[int, ...]:
        """Ascending ranks of all blocks whose rounded score is within
        one rounding step of ``center`` — the superset any target with
        this rounding can match (the exact tolerance rule still runs per
        candidate)."""
        cached = self.near_cache.get(center)
        if cached is None:
            step = 10.0**-_BUCKET_DECIMALS
            merged: List[int] = []
            for key in (
                center,
                round(center - step, _BUCKET_DECIMALS),
                round(center + step, _BUCKET_DECIMALS),
            ):
                merged.extend(self.buckets.get(key, ()))
            cached = tuple(sorted(set(merged)))
            self.near_cache[center] = cached
        return cached

    def matching_blocks(
        self, target: float
    ) -> Tuple[Tuple[FrozenSet[int], Tuple[int, ...]], ...]:
        """Every block matching ``target`` per the tolerance rules,
        ascending rank — filtered once per distinct target, so the
        per-host question reduces to subset tests."""
        cached = self.match_cache.get(target)
        if cached is None:
            cached = tuple(
                (block, combo)
                for block, combo, score in (
                    self.entries[rank]
                    for rank in self.ranks_near(
                        round(target, _BUCKET_DECIMALS)
                    )
                )
                if scores_match(score, target)
            )
            self.match_cache[target] = cached
        return cached


class BlockScoreTable:
    """Every node subset of one machine shape, scored exactly once.

    Parameters
    ----------
    machine:
        The shape whose node subsets are tabulated.
    scorer:
        Block scorer; must be a pure function of the node set (the
        interconnect bandwidth scorer and the constant-zero scorer both
        are).
    """

    def __init__(self, machine: MachineTopology, scorer) -> None:
        if machine.n_nodes > MAX_TABLE_NODES:
            raise ValueError(
                f"{machine.name} has {machine.n_nodes} nodes; block-score "
                f"tables are capped at {MAX_TABLE_NODES} (2^n subsets)"
            )
        self.machine = machine
        nodes = tuple(machine.nodes)
        self._sizes: Dict[int, _SizeTable] = {
            size: _SizeTable(nodes, size, scorer)
            for size in range(1, machine.n_nodes + 1)
        }
        self._scores: Dict[FrozenSet[int], float] = {
            block: score
            for table in self._sizes.values()
            for block, _, score in table.entries
        }

    # ------------------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return len(self._scores)

    def score(self, nodes: Iterable[int]) -> float:
        """The precomputed score of one block."""
        return self._scores[frozenset(nodes)]

    def find(
        self,
        free: Set[int],
        size: int,
        *,
        target_score: float | None = None,
        exclude: Iterable[int] = (),
    ) -> Tuple[int, ...] | None:
        """Drop-in table-backed equivalent of the naive ``find_block`` loop.

        With ``target_score``: the first block (in combinations order) of
        ``size`` free nodes whose score matches per the tolerance rules.
        Without: the best-scoring free block, first-in-order on ties.
        """
        if size < 1:
            raise ValueError("block size must be >= 1")
        table = self._sizes.get(size)
        if table is None:
            return None
        avail = free.difference(exclude) if exclude else free
        if size > len(avail):
            return None
        entries = table.entries
        if target_score is None:
            for rank in table.best_order:
                block, combo, _ = entries[rank]
                if block <= avail:
                    return combo
            return None
        # Matching blocks live in the target's rounded bucket or, when the
        # absolute tolerance straddles a rounding boundary, a neighbouring
        # one; the tolerance filter is memoized per distinct target, so a
        # lookup is subset tests over the (usually few) matching blocks,
        # lowest-ranked (first-enumerated) free match first.
        for block, combo in table.matching_blocks(target_score):
            if block <= avail:
                return combo
        return None


class BlockScoreCache:
    """Fingerprint-keyed memo cache of block-score tables.

    Keys are ``(machine fingerprint, scorer kind)``; all hosts with the
    same shape share one table per kind.  Kinds:

    * ``"interconnect"`` — ``machine.interconnect.aggregate_bandwidth``,
      the scorer of the heuristic fleet policies, the rebalancer, and (via
      the bandwidth concern, which memoizes the same values) the
      goal-aware policy on asymmetric machines;
    * ``"zero"`` — the constant-0 scorer the goal-aware policy uses on
      machines without an interconnect concern.
    """

    _KINDS = ("interconnect", "zero")

    def __init__(self) -> None:
        self._tables: Dict[Tuple, BlockScoreTable] = {}
        #: fingerprint -> current version.  Entries are keyed with the
        #: version current at build time, so bumping a shape's version
        #: (model promotion) orphans exactly that shape's tables — every
        #: other shape keeps serving its existing tables untouched.
        self._versions: Dict[Tuple, int] = {}
        self._hits = 0
        self._misses = 0

    def get(
        self, machine: MachineTopology, kind: str = "interconnect"
    ) -> BlockScoreTable | None:
        """The shared table for a shape, or None for untabulable machines."""
        if kind not in self._KINDS:
            raise ValueError(
                f"unknown scorer kind {kind!r}; choose from {self._KINDS}"
            )
        if machine.n_nodes > MAX_TABLE_NODES:
            return None
        fingerprint = machine.fingerprint()
        key = (fingerprint, kind, self._versions.get(fingerprint, 0))
        table = self._tables.get(key)
        if table is not None:
            self._hits += 1
            return table
        self._misses += 1
        if kind == "zero":
            scorer = lambda block: 0.0  # noqa: E731
        else:
            interconnect = machine.interconnect
            scorer = lambda block: interconnect.aggregate_bandwidth(block)  # noqa: E731
        table = BlockScoreTable(machine, scorer)
        self._tables[key] = table
        return table

    def version(self, fingerprint: Tuple) -> int:
        """The shape's current table version (0 until first invalidation)."""
        return self._versions.get(fingerprint, 0)

    def invalidate(self, fingerprint: Tuple) -> int:
        """Version-bump one shape: drop its tables (all kinds, all stale
        versions) and return the new version.

        Called on model promotion.  The block *scores* are pure functions
        of the shape, but each table accumulates memoized target-match
        lists (``near_cache``/``match_cache``) for exactly the target
        scores the retiring model version asked about; a promoted version
        asks about different candidate placements, so the stale lists are
        dropped with the table and the next lookup rebuilds for the new
        version's working set.  Other shapes' entries are untouched.
        """
        version = self._versions.get(fingerprint, 0) + 1
        self._versions[fingerprint] = version
        stale = [key for key in self._tables if key[0] == fingerprint]
        for key in stale:
            del self._tables[key]
        return version

    def assert_version_consistency(self) -> None:
        """Debug hook: every live table is keyed at its shape's current
        version.

        :meth:`invalidate` bumps ``_versions`` and drops the orphaned
        tables in the same call, so a surviving table keyed at an older
        version means some mutation path skipped the bump.  This is the
        runtime counterpart of the memo-invalidation lint's
        ``block-score-tables`` surface (``repro.analysis.invalidation``).
        """
        for fingerprint, kind, version in self._tables:
            current = self._versions.get(fingerprint, 0)
            if version != current:
                raise AssertionError(
                    f"BlockScoreCache: {kind!r} table keyed at version "
                    f"{version} but its shape is at {current}; an "
                    "invalidation was skipped"
                )

    def info(self) -> CacheInfo:
        return CacheInfo(self._hits, self._misses, len(self._tables))

    def clear(self) -> None:
        self._tables.clear()
        self._versions.clear()
        self._hits = 0
        self._misses = 0


#: Process-wide default cache; the fleet policies and the lifecycle
#: rebalancer share tables through it.
DEFAULT_BLOCK_SCORE_CACHE = BlockScoreCache()


def block_score_table(
    machine: MachineTopology, kind: str = "interconnect"
) -> BlockScoreTable | None:
    """The process-wide shared table for a machine shape (None when the
    machine is too large to tabulate)."""
    return DEFAULT_BLOCK_SCORE_CACHE.get(machine, kind)
