"""repro — reproduction of Funston et al., "Placement of Virtual Containers
on NUMA systems: A Practical and Comprehensive Model" (USENIX ATC 2018).

The library is organized one subpackage per subsystem:

* :mod:`repro.topology` — NUMA machine models (nodes, cache groups,
  asymmetric interconnects), the two paper machines as calibrated presets,
  sysfs-style serialization, and the STREAM-like bandwidth probe.
* :mod:`repro.core` — the paper's contribution: scheduling concerns,
  important-placement enumeration (Algorithms 1-3), the two-observation
  performance model and its HPE baseline, behaviour clustering, the four
  packing policies, the interleaving extension, and the end-to-end
  scheduler.
* :mod:`repro.ml` — from-scratch ML substrate (multi-output random forest,
  k-means/silhouette, forward selection, successive halving, CV).
* :mod:`repro.perfsim` — the simulated testbed: workload profiles, the
  placement performance simulator, synthetic hardware performance events,
  the paper's 18 workloads, and the synthetic-corpus generator.
* :mod:`repro.migration` — container memory-migration engines and cost
  models (Table 2), plus the online-vs-offline planner.
* :mod:`repro.containers` — virtual containers and the simulated host.
* :mod:`repro.scheduler` — the fleet layer: request streams, simulated
  host fleets, pluggable placement policies (first-fit, spread, goal-aware
  ML), and the batched/memoized fleet scheduler.
* :mod:`repro.experiments` — the canonical trained configurations shared
  by benchmarks and examples.
* :mod:`repro.cli` — ``python -m repro`` command-line front-end.

Quickstart
----------
>>> from repro import amd_opteron_6272, important_placements
>>> machine = amd_opteron_6272()
>>> len(important_placements(machine, vcpus=16))
13
"""

from repro.topology import (
    MachineTopology,
    TopologyBuilder,
    Interconnect,
    amd_opteron_6272,
    intel_xeon_e7_4830_v3,
    amd_epyc_zen,
    intel_haswell_cod,
)
from repro.core import (
    SchedulingConcern,
    CountingConcern,
    BandwidthConcern,
    ConcernSet,
    concerns_for,
    Placement,
    ScoreVector,
    important_placements,
    enumerate_important_placements,
    cached_enumerate_important_placements,
    EnumerationCache,
    PlacementModel,
    HpeModel,
    PlacementScheduler,
)
from repro.scheduler import (
    Fleet,
    FleetScheduler,
    FirstFitFleetPolicy,
    SpreadFleetPolicy,
    GoalAwareFleetPolicy,
    ModelRegistry,
    PlacementRequest,
    generate_request_stream,
)

__version__ = "1.0.0"

__all__ = [
    "MachineTopology",
    "TopologyBuilder",
    "Interconnect",
    "amd_opteron_6272",
    "intel_xeon_e7_4830_v3",
    "amd_epyc_zen",
    "intel_haswell_cod",
    "SchedulingConcern",
    "CountingConcern",
    "BandwidthConcern",
    "ConcernSet",
    "concerns_for",
    "Placement",
    "ScoreVector",
    "important_placements",
    "enumerate_important_placements",
    "cached_enumerate_important_placements",
    "EnumerationCache",
    "PlacementModel",
    "HpeModel",
    "PlacementScheduler",
    "Fleet",
    "FleetScheduler",
    "FirstFitFleetPolicy",
    "SpreadFleetPolicy",
    "GoalAwareFleetPolicy",
    "ModelRegistry",
    "PlacementRequest",
    "generate_request_stream",
    "__version__",
]
