"""Canonical experiment configuration shared by benchmarks and examples.

The paper evaluates with 16-vCPU containers on the AMD machine and 24-vCPU
containers on the Intel machine.  This module pins down the corpus seeds,
the training corpus shape, and the input pairs the automatic search selects
under those seeds, so every benchmark and example reproduces the same
trained configuration without re-running the (minutes-long) pair search.

Pass ``select_pair=True`` to :func:`fitted_model` to re-run the automatic
search instead of using the cached result — the Figure-4 benchmark does
this once to demonstrate the full pipeline.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.enumeration import (
    ImportantPlacementSet,
    enumerate_important_placements,
)
from repro.core.model import PlacementModel
from repro.core.training import TrainingSet, build_training_set
from repro.perfsim.generator import WorkloadGenerator
from repro.perfsim.library import paper_workloads
from repro.perfsim.simulator import PerformanceSimulator
from repro.perfsim.workload import WorkloadProfile
from repro.topology.machine import MachineTopology

#: Container sizes used in the paper's evaluation.
PAPER_VCPUS: Dict[str, int] = {
    "amd-opteron-6272": 16,
    "intel-xeon-e7-4830-v3": 24,
}

#: Input pairs selected by PlacementModel's automatic search on the
#: canonical training corpus (seed 42).  0-based placement indices; the
#: first element is the baseline the predicted vectors are relative to.
#: Note the Intel pair contains placement #2 (index 1) — the same baseline
#: the paper used for its Intel figures.
CANONICAL_PAIRS: Dict[str, Tuple[int, int]] = {
    "amd-opteron-6272": (6, 12),
    "intel-xeon-e7-4830-v3": (1, 6),
}

#: Corpus shape for model training (dense coverage of the archetypes).
TRAINING_CORPUS_SEED = 42
TRAINING_CORPUS_SIZE = 128
TRAINING_CORPUS_JITTER = 0.3

#: Corpus shape for the behaviour-category analysis (Figure 3): a
#: paper-sized population of distinct workloads.
CLUSTERING_CORPUS_SIZE = 30
CLUSTERING_CORPUS_JITTER = 0.12


def paper_vcpus(machine: MachineTopology) -> int:
    """The paper's container size for this machine (16 on AMD, 24 on
    Intel); machines outside the paper default to half the threads."""
    if machine.name in PAPER_VCPUS:
        return PAPER_VCPUS[machine.name]
    return max(1, machine.total_threads // 2)


def training_corpus(
    *,
    seed: int = TRAINING_CORPUS_SEED,
    n_synthetic: int = TRAINING_CORPUS_SIZE,
    jitter: float = TRAINING_CORPUS_JITTER,
) -> List[WorkloadProfile]:
    """The 18 paper workloads plus the synthetic training population."""
    generator = WorkloadGenerator(seed=seed, jitter=jitter)
    return paper_workloads() + generator.sample(n_synthetic)


def clustering_corpus(
    *,
    seed: int = TRAINING_CORPUS_SEED,
    n_synthetic: int = CLUSTERING_CORPUS_SIZE,
    jitter: float = CLUSTERING_CORPUS_JITTER,
) -> List[WorkloadProfile]:
    """A paper-sized workload population for the Figure-3 analysis."""
    generator = WorkloadGenerator(seed=seed, jitter=jitter)
    return paper_workloads() + generator.sample(n_synthetic)


def standard_training_set(
    machine: MachineTopology,
    *,
    vcpus: int | None = None,
    simulator: PerformanceSimulator | None = None,
    workloads: List[WorkloadProfile] | None = None,
) -> TrainingSet:
    """The canonical training set for a machine (used everywhere)."""
    if vcpus is None:
        vcpus = paper_vcpus(machine)
    if workloads is None:
        workloads = training_corpus()
    baseline = CANONICAL_PAIRS.get(machine.name, (0, 1))[0]
    return build_training_set(
        machine,
        vcpus,
        workloads,
        simulator=simulator,
        baseline_index=baseline,
    )


def fitted_model(
    machine: MachineTopology,
    training_set: TrainingSet | None = None,
    *,
    select_pair: bool = False,
    random_state: int = 0,
) -> Tuple[PlacementModel, TrainingSet]:
    """A trained placement model for a machine.

    With ``select_pair=False`` (default) the cached canonical input pair is
    used, making training take about a second.  With ``select_pair=True``
    the automatic cross-validated pair search runs (roughly a minute on the
    AMD machine's 13 placements).
    """
    if training_set is None:
        training_set = standard_training_set(machine)
    pair = None if select_pair else CANONICAL_PAIRS.get(machine.name)
    model = PlacementModel(input_pair=pair, random_state=random_state)
    model.fit(training_set)
    return model, training_set


def important_placement_set(machine: MachineTopology) -> ImportantPlacementSet:
    """Important placements for the paper's container size on a machine."""
    return enumerate_important_placements(machine, paper_vcpus(machine))
