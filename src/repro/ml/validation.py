"""Cross-validation splitters.

The paper's evaluation is *per-application cross-validated* (Section 6):
when predicting a workload, no run of that workload — under any
configuration — may appear in the training set.  That is leave-one-group-out
CV with the workload name as the group, provided here alongside plain
k-fold.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence, Tuple

import numpy as np


class KFold:
    """Standard k-fold splitter over sample indices."""

    def __init__(
        self,
        n_splits: int = 5,
        *,
        shuffle: bool = False,
        random_state: int | None = None,
    ) -> None:
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            rng.shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size


class LeaveOneGroupOut:
    """Per-group splitter: each distinct group becomes one test fold."""

    def split(
        self, groups: Sequence
    ) -> Iterator[Tuple[np.ndarray, np.ndarray, object]]:
        groups_arr = np.asarray(groups)
        unique = list(dict.fromkeys(groups_arr.tolist()))  # stable order
        if len(unique) < 2:
            raise ValueError("need at least 2 distinct groups")
        indices = np.arange(len(groups_arr))
        for group in unique:
            mask = groups_arr == group
            yield indices[~mask], indices[mask], group


def cross_val_score(
    fit_predict: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    X: np.ndarray,
    y: np.ndarray,
    *,
    scorer: Callable[[np.ndarray, np.ndarray], float],
    n_splits: int = 5,
    shuffle: bool = True,
    random_state: int | None = 0,
) -> List[float]:
    """k-fold scores for a model expressed as a fit-then-predict callable.

    ``fit_predict(X_train, y_train, X_test)`` must return predictions for
    ``X_test``; ``scorer(y_true, y_pred)`` maps them to a score.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(X) != len(y):
        raise ValueError("X and y disagree on sample count")
    scores: List[float] = []
    splitter = KFold(n_splits, shuffle=shuffle, random_state=random_state)
    for train, test in splitter.split(len(X)):
        predictions = fit_predict(X[train], y[train], X[test])
        scores.append(scorer(y[test], predictions))
    return scores
