"""Sequential Forward Selection (SFS).

The paper's HPE baseline starts from dozens of plausible hardware events and
uses SFS (Draper & Smith 1966; John, Kohavi & Pfleger 1994) to pick the most
predictive subset: starting from the empty set, repeatedly add the feature
whose addition maximizes the cross-validated score, until the requested
feature budget is reached or no addition improves the score.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np


def sequential_forward_selection(
    n_features: int,
    evaluate: Callable[[Sequence[int]], float],
    *,
    max_features: int | None = None,
    min_improvement: float = 0.0,
) -> Tuple[List[int], List[float]]:
    """Greedy forward feature selection.

    Parameters
    ----------
    n_features:
        Total number of candidate features (indexed 0..n-1).
    evaluate:
        Maps a feature-index subset to a score (higher is better) — typically
        a cross-validated model score.
    max_features:
        Stop after selecting this many features (default: no limit other
        than ``min_improvement``).
    min_improvement:
        Stop when the best addition improves the score by less than this.

    Returns
    -------
    (selected, history):
        Selected feature indices in the order they were added, and the score
        after each addition.
    """
    if n_features < 1:
        raise ValueError("n_features must be >= 1")
    if max_features is None:
        max_features = n_features
    if max_features < 1:
        raise ValueError("max_features must be >= 1")

    selected: List[int] = []
    history: List[float] = []
    current_score = -np.inf
    remaining = set(range(n_features))

    while remaining and len(selected) < max_features:
        best_feature = None
        best_score = -np.inf
        for feature in sorted(remaining):
            score = evaluate(selected + [feature])
            if score > best_score:
                best_score = score
                best_feature = feature
        assert best_feature is not None
        if history and best_score - current_score < min_improvement:
            break
        selected.append(best_feature)
        remaining.discard(best_feature)
        history.append(best_score)
        current_score = best_score

    return selected, history
