"""Bagged random forests over multi-output CART trees.

"RF is a machine learning technique known for its ability to learn
non-linear functions with very little or no tuning" (Section 5) — which is
exactly the property the reproduction relies on: the same default
configuration trains the performance model on both machines.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.ml.arena import ForestArena
from repro.ml.tree import DecisionTreeRegressor

#: Row count above which predict() takes the per-tree path instead of the
#: arena.  The arena wins the dispatch-bound regime (few rows, many trees
#: — the scheduler's per-event calls, up to ~45x at 1 row); at several
#: thousand rows both paths are memory-bound and the arena's (rows x
#: trees) lane gather starts losing (~0.8x at 8k rows).  The two paths
#: are bit-for-bit identical, so the cutover is free to correctness.
ARENA_MAX_ROWS = 4096


class RandomForestRegressor:
    """Bootstrap-aggregated regression forest with multi-output support.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, max_features:
        Passed to each :class:`DecisionTreeRegressor`.
    bootstrap:
        Draw a bootstrap sample per tree (True) or train every tree on the
        full data (False; only the feature subsampling differs then).
    random_state:
        Seed; each tree derives an independent stream from it.
    """

    def __init__(
        self,
        *,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        bootstrap: bool = True,
        random_state: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees_: List[DecisionTreeRegressor] = []
        self.feature_importances_: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Compiled-arena lifecycle
    # ------------------------------------------------------------------

    @property
    def trees_(self) -> List[DecisionTreeRegressor]:
        return self._trees

    @trees_.setter
    def trees_(self, trees) -> None:
        # Reassigning the ensemble (fit, prune, warm_refit's tree sharing)
        # invalidates the compiled arena; in-place mutation sites (grow's
        # appends) invalidate explicitly.
        self._trees = trees if isinstance(trees, list) else list(trees)
        self._arena: ForestArena | None = None

    def arena(self) -> ForestArena:
        """The forest compiled into one contiguous arena — built lazily on
        first use, cached until ``fit``/``grow``/``prune`` (or any
        ``trees_`` reassignment) invalidates it.  Evaluating the arena is
        bit-for-bit identical to the per-tree path."""
        if not self._trees:
            raise RuntimeError("arena() requested before fit()")
        if self._arena is None:
            self._arena = ForestArena(self._trees)
        return self._arena

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
        if len(X) != len(y):
            raise ValueError(
                f"X and y disagree on sample count: {len(X)} vs {len(y)}"
            )
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")

        rng = np.random.default_rng(self.random_state)
        n = len(X)
        self.trees_ = []
        importances = np.zeros(X.shape[1])
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                indices = rng.integers(0, n, size=n)
            else:
                indices = np.arange(n)
            tree.fit(X[indices], y[indices])
            assert tree.feature_importances_ is not None
            importances += tree.feature_importances_
            self.trees_.append(tree)
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )
        return self

    def grow(self, X: np.ndarray, y: np.ndarray, n_more: int) -> "RandomForestRegressor":
        """Append ``n_more`` trees fitted on ``(X, y)`` without touching the
        existing ones — the warm-start half of grow-and-prune retraining.

        The new trees' seeds derive from ``(random_state, current tree
        count)``, so growing is deterministic given the forest's history:
        the same base forest grown on the same data always produces the
        same trees, regardless of wall clock or call site.
        """
        if n_more < 1:
            raise ValueError("n_more must be >= 1")
        if not self.trees_:
            raise RuntimeError("grow() called before fit(); use fit() first")
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or len(X) != len(y) or len(X) == 0:
            raise ValueError("grow() needs a non-empty aligned (X, y)")
        rng = np.random.default_rng(
            (self.random_state or 0) + 1_000_003 * len(self.trees_)
        )
        n = len(X)
        for _ in range(n_more):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)),
            )
            if self.bootstrap:
                indices = rng.integers(0, n, size=n)
            else:
                indices = np.arange(n)
            tree.fit(X[indices], y[indices])
            self.trees_.append(tree)
        self.n_estimators = len(self.trees_)
        self._arena = None  # appended in place; the setter never saw it
        self._recompute_importances()
        return self

    def prune(self, budget: int) -> "RandomForestRegressor":
        """Drop the *oldest* trees until at most ``budget`` remain — the
        prune half of grow-and-prune retraining.  Oldest-first because the
        oldest trees were fitted on the stalest corpus; after enough
        grow/prune cycles a drifted workload population fully replaces the
        ensemble without ever refitting it wholesale."""
        if budget < 1:
            raise ValueError("budget must be >= 1")
        if not self.trees_:
            raise RuntimeError("prune() called before fit()")
        if len(self.trees_) > budget:
            self.trees_ = self.trees_[len(self.trees_) - budget :]
            self.n_estimators = len(self.trees_)
            self._recompute_importances()
        return self

    def _recompute_importances(self) -> None:
        importances = np.zeros_like(self.trees_[0].feature_importances_)
        for tree in self.trees_:
            importances = importances + tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = (
            importances / total if total > 0 else importances
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Forest mean over all rows of ``X`` at once.

        Runs on the compiled arena: every ``(row, tree)`` lane descends in
        lock-step, so a whole forest call is one vectorized traversal plus
        one reduction instead of a Python loop of per-tree passes.  The
        arena carries the leaf values verbatim and the reduction sees the
        exact tensor the per-tree path would stack, so results are
        bit-for-bit identical to :meth:`predict_per_tree` (asserted by
        tests and the ``bench_predict`` gate).  Batches past
        :data:`ARENA_MAX_ROWS` take the per-tree path, which wins the
        memory-bound regime.
        """
        if not self.trees_:
            raise RuntimeError("predict() called before fit()")
        if np.ndim(X) == 2 and len(X) > ARENA_MAX_ROWS:
            return self.predict_per_tree(X)
        return self.arena().predict(X)

    def predict_per_tree(self, X: np.ndarray) -> np.ndarray:
        """Reference implementation: one vectorized pass per tree, mean
        over the stacked predictions.  Kept as the equivalence baseline
        the arena is verified against."""
        if not self.trees_:
            raise RuntimeError("predict_per_tree() called before fit()")
        predictions = [tree.predict(X) for tree in self.trees_]
        return np.mean(predictions, axis=0)

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Per-sample standard deviation across trees — a cheap uncertainty
        signal the policies can use to hedge decisions.  Arena-backed
        (with the same :data:`ARENA_MAX_ROWS` cutover as :meth:`predict`),
        bit-for-bit identical to :meth:`predict_std_per_tree`."""
        if not self.trees_:
            raise RuntimeError("predict_std() called before fit()")
        if np.ndim(X) == 2 and len(X) > ARENA_MAX_ROWS:
            return self.predict_std_per_tree(X)
        return self.arena().predict_std(X)

    def predict_std_per_tree(self, X: np.ndarray) -> np.ndarray:
        """Reference per-tree implementation of :meth:`predict_std`."""
        if not self.trees_:
            raise RuntimeError("predict_std_per_tree() called before fit()")
        predictions = np.stack([tree.predict(X) for tree in self.trees_])
        return predictions.std(axis=0)
