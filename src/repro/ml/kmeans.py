"""k-means clustering with k-means++ seeding and the silhouette coefficient.

The paper clusters workloads by the shape of their performance vectors
(Figure 3) and picks the number of clusters k that maximizes the average
silhouette coefficient — "the standard practice in the field" (Section 5).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class KMeans:
    """Lloyd's algorithm with k-means++ initialization and restarts.

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    n_init:
        Independent restarts; the best inertia wins.
    max_iter:
        Lloyd iterations per restart.
    tol:
        Convergence threshold on centroid movement.
    random_state:
        Seed.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        n_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-6,
        random_state: int | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if n_init < 1 or max_iter < 1:
            raise ValueError("n_init and max_iter must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = np.inf

    # ------------------------------------------------------------------

    def _init_centers(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding: spread the initial centers out."""
        n = len(X)
        centers = np.empty((self.n_clusters, X.shape[1]))
        centers[0] = X[rng.integers(n)]
        closest_sq = ((X - centers[0]) ** 2).sum(axis=1)
        for i in range(1, self.n_clusters):
            total = closest_sq.sum()
            if total <= 1e-18:
                # All remaining points coincide with a center; any choice works.
                centers[i] = X[rng.integers(n)]
                continue
            probabilities = closest_sq / total
            centers[i] = X[rng.choice(n, p=probabilities)]
            closest_sq = np.minimum(
                closest_sq, ((X - centers[i]) ** 2).sum(axis=1)
            )
        return centers

    def _lloyd(
        self, X: np.ndarray, centers: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        for _ in range(self.max_iter):
            distances = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            labels = distances.argmin(axis=1)
            new_centers = centers.copy()
            for k in range(self.n_clusters):
                members = X[labels == k]
                if len(members) > 0:
                    new_centers[k] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point.
                    farthest = distances.min(axis=1).argmax()
                    new_centers[k] = X[farthest]
            shift = float(((new_centers - centers) ** 2).sum())
            centers = new_centers
            if shift <= self.tol:
                break
        distances = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = distances.argmin(axis=1)
        inertia = float(distances[np.arange(len(X)), labels].sum())
        return centers, labels, inertia

    def fit(self, X: np.ndarray) -> "KMeans":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
        if len(X) < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} samples, "
                f"got {len(X)}"
            )
        rng = np.random.default_rng(self.random_state)
        best: Tuple[np.ndarray, np.ndarray, float] | None = None
        for _ in range(self.n_init):
            centers = self._init_centers(X, rng)
            centers, labels, inertia = self._lloyd(X, centers, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia)
        assert best is not None
        self.cluster_centers_, self.labels_, self.inertia_ = best
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise RuntimeError("predict() called before fit()")
        X = np.asarray(X, dtype=float)
        distances = (
            (X[:, None, :] - self.cluster_centers_[None, :, :]) ** 2
        ).sum(axis=2)
        return distances.argmin(axis=1)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        self.fit(X)
        assert self.labels_ is not None
        return self.labels_


def silhouette_score(X: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all samples (Rousseeuw 1987).

    For each sample, ``a`` is the mean distance to its own cluster's other
    members and ``b`` the smallest mean distance to another cluster; the
    coefficient is ``(b - a) / max(a, b)``.  Samples in singleton clusters
    score 0 by convention.
    """
    X = np.asarray(X, dtype=float)
    labels = np.asarray(labels)
    if len(X) != len(labels):
        raise ValueError("X and labels disagree on sample count")
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("silhouette requires at least 2 clusters")
    if len(unique) >= len(X):
        raise ValueError("silhouette requires n_clusters < n_samples")

    distances = np.sqrt(
        ((X[:, None, :] - X[None, :, :]) ** 2).sum(axis=2)
    )
    scores = np.zeros(len(X))
    for i in range(len(X)):
        own = labels == labels[i]
        n_own = own.sum()
        if n_own <= 1:
            scores[i] = 0.0
            continue
        a = distances[i, own].sum() / (n_own - 1)
        b = np.inf
        for cluster in unique:
            if cluster == labels[i]:
                continue
            members = labels == cluster
            b = min(b, distances[i, members].mean())
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def choose_k_by_silhouette(
    X: np.ndarray,
    *,
    k_min: int = 2,
    k_max: int = 10,
    random_state: int | None = None,
) -> Tuple[int, dict]:
    """Pick k maximizing the average silhouette coefficient (the paper's
    model-selection rule for the behaviour categories).

    Returns the chosen k and the per-k silhouette table.
    """
    X = np.asarray(X, dtype=float)
    if k_min < 2:
        raise ValueError("k_min must be >= 2")
    k_max = min(k_max, len(X) - 1)
    if k_max < k_min:
        raise ValueError("not enough samples for the requested k range")
    table: dict = {}
    for k in range(k_min, k_max + 1):
        model = KMeans(k, random_state=random_state)
        labels = model.fit_predict(X)
        if len(np.unique(labels)) < 2:
            continue
        table[k] = silhouette_score(X, labels)
    if not table:
        raise ValueError("no k produced a valid clustering")
    best_k = max(table, key=lambda k: table[k])
    return best_k, table
