"""Regression error metrics used across evaluation and benchmarks."""

from __future__ import annotations

import numpy as np


def _check(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("metrics need at least one sample")
    return y_true, y_pred


def mean_absolute_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.abs(y_true - y_pred).mean())


def mean_absolute_percentage_error(
    y_true: np.ndarray, y_pred: np.ndarray
) -> float:
    """MAPE in percent.  This is the paper's headline accuracy metric
    ("within 4.4% of actual on average").  Zero targets are rejected."""
    y_true, y_pred = _check(y_true, y_pred)
    if np.any(y_true == 0):
        raise ValueError("MAPE is undefined for zero targets")
    return float((np.abs(y_true - y_pred) / np.abs(y_true)).mean() * 100.0)


def mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _check(y_true, y_pred)
    return float(((y_true - y_pred) ** 2).mean())


def root_mean_squared_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def max_error(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.abs(y_true - y_pred).max())


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; multi-output values are averaged."""
    y_true, y_pred = _check(y_true, y_pred)
    if y_true.ndim == 1:
        y_true = y_true[:, None]
        y_pred = y_pred[:, None]
    ss_res = ((y_true - y_pred) ** 2).sum(axis=0)
    ss_tot = ((y_true - y_true.mean(axis=0)) ** 2).sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        per_output = np.where(ss_tot > 0, 1.0 - ss_res / ss_tot, 0.0)
    return float(per_output.mean())
