"""Multi-output CART regression trees.

The tree grows greedily: at every node it evaluates axis-aligned splits on a
(possibly random) subset of features and picks the one that minimizes the
summed squared error of the children, accumulated over *all* outputs — the
natural multi-output extension of CART, and what the paper's multi-output
Random Forest needs to predict a whole performance vector at once.

Split search is vectorized: for one feature, sorting the samples lets every
candidate threshold's left/right SSE be computed from prefix sums of ``y``
and ``y**2`` in O(n) after the sort.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass
class _Node:
    """One tree node; leaves carry a value, internal nodes a split."""

    value: np.ndarray  # mean of y at this node, shape (n_outputs,)
    impurity: float  # summed SSE over outputs
    n_samples: int
    feature: int = -1  # -1 marks a leaf
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _as_2d(y: np.ndarray) -> np.ndarray:
    y = np.asarray(y, dtype=float)
    if y.ndim == 1:
        return y[:, None]
    if y.ndim == 2:
        return y
    raise ValueError(f"y must be 1- or 2-dimensional, got shape {y.shape}")


def _sse(y: np.ndarray) -> float:
    """Summed squared error around the mean, over all outputs."""
    if len(y) == 0:
        return 0.0
    mean = y.mean(axis=0)
    return float(((y - mean) ** 2).sum())


def descend_flat(
    feature: np.ndarray,
    threshold: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
    X: np.ndarray,
    lane_row: np.ndarray,
    position: np.ndarray,
) -> np.ndarray:
    """Advance every lane to its leaf over flattened node arrays, one
    numpy pass per tree level.

    ``position`` holds each lane's current node index and is advanced in
    place; ``lane_row`` maps lanes to rows of ``X``.  A single tree's
    prediction is the ``lane_row = arange(n)``, ``position = zeros(n)``
    special case; the forest arena stacks many trees' lanes into one call
    (:mod:`repro.ml.arena`).  Kept next to the flat-array format it
    interprets so the single-tree and arena descents can never diverge.
    """
    active = np.nonzero(feature[position] >= 0)[0]
    while len(active):
        at = position[active]
        go_left = X[lane_row[active], feature[at]] <= threshold[at]
        position[active] = np.where(go_left, left[at], right[at])
        active = active[feature[position[active]] >= 0]
    return position


class DecisionTreeRegressor:
    """CART regression tree with multi-output support.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; None grows until leaves are pure or too small.
    min_samples_split:
        Minimum samples a node needs to be considered for splitting.
    min_samples_leaf:
        Minimum samples each child must keep.
    max_features:
        Features examined per split: None (all), an int, a float fraction,
        ``"sqrt"`` or ``"log2"``.
    random_state:
        Seed for the per-split feature subsampling.
    """

    def __init__(
        self,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | str | None = None,
        random_state: int | None = None,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise ValueError("max_depth must be >= 1 or None")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self._root: _Node | None = None
        self._n_features: int = 0
        self._n_outputs: int = 0
        self._y_was_1d: bool = False
        self._flat: tuple | None = None
        self.feature_importances_: np.ndarray | None = None

    # ------------------------------------------------------------------

    def _resolve_max_features(self, n_features: int) -> int:
        mf = self.max_features
        if mf is None:
            return n_features
        if mf == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if mf == "log2":
            return max(1, int(np.log2(n_features))) if n_features > 1 else 1
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError("float max_features must be in (0, 1]")
            return max(1, int(mf * n_features))
        if isinstance(mf, int):
            if not 1 <= mf <= n_features:
                raise ValueError(
                    f"int max_features must be in [1, {n_features}], got {mf}"
                )
            return mf
        raise ValueError(f"unrecognized max_features: {mf!r}")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
        raw_y = np.asarray(y, dtype=float)
        self._y_was_1d = raw_y.ndim == 1
        Y = _as_2d(raw_y)
        if len(X) != len(Y):
            raise ValueError(
                f"X and y disagree on sample count: {len(X)} vs {len(Y)}"
            )
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._n_features = X.shape[1]
        self._n_outputs = Y.shape[1]
        self._rng = np.random.default_rng(self.random_state)
        self._importances = np.zeros(self._n_features)
        self._total_samples = len(X)
        self._root = self._build(X, Y, depth=0)
        self._flat = None
        total = self._importances.sum()
        self.feature_importances_ = (
            self._importances / total if total > 0 else self._importances
        )
        return self

    def _build(self, X: np.ndarray, Y: np.ndarray, depth: int) -> _Node:
        node = _Node(
            value=Y.mean(axis=0), impurity=_sse(Y), n_samples=len(Y)
        )
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or len(Y) < self.min_samples_split
            or node.impurity <= 1e-12
        ):
            return node

        split = self._best_split(X, Y, node.impurity)
        if split is None:
            return node
        feature, threshold, gain = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        self._importances[feature] += gain * len(Y) / self._total_samples
        node.left = self._build(X[mask], Y[mask], depth + 1)
        node.right = self._build(X[~mask], Y[~mask], depth + 1)
        return node

    def _best_split(
        self, X: np.ndarray, Y: np.ndarray, parent_sse: float
    ) -> tuple[int, float, float] | None:
        n, d = X.shape
        k = self._resolve_max_features(d)
        if k < d:
            features = self._rng.choice(d, size=k, replace=False)
        else:
            features = np.arange(d)

        # Evaluate every candidate threshold of every candidate feature in
        # one vectorized pass: sort each feature column, then derive the
        # left/right SSE of each split position from prefix sums of y and
        # y^2 (summed over outputs).
        Xf = X[:, features]  # (n, k)
        order = np.argsort(Xf, axis=0, kind="stable")
        x_sorted = np.take_along_axis(Xf, order, axis=0)
        y_sorted = Y[order]  # (n, k, m)

        csum = np.cumsum(y_sorted, axis=0)
        csum_sq = np.cumsum(y_sorted**2, axis=0)
        total = csum[-1]  # (k, m)
        total_sq = csum_sq[-1]

        left_n = np.arange(1, n, dtype=float)[:, None, None]  # (n-1, 1, 1)
        right_n = n - left_n
        left_sum = csum[:-1]
        left_sq = csum_sq[:-1]
        right_sum = total - left_sum
        right_sq = total_sq - left_sq

        sse = (
            (left_sq - left_sum**2 / left_n)
            + (right_sq - right_sum**2 / right_n)
        ).sum(axis=2)  # (n-1, k)

        msl = self.min_samples_leaf
        valid = x_sorted[:-1] != x_sorted[1:]
        if msl > 1:
            positions = np.arange(1, n)[:, None]
            valid &= (positions >= msl) & (n - positions >= msl)
        if not valid.any():
            return None
        sse = np.where(valid, sse, np.inf)

        flat = int(np.argmin(sse))
        row, col = divmod(flat, sse.shape[1])
        best_sse = float(sse[row, col])
        gain = parent_sse - best_sse
        if not np.isfinite(best_sse) or gain <= 1e-12:
            return None
        threshold = float((x_sorted[row, col] + x_sorted[row + 1, col]) / 2.0)
        return (int(features[col]), threshold, gain)

    # ------------------------------------------------------------------

    def _compile(self) -> tuple:
        """Flatten the node graph into parallel arrays for vectorized
        evaluation.  Built lazily on the first predict() and kept for the
        tree's lifetime; the arrays carry the leaf values verbatim, so the
        flattened evaluation is bit-for-bit identical to walking the graph.
        """
        assert self._root is not None
        nodes: List[_Node] = []
        stack = [self._root]
        index = {}
        while stack:
            node = stack.pop()
            index[id(node)] = len(nodes)
            nodes.append(node)
            if not node.is_leaf:
                assert node.left is not None and node.right is not None
                stack.append(node.right)
                stack.append(node.left)
        n = len(nodes)
        feature = np.full(n, -1, dtype=np.intp)
        threshold = np.zeros(n, dtype=float)
        left = np.zeros(n, dtype=np.intp)
        right = np.zeros(n, dtype=np.intp)
        values = np.empty((n, self._n_outputs), dtype=float)
        for i, node in enumerate(nodes):
            values[i] = node.value
            if not node.is_leaf:
                feature[i] = node.feature
                threshold[i] = node.threshold
                left[i] = index[id(node.left)]
                right[i] = index[id(node.right)]
        self._flat = (feature, threshold, left, right, values)
        return self._flat

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorized prediction: all rows descend the flattened tree in
        lock-step, one numpy pass per tree level instead of a Python loop
        per sample (the hot path of batched fleet prediction)."""
        if self._root is None:
            raise RuntimeError("predict() called before fit()")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
        if X.shape[1] != self._n_features:
            raise ValueError(
                f"X has {X.shape[1]} features, tree was fit on "
                f"{self._n_features}"
            )
        feature, threshold, left, right, values = self._flat or self._compile()
        position = descend_flat(
            feature,
            threshold,
            left,
            right,
            X,
            np.arange(len(X), dtype=np.intp),
            np.zeros(len(X), dtype=np.intp),
        )
        out = values[position]
        return out[:, 0] if self._y_was_1d else out

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree.

        Derived iteratively from the flattened arrays (a recursive walk
        can blow the interpreter's recursion limit on degenerate deep
        trees): the compile order is depth-first preorder, so children
        always follow their parent and one reverse pass computes every
        subtree height.
        """
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        feature, _, left, right, _ = self._flat or self._compile()
        height = np.zeros(len(feature), dtype=np.intp)
        for index in range(len(feature) - 1, -1, -1):
            if feature[index] >= 0:
                height[index] = 1 + max(
                    height[left[index]], height[right[index]]
                )
        return int(height[0])

    @property
    def n_leaves(self) -> int:
        """Leaf count, read off the flattened arrays without recursion."""
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        feature, _, _, _, _ = self._flat or self._compile()
        return int(np.count_nonzero(feature < 0))
