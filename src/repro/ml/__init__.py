"""From-scratch machine-learning substrate.

The paper uses a multi-output Random Forest regressor (Section 5), k-means
clustering with silhouette-based model selection (Figure 3), and Sequential
Forward Selection for the HPE baseline's features.  scikit-learn is not
available in this environment, so this subpackage implements the needed
algorithms on plain numpy:

* :mod:`repro.ml.tree` — multi-output CART regression trees;
* :mod:`repro.ml.forest` — bagged random forests over those trees;
* :mod:`repro.ml.arena` — arena-compiled forest inference: whole-forest
  (and fused multi-forest) prediction as one lock-step numpy descent;
* :mod:`repro.ml.kmeans` — k-means++ with Lloyd iterations and the
  silhouette coefficient;
* :mod:`repro.ml.selection` — sequential forward feature selection;
* :mod:`repro.ml.validation` — k-fold and leave-one-group-out splitters;
* :mod:`repro.ml.metrics` — regression error metrics.

Everything is deterministic given a ``random_state``.
"""

from repro.ml.arena import ARENA_STATS, ForestArena, predict_fused
from repro.ml.tree import DecisionTreeRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.kmeans import KMeans, silhouette_score, choose_k_by_silhouette
from repro.ml.selection import sequential_forward_selection
from repro.ml.validation import KFold, LeaveOneGroupOut, cross_val_score
from repro.ml.metrics import (
    mean_absolute_error,
    mean_absolute_percentage_error,
    mean_squared_error,
    root_mean_squared_error,
    r2_score,
    max_error,
)

__all__ = [
    "ARENA_STATS",
    "ForestArena",
    "predict_fused",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "KMeans",
    "silhouette_score",
    "choose_k_by_silhouette",
    "sequential_forward_selection",
    "KFold",
    "LeaveOneGroupOut",
    "cross_val_score",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "mean_squared_error",
    "root_mean_squared_error",
    "r2_score",
    "max_error",
]
