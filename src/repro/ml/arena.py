"""Arena-compiled forest inference: one numpy pass per prediction.

The per-tree prediction path is already vectorized *within* a tree (all
rows descend the flattened node arrays in lock-step), but a forest call
still runs a Python loop of ``n_estimators`` separate descents — at fleet
scale, where the model is consulted per scheduling event on a handful of
rows, the fixed numpy dispatch overhead of ~100 small passes dominates the
arithmetic.  The arena removes the loop:

* :class:`ForestArena` stacks every tree's flattened ``(feature,
  threshold, left, right, values)`` arrays into one contiguous arena with
  per-tree root offsets (child indices are rebased to the arena, so the
  descent needs no per-tree bookkeeping);
* prediction evaluates all ``rows x trees`` *lanes* in one lock-step
  descent — one numpy pass per tree level for the whole forest — then
  gathers the leaf-value matrix and reduces over the tree axis;
* :func:`predict_fused` goes one step further for the scheduler's batched
  hot path: many ``(forest, X)`` groups (one per ``(machine shape, vCPU
  count)`` key of a batch) are concatenated into a single descent over one
  fused arena, so one fleet event costs one forest call however many keys
  it spans.

Bit-for-bit equivalence with the per-tree path is the design invariant,
not an accident: lanes are laid out tree-major, so the gathered leaf
tensor is exactly the ``(n_trees, n_rows, n_outputs)`` C-contiguous array
``np.stack([tree.predict(X) ...])`` would produce, and the same
``np.mean``/``std`` reduction is applied to it.  Tests and the
``bench_predict`` gate assert equality, including after ``grow``/
``prune``/``warm_refit``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.ml.tree import descend_flat


@dataclass
class ArenaStats:
    """Process-wide arena accounting (surfaced by the fleet report)."""

    #: Forests compiled into arenas (recompiles after grow/prune included).
    forests_compiled: int = 0
    #: Arena predict/predict_std calls (single-forest).
    predict_calls: int = 0
    #: Fused multi-forest calls (one per goal-aware batch).
    fused_calls: int = 0
    #: (row x tree) lanes descended across all calls.
    lanes_evaluated: int = 0


#: Global counters, cumulative for the process (mirroring the block-score
#: cache's process-wide accounting idiom).
ARENA_STATS = ArenaStats()


class ForestArena:
    """One fitted forest compiled into contiguous parallel arrays.

    Built from the trees' own flattened arrays (leaf values carried
    verbatim), so evaluating the arena is bit-for-bit identical to
    evaluating the trees.  Instances are immutable; the forest caches one
    and replaces it wholesale when refitted.
    """

    __slots__ = (
        "feature",
        "threshold",
        "left",
        "right",
        "values",
        "roots",
        "n_trees",
        "n_features",
        "n_outputs",
        "squeeze",
    )

    def __init__(self, trees: Sequence) -> None:
        if not trees:
            raise ValueError("cannot compile an arena from zero trees")
        first = trees[0]
        self.n_trees = len(trees)
        self.n_features = first._n_features
        self.n_outputs = first._n_outputs
        self.squeeze = first._y_was_1d
        for tree in trees:
            if (
                tree._n_features != self.n_features
                or tree._n_outputs != self.n_outputs
                or tree._y_was_1d != self.squeeze
            ):
                raise ValueError(
                    "all trees of a forest must share feature/output shape"
                )
        flats = [tree._flat or tree._compile() for tree in trees]
        counts = np.array([len(flat[0]) for flat in flats], dtype=np.intp)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        self.feature = np.concatenate([flat[0] for flat in flats])
        self.threshold = np.concatenate([flat[1] for flat in flats])
        # Child indices rebased to the arena: the descent never leaves a
        # tree because left/right are only read at internal nodes.
        self.left = np.concatenate(
            [flat[2] + base for flat, base in zip(flats, offsets)]
        )
        self.right = np.concatenate(
            [flat[3] + base for flat, base in zip(flats, offsets)]
        )
        self.values = np.vstack([flat[4] for flat in flats])
        self.roots = offsets[:-1].astype(np.intp)
        ARENA_STATS.forests_compiled += 1

    # ------------------------------------------------------------------

    def _check_X(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-dimensional, got shape {X.shape}")
        if X.shape[1] != self.n_features:
            raise ValueError(
                f"X has {X.shape[1]} features, forest was fit on "
                f"{self.n_features}"
            )
        return X

    def stacked(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions as one C-contiguous tensor.

        Shape ``(n_trees, n_rows, n_outputs)`` (outputs squeezed for 1-d
        targets) — byte-for-byte the array ``np.stack([tree.predict(X) for
        tree in trees])`` builds, produced by a single lane descent.
        """
        X = self._check_X(X)
        n = len(X)
        lane_row = np.tile(np.arange(n, dtype=np.intp), self.n_trees)
        position = np.repeat(self.roots, n)
        descend_flat(
            self.feature, self.threshold, self.left, self.right,
            X, lane_row, position,
        )
        ARENA_STATS.lanes_evaluated += len(position)
        stacked = self.values[position].reshape(self.n_trees, n, self.n_outputs)
        if self.squeeze:
            stacked = stacked[:, :, 0]
        return stacked

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Forest mean in one traversal + one reduction."""
        ARENA_STATS.predict_calls += 1
        return np.mean(self.stacked(X), axis=0)

    def predict_std(self, X: np.ndarray) -> np.ndarray:
        """Per-row std across trees in one traversal + one reduction."""
        ARENA_STATS.predict_calls += 1
        return self.stacked(X).std(axis=0)


class _FusedArena:
    """Several arenas' structural arrays concatenated with offsets.

    Only the four descent arrays are merged (rebased like the per-tree
    arrays were); leaf values stay in each member arena, gathered per
    group after the shared descent.  Cached across calls because the
    scheduler serves a handful of long-lived models per batch.
    """

    __slots__ = ("arenas", "feature", "threshold", "left", "right",
                 "roots", "node_base")

    def __init__(self, arenas: Tuple[ForestArena, ...]) -> None:
        self.arenas = arenas
        counts = np.array([len(a.feature) for a in arenas], dtype=np.intp)
        bases = np.concatenate(([0], np.cumsum(counts)))
        self.node_base = bases[:-1]
        self.feature = np.concatenate([a.feature for a in arenas])
        self.threshold = np.concatenate([a.threshold for a in arenas])
        self.left = np.concatenate(
            [a.left + base for a, base in zip(arenas, self.node_base)]
        )
        self.right = np.concatenate(
            [a.right + base for a, base in zip(arenas, self.node_base)]
        )
        self.roots = [
            a.roots + base for a, base in zip(arenas, self.node_base)
        ]


#: id-keyed fused-arena memo.  Arenas are immutable and long-lived (they
#: live on registry models), so identity keys are stable; entries keep
#: strong references, and hits verify identity so a recycled id can never
#: serve another arena's fusion.  LRU-bounded like the policy target
#: cache: a hit refreshes recency and only the stalest combination is
#: evicted, so alternating fleets (or fresh arenas minted by retraining
#: promotions) never dump every hot fusion at once.
_FUSED_CACHE: Dict[Tuple[int, ...], _FusedArena] = {}
_FUSED_CACHE_MAX = 32


def _fused_arena(arenas: Tuple[ForestArena, ...]) -> _FusedArena:
    key = tuple(id(a) for a in arenas)
    entry = _FUSED_CACHE.get(key)
    if entry is not None and all(
        a is b for a, b in zip(entry.arenas, arenas)
    ):
        del _FUSED_CACHE[key]  # refresh recency (dicts keep insert order)
        _FUSED_CACHE[key] = entry
        return entry
    while len(_FUSED_CACHE) >= _FUSED_CACHE_MAX:
        _FUSED_CACHE.pop(next(iter(_FUSED_CACHE)))
    entry = _FusedArena(arenas)
    _FUSED_CACHE[key] = entry
    return entry


def predict_fused(plans: Sequence[Tuple[object, np.ndarray]]) -> List[np.ndarray]:
    """Evaluate many ``(forest, X)`` groups in one lock-step descent.

    Each group's rows are predicted by its own forest; all groups' lanes
    are concatenated (with node-index and row-index offsets) and descend
    the fused arena together, so the whole batch costs one numpy pass per
    tree level regardless of how many groups — i.e. how many ``(shape,
    vcpus)`` keys — it spans.  The returned list holds, per group, exactly
    what ``forest.predict(X)`` returns, bit for bit.
    """
    if not plans:
        return []
    arenas = tuple(forest.arena() for forest, _ in plans)
    Xs = [arena._check_X(X) for arena, (_, X) in zip(arenas, plans)]
    widths = {arena.n_features for arena in arenas}
    if len(widths) > 1:
        raise ValueError(
            f"fused groups disagree on feature count: {sorted(widths)}"
        )
    fused = _fused_arena(arenas)

    lane_rows: List[np.ndarray] = []
    positions: List[np.ndarray] = []
    bounds: List[Tuple[int, int, int]] = []  # (lane start, lane end, rows)
    row_base = 0
    lane_base = 0
    for group, (arena, X) in enumerate(zip(arenas, Xs)):
        n = len(X)
        lane_rows.append(
            row_base + np.tile(np.arange(n, dtype=np.intp), arena.n_trees)
        )
        positions.append(np.repeat(fused.roots[group], n))
        lanes = arena.n_trees * n
        bounds.append((lane_base, lane_base + lanes, n))
        row_base += n
        lane_base += lanes

    X_all = np.vstack(Xs)
    lane_row = np.concatenate(lane_rows)
    position = np.concatenate(positions)
    descend_flat(
        fused.feature, fused.threshold, fused.left, fused.right,
        X_all, lane_row, position,
    )
    ARENA_STATS.fused_calls += 1
    ARENA_STATS.lanes_evaluated += len(position)

    outputs: List[np.ndarray] = []
    for group, (arena, (start, end, n)) in enumerate(zip(arenas, bounds)):
        local = position[start:end] - fused.node_base[group]
        stacked = arena.values[local].reshape(arena.n_trees, n, arena.n_outputs)
        if arena.squeeze:
            stacked = stacked[:, :, 0]
        outputs.append(np.mean(stacked, axis=0))
    return outputs
