"""Budgeted configuration search (successive halving).

Section 2 of the paper points to CherryPick's Bayesian optimization as a
way to "minimize the number of search configurations" — future work in the
paper.  This module implements the simpler budgeted-search idea in that
spirit: **successive halving** evaluates every candidate cheaply, discards
the worse half, and re-evaluates the survivors with more budget, so most of
the measurement effort goes to the promising configurations.

:class:`repro.core.model.PlacementModel` uses it as the fast alternative to
the exhaustive input-pair search (``pair_search="halving"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Generic, List, Sequence, TypeVar

Candidate = TypeVar("Candidate")

#: Evaluates a candidate at a given budget level and returns a *loss*
#: (lower is better).  Budgets are opaque to the search.
Evaluator = Callable[[Candidate, object], float]


@dataclass
class HalvingResult(Generic[Candidate]):
    """Outcome of a successive-halving run."""

    best: Candidate
    best_loss: float
    losses: Dict[Candidate, float]  # final-round losses of finalists
    evaluations: int  # total evaluator calls
    rounds: List[List[Candidate]]  # survivors entering each round


def successive_halving(
    candidates: Sequence[Candidate],
    evaluate: Evaluator,
    budgets: Sequence[object],
    *,
    keep_fraction: float = 0.5,
    min_survivors: int = 2,
) -> HalvingResult:
    """Run successive halving over a finite candidate set.

    Parameters
    ----------
    candidates:
        The configurations to search over.
    evaluate:
        ``evaluate(candidate, budget) -> loss``; re-evaluated from scratch
        each round (budgets are cumulative only if the evaluator makes them
        so).
    budgets:
        One budget per round, cheapest first.  The candidate pool shrinks
        by ``keep_fraction`` between rounds.
    keep_fraction:
        Fraction of candidates surviving each round.
    min_survivors:
        Never cut below this many candidates until the final round.
    """
    pool = list(dict.fromkeys(candidates))
    if not pool:
        raise ValueError("candidates must not be empty")
    if not budgets:
        raise ValueError("budgets must not be empty")
    if not 0.0 < keep_fraction < 1.0:
        raise ValueError("keep_fraction must be in (0, 1)")
    if min_survivors < 1:
        raise ValueError("min_survivors must be >= 1")

    evaluations = 0
    rounds: List[List[Candidate]] = []
    losses: Dict[Candidate, float] = {}
    for round_index, budget in enumerate(budgets):
        rounds.append(list(pool))
        losses = {}
        for candidate in pool:
            losses[candidate] = evaluate(candidate, budget)
            evaluations += 1
        if round_index == len(budgets) - 1:
            break
        keep = max(min_survivors, int(len(pool) * keep_fraction))
        keep = min(keep, len(pool))
        pool = sorted(pool, key=lambda c: losses[c])[:keep]

    best = min(losses, key=losses.get)
    return HalvingResult(
        best=best,
        best_loss=losses[best],
        losses=losses,
        evaluations=evaluations,
        rounds=rounds,
    )
