"""Random workload generation for training corpora.

The paper trains its model on executions of many workloads and observes
that workloads "naturally fall into several categories, according to the
shapes of their performance vectors" (Section 5, Figure 3) — six categories
on their systems.  The generator mirrors that structure: it samples
workloads around six behavioural archetypes and jitters every
characteristic, so a generated corpus exhibits the same clustered geometry
the real benchmark population did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.perfsim.workload import WorkloadProfile


@dataclass(frozen=True)
class Archetype:
    """A behavioural template: the centre of one workload category."""

    name: str
    description: str
    template: Dict[str, float]


ARCHETYPES: Sequence[Archetype] = (
    Archetype(
        "cpu-bound",
        "tiny footprint, no communication: placement barely matters",
        dict(
            working_set_mb=4.0,
            shared_fraction=0.10,
            cache_sensitivity=0.08,
            membw_per_vcpu=30.0,
            numa_locality=0.50,
            comm_intensity=0.03,
            comm_latency_sensitivity=0.05,
            comm_bytes_per_vcpu=3.0,
            smt_affinity=-0.10,
        ),
    ),
    Archetype(
        "bandwidth-bound",
        "streams through DRAM: wants many memory controllers",
        dict(
            working_set_mb=500.0,
            shared_fraction=0.08,
            cache_sensitivity=0.50,
            membw_per_vcpu=2000.0,
            numa_locality=0.12,
            comm_intensity=0.15,
            comm_latency_sensitivity=0.20,
            comm_bytes_per_vcpu=50.0,
            smt_affinity=-0.35,
        ),
    ),
    Archetype(
        "cache-capacity",
        "working set near the L3 fit point: steps when caches suffice",
        dict(
            working_set_mb=60.0,
            shared_fraction=0.15,
            cache_sensitivity=0.70,
            membw_per_vcpu=600.0,
            numa_locality=0.25,
            comm_intensity=0.12,
            comm_latency_sensitivity=0.20,
            comm_bytes_per_vcpu=20.0,
            smt_affinity=-0.20,
        ),
    ),
    Archetype(
        "latency-bound",
        "chatty threads over shared data: wants few nodes",
        dict(
            working_set_mb=50.0,
            shared_fraction=0.55,
            cache_sensitivity=0.35,
            membw_per_vcpu=300.0,
            numa_locality=0.25,
            comm_intensity=0.80,
            comm_latency_sensitivity=0.80,
            comm_bytes_per_vcpu=140.0,
            smt_affinity=-0.20,
        ),
    ),
    Archetype(
        "smt-averse",
        "FP/pipeline heavy: sharing an L2 group is expensive",
        dict(
            working_set_mb=80.0,
            shared_fraction=0.12,
            cache_sensitivity=0.40,
            membw_per_vcpu=700.0,
            numa_locality=0.25,
            comm_intensity=0.20,
            comm_latency_sensitivity=0.25,
            comm_bytes_per_vcpu=40.0,
            smt_affinity=-0.85,
        ),
    ),
    Archetype(
        "cooperative",
        "threads prefetch for each other: consolidation helps",
        dict(
            working_set_mb=120.0,
            shared_fraction=0.60,
            cache_sensitivity=0.40,
            membw_per_vcpu=450.0,
            numa_locality=0.20,
            comm_intensity=0.20,
            comm_latency_sensitivity=0.20,
            comm_bytes_per_vcpu=30.0,
            smt_affinity=0.75,
        ),
    ),
    Archetype(
        "analytics",
        "data-parallel scans with a shuffle phase (Spark / map-reduce)",
        dict(
            working_set_mb=500.0,
            shared_fraction=0.18,
            cache_sensitivity=0.50,
            membw_per_vcpu=1100.0,
            numa_locality=0.18,
            comm_intensity=0.45,
            comm_latency_sensitivity=0.35,
            comm_bytes_per_vcpu=110.0,
            smt_affinity=-0.20,
        ),
    ),
    Archetype(
        "oltp",
        "transactional server: shared buffer pool, lock-latency bound",
        dict(
            working_set_mb=180.0,
            shared_fraction=0.35,
            cache_sensitivity=0.50,
            membw_per_vcpu=550.0,
            numa_locality=0.20,
            comm_intensity=0.45,
            comm_latency_sensitivity=0.60,
            comm_bytes_per_vcpu=60.0,
            smt_affinity=-0.10,
        ),
    ),
)

_UNIT_FIELDS = (
    "shared_fraction",
    "cache_sensitivity",
    "numa_locality",
    "comm_intensity",
    "comm_latency_sensitivity",
)
_POSITIVE_FIELDS = ("working_set_mb", "membw_per_vcpu", "comm_bytes_per_vcpu")


class WorkloadGenerator:
    """Samples random workload profiles around the archetypes.

    Parameters
    ----------
    seed:
        RNG seed; a generator with the same seed produces the same corpus.
    jitter:
        Relative spread applied to each characteristic (lognormal for
        positive quantities, gaussian for bounded ones).
    namespace:
        Optional tag baked into generated names
        (``synthetic-<archetype>-<namespace>-NNNN``).  Names are only
        unique *within* one generator; anything that mixes corpora from
        several generators and deduplicates by name — the trace-fed
        retrainer does exactly that — must namespace them apart.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        jitter: float = 0.35,
        namespace: str | None = None,
    ) -> None:
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self._rng = np.random.default_rng(seed)
        self.jitter = jitter
        self.namespace = namespace
        self._counter = 0

    def sample_one(
        self,
        archetype: Archetype | str | None = None,
        *,
        weights: Dict[str, float] | None = None,
        template_scale: Dict[str, float] | None = None,
    ) -> WorkloadProfile:
        """One random workload, optionally forced to an archetype.

        Parameters
        ----------
        archetype:
            Force a specific archetype (by object or name); ``None`` draws
            one — uniformly, or per ``weights``.
        weights:
            Archetype-name -> relative weight for the draw (names absent
            from the dict get weight 0).  This is how a phase-shift
            schedule changes the *arrival mix*: the same archetypes, a
            different distribution over them.  Ignored when ``archetype``
            is given.
        template_scale:
            Characteristic-name -> multiplier applied to the archetype's
            template *before* jitter (bounded characteristics are still
            clipped afterwards).  This is how a phase-shift schedule moves
            workloads *out of distribution*: the post-shift population is
            centred where no training corpus sample ever was.
        """
        if archetype is None:
            if weights is not None:
                archetype = self._weighted_archetype(weights)
            else:
                archetype = ARCHETYPES[int(self._rng.integers(len(ARCHETYPES)))]
        elif isinstance(archetype, str):
            matches = [a for a in ARCHETYPES if a.name == archetype]
            if not matches:
                raise KeyError(
                    f"unknown archetype {archetype!r}; available: "
                    f"{', '.join(a.name for a in ARCHETYPES)}"
                )
            archetype = matches[0]
        template = dict(archetype.template)
        if template_scale:
            unknown = sorted(set(template_scale) - set(template))
            if unknown:
                raise KeyError(
                    f"template_scale names unknown characteristics: {unknown}"
                )
            for field, factor in template_scale.items():
                template[field] = template[field] * factor

        rng = self._rng
        params: Dict[str, float] = {}
        for field, centre in template.items():
            if field in _POSITIVE_FIELDS:
                params[field] = float(
                    centre * np.exp(rng.normal(0.0, self.jitter))
                )
            elif field in _UNIT_FIELDS:
                params[field] = float(
                    np.clip(centre + rng.normal(0.0, self.jitter * 0.4), 0.0, 1.0)
                )
            elif field == "smt_affinity":
                params[field] = float(
                    np.clip(centre + rng.normal(0.0, self.jitter * 0.5), -1.0, 1.0)
                )
            else:  # pragma: no cover - template fields are fixed above
                params[field] = centre

        self._counter += 1
        tag = f"{self.namespace}-" if self.namespace else ""
        return WorkloadProfile(
            name=f"synthetic-{archetype.name}-{tag}{self._counter:04d}",
            ipc_base=float(np.exp(rng.normal(2.0, 1.0))),
            phase_noise=float(rng.uniform(0.005, 0.025)),
            memory_gb=float(np.exp(rng.normal(1.0, 1.2))),
            page_cache_fraction=float(rng.uniform(0.05, 0.9)),
            n_tasks=int(rng.integers(16, 64)),
            **params,
        )

    def _weighted_archetype(self, weights: Dict[str, float]) -> Archetype:
        """Draw an archetype per the weight dict (deterministic in the
        generator's RNG stream)."""
        known = {a.name for a in ARCHETYPES}
        unknown = sorted(set(weights) - known)
        if unknown:
            raise KeyError(
                f"unknown archetypes in weights: {unknown}; available: "
                f"{', '.join(sorted(known))}"
            )
        values = np.array(
            [max(0.0, float(weights.get(a.name, 0.0))) for a in ARCHETYPES]
        )
        total = values.sum()
        if total <= 0:
            raise ValueError("weights must include at least one positive entry")
        index = int(self._rng.choice(len(ARCHETYPES), p=values / total))
        return ARCHETYPES[index]

    def sample(self, n: int) -> List[WorkloadProfile]:
        """A corpus of ``n`` random workloads cycling through archetypes so
        every category is represented."""
        if n < 1:
            raise ValueError("n must be >= 1")
        profiles = []
        for i in range(n):
            archetype = ARCHETYPES[i % len(ARCHETYPES)]
            profiles.append(self.sample_one(archetype))
        return profiles
