"""Workload characteristic profiles.

A profile is the simulator's stand-in for a real application binary: the
handful of latent characteristics that determine how the workload responds
to vCPU placement.  The first group drives the performance model; the second
group (memory footprint, page-cache share, task count) drives the memory-
migration cost model of Table 2.

Two characteristics are deliberately *invisible* to the synthetic hardware
performance events (:mod:`repro.perfsim.hpe`): ``comm_latency_sensitivity``
and ``shared_fraction``.  Section 6 of the paper argues that real PMU events
observed in a single placement cannot separate communication-latency
sensitivity from plain memory intensity, nor predict whether a working set
fits a different number of L3 caches — these hidden characteristics are our
model of that observation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class WorkloadProfile:
    """Characteristics of one containerized workload.

    Performance-model characteristics
    ---------------------------------
    ipc_base:
        Per-vCPU throughput (operations per second, arbitrary application
        units) in ideal conditions: private core, working set in cache.
    working_set_mb:
        Aggregate hot working set competing for L3 capacity.
    shared_fraction:
        Fraction of the working set shared by all threads.  Shared data is
        replicated in every L3 the workload spans, so a high value removes
        the capacity benefit of more caches and rewards consolidation
        (cooperative sharing, Section 1).
    cache_sensitivity:
        Throughput fraction lost when the working set entirely misses L3.
    membw_per_vcpu:
        DRAM bandwidth demand per vCPU (MB/s) when misses are at 100%.
    numa_locality:
        Fraction of DRAM traffic served by the local node (first-touch
        locality); the rest crosses the interconnect.
    comm_intensity:
        How much of the workload is inter-thread communication, in [0, 1].
    comm_latency_sensitivity:
        How strongly communication cost follows latency rather than
        bandwidth, in [0, 1].  *Hidden from HPEs.*
    comm_bytes_per_vcpu:
        Cross-thread traffic per vCPU (MB/s) at full speed.
    smt_affinity:
        Workload adjustment to the machine's baseline SMT efficiency in
        [-1, 1]: negative for workloads that fight over the shared pipeline
        (FP-heavy on CMT modules), positive for cooperative ones (the
        paper's kmeans was the only SMT-preferring benchmark).
    phase_noise:
        Relative run-to-run noise of measured throughput.

    Migration-model characteristics (Table 2)
    -----------------------------------------
    memory_gb:
        Total container memory including page cache.
    page_cache_fraction:
        Share of ``memory_gb`` that is page cache (93% for BLAST, 75% for
        TPC-C, 62% for TPC-H in the paper).
    n_tasks:
        Linux tasks (threads + processes) in the container; default Linux
        migration pays a per-task cpuset cost (ruinous for TPC-C).
    n_processes:
        Distinct processes (address spaces).  Each one costs default Linux a
        separate page-table walk and cpuset update during migration, and
        costs the fast migrator coordination overhead.
    metric_name:
        Human-readable unit of the reported metric.
    """

    name: str
    ipc_base: float = 1.0
    working_set_mb: float = 64.0
    shared_fraction: float = 0.3
    cache_sensitivity: float = 0.5
    membw_per_vcpu: float = 400.0
    numa_locality: float = 0.2
    comm_intensity: float = 0.2
    comm_latency_sensitivity: float = 0.3
    comm_bytes_per_vcpu: float = 80.0
    smt_affinity: float = 0.0
    phase_noise: float = 0.01
    memory_gb: float = 1.0
    page_cache_fraction: float = 0.1
    n_tasks: int = 16
    n_processes: int = 1
    metric_name: str = "ops/s"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("workload name must not be empty")
        if self.ipc_base <= 0:
            raise ValueError("ipc_base must be positive")
        if self.working_set_mb <= 0:
            raise ValueError("working_set_mb must be positive")
        for field_name in (
            "shared_fraction",
            "cache_sensitivity",
            "numa_locality",
            "comm_intensity",
            "comm_latency_sensitivity",
            "page_cache_fraction",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if not -1.0 <= self.smt_affinity <= 1.0:
            raise ValueError(
                f"smt_affinity must be in [-1, 1], got {self.smt_affinity}"
            )
        if self.membw_per_vcpu < 0 or self.comm_bytes_per_vcpu < 0:
            raise ValueError("bandwidth demands must be non-negative")
        if self.phase_noise < 0:
            raise ValueError("phase_noise must be >= 0")
        if self.memory_gb <= 0:
            raise ValueError("memory_gb must be positive")
        if self.n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        if not 1 <= self.n_processes <= self.n_tasks:
            raise ValueError(
                "n_processes must be in [1, n_tasks]: every process is a task"
            )

    def with_overrides(self, **overrides) -> "WorkloadProfile":
        """A copy with some characteristics replaced (used by the workload
        generator and by what-if examples)."""
        return replace(self, **overrides)

    @property
    def anonymous_gb(self) -> float:
        """Process memory excluding the page cache."""
        return self.memory_gb * (1.0 - self.page_cache_fraction)

    @property
    def page_cache_gb(self) -> float:
        return self.memory_gb * self.page_cache_fraction

    def as_dict(self) -> Dict[str, float | int | str]:
        """Flat dictionary (tabular reports, and the wire format:
        ``WorkloadProfile(**d)`` / :meth:`from_dict` reconstructs an equal
        profile — every field is a JSON-safe scalar)."""
        return {
            "name": self.name,
            "ipc_base": self.ipc_base,
            "working_set_mb": self.working_set_mb,
            "shared_fraction": self.shared_fraction,
            "cache_sensitivity": self.cache_sensitivity,
            "membw_per_vcpu": self.membw_per_vcpu,
            "numa_locality": self.numa_locality,
            "comm_intensity": self.comm_intensity,
            "comm_latency_sensitivity": self.comm_latency_sensitivity,
            "comm_bytes_per_vcpu": self.comm_bytes_per_vcpu,
            "smt_affinity": self.smt_affinity,
            "phase_noise": self.phase_noise,
            "memory_gb": self.memory_gb,
            "page_cache_fraction": self.page_cache_fraction,
            "n_tasks": self.n_tasks,
            "n_processes": self.n_processes,
            "metric_name": self.metric_name,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "WorkloadProfile":
        """Inverse of :meth:`as_dict` (validation re-runs in __init__)."""
        return cls(**data)
