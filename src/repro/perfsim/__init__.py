"""The simulated testbed.

Substitution note (DESIGN.md section 2): the paper measures real
applications (NAS, Parsec, Metis, BLAST, gcc, Spark, Postgres, WiredTiger)
in lxc containers on two physical machines.  This subpackage replaces that
testbed with an analytical performance simulator:

* a :class:`~repro.perfsim.workload.WorkloadProfile` captures the
  characteristics that drive placement sensitivity (working set, memory
  bandwidth demand, communication intensity and latency sensitivity, SMT
  affinity, cooperative sharing);
* :class:`~repro.perfsim.simulator.PerformanceSimulator` maps
  (profile, placement) to a throughput by composing the effect models in
  :mod:`repro.perfsim.effects` — SMT/module sharing, L3 capacity, DRAM
  bandwidth saturation, interconnect saturation, and communication latency —
  plus deterministic measurement noise;
* :mod:`repro.perfsim.hpe` synthesizes hardware performance events with the
  crucial property the paper observed on real PMUs: events measured in a
  single placement cannot identify latency sensitivity or cooperative
  sharing, which is why the HPE model underperforms;
* :mod:`repro.perfsim.library` ships calibrated profiles for the paper's 18
  workloads; :mod:`repro.perfsim.generator` samples random workloads around
  six behavioural archetypes for training corpora.
"""

from repro.perfsim.workload import WorkloadProfile
from repro.perfsim.calibration import MachineCalibration, calibration_for
from repro.perfsim.simulator import PerformanceSimulator, ContainerRun
from repro.perfsim.hpe import HpeDefinition, HpeMonitor, hpe_names_for
from repro.perfsim.library import paper_workloads, workload_by_name
from repro.perfsim.generator import WorkloadGenerator, ARCHETYPES

__all__ = [
    "WorkloadProfile",
    "MachineCalibration",
    "calibration_for",
    "PerformanceSimulator",
    "ContainerRun",
    "HpeDefinition",
    "HpeMonitor",
    "hpe_names_for",
    "paper_workloads",
    "workload_by_name",
    "WorkloadGenerator",
    "ARCHETYPES",
]
