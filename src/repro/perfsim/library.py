"""Calibrated profiles for the paper's 18 evaluation workloads.

The paper draws its workloads from NAS, Parsec, Metis, BLAST, the Linux
kernel gcc build, Spark, TPC-C/TPC-H on Postgres, and WiredTiger (Section
6).  We obviously cannot run those binaries; each profile below encodes the
qualitative behaviour reported in the literature (and in the paper itself
where it comments on a workload), plus the *quantitative* memory columns of
Table 2:

* ``memory_gb`` is Table 2's "Memory (GB)" column verbatim;
* ``page_cache_fraction`` uses the paper's stated shares where given (93%
  for BLAST, 75% for TPC-C, 62% for TPC-H) and literature-plausible values
  elsewhere;
* ``n_tasks`` drives the default-Linux migration cost (TPC-C's many server
  processes and Spark's JVM thread army are called out in Section 7).

Behavioural calibration targets (checked by tests and benchmarks):

* **WTbtree** reproduces Figure 1: single-node placement wins on the Intel
  machine; on AMD, 4 nodes beat 2 only without SMT and 8 nodes add nothing.
* **kmeans** is the only workload preferring SMT on AMD (Section 6).
* **streamcluster** is the extreme bandwidth-bound case (its AMD panel in
  Figure 4 spans 0.2-1.0).
* **swaptions** is placement-insensitive (tiny footprint, no communication).
"""

from __future__ import annotations

from typing import Dict, List

from repro.perfsim.workload import WorkloadProfile

_PROFILES: List[WorkloadProfile] = [
    WorkloadProfile(
        name="BLAST",
        ipc_base=14.0,
        working_set_mb=120.0,
        shared_fraction=0.30,  # shared genome index
        cache_sensitivity=0.35,
        membw_per_vcpu=600.0,
        numa_locality=0.30,
        comm_intensity=0.05,
        comm_latency_sensitivity=0.10,
        comm_bytes_per_vcpu=10.0,
        smt_affinity=-0.20,
        phase_noise=0.012,
        memory_gb=18.5,
        page_cache_fraction=0.93,  # paper: 93% of migration is page cache
        n_tasks=20,
        n_processes=1,
        metric_name="queries/s",
    ),
    WorkloadProfile(
        name="canneal",
        ipc_base=90.0,
        working_set_mb=420.0,  # pointer-chasing over a large netlist
        shared_fraction=0.20,
        cache_sensitivity=0.70,
        membw_per_vcpu=700.0,
        numa_locality=0.10,
        comm_intensity=0.15,
        comm_latency_sensitivity=0.65,
        comm_bytes_per_vcpu=30.0,
        smt_affinity=-0.10,
        phase_noise=0.015,
        memory_gb=1.1,
        page_cache_fraction=0.10,
        n_tasks=17,
        n_processes=1,
        metric_name="moves/s",
    ),
    WorkloadProfile(
        name="fluidanimate",
        ipc_base=55.0,
        working_set_mb=60.0,
        shared_fraction=0.35,  # neighbour-cell exchange
        cache_sensitivity=0.40,
        membw_per_vcpu=350.0,
        numa_locality=0.25,
        comm_intensity=0.60,
        comm_latency_sensitivity=0.50,
        comm_bytes_per_vcpu=90.0,
        smt_affinity=-0.30,
        phase_noise=0.012,
        memory_gb=0.7,
        page_cache_fraction=0.10,
        n_tasks=17,
        n_processes=1,
        metric_name="frames/s",
    ),
    WorkloadProfile(
        name="freqmine",
        ipc_base=70.0,
        working_set_mb=30.0,
        shared_fraction=0.40,  # shared FP-tree
        cache_sensitivity=0.60,
        membw_per_vcpu=250.0,
        numa_locality=0.25,
        comm_intensity=0.20,
        comm_latency_sensitivity=0.25,
        comm_bytes_per_vcpu=25.0,
        smt_affinity=-0.20,
        phase_noise=0.012,
        memory_gb=1.3,
        page_cache_fraction=0.15,
        n_tasks=17,
        n_processes=1,
        metric_name="transactions/s",
    ),
    WorkloadProfile(
        name="gcc",
        ipc_base=3.0,
        working_set_mb=100.0,
        shared_fraction=0.05,  # independent compiler processes
        cache_sensitivity=0.45,
        membw_per_vcpu=450.0,
        numa_locality=0.40,
        comm_intensity=0.05,
        comm_latency_sensitivity=0.10,
        comm_bytes_per_vcpu=5.0,
        smt_affinity=-0.15,
        phase_noise=0.015,
        memory_gb=1.4,
        page_cache_fraction=0.50,  # sources and objects in page cache
        n_tasks=34,
        n_processes=2,
        metric_name="files/s",
    ),
    WorkloadProfile(
        name="kmeans",
        ipc_base=25.0,
        working_set_mb=140.0,
        shared_fraction=0.55,  # all threads scan the shared centroid set
        cache_sensitivity=0.40,
        membw_per_vcpu=500.0,
        numa_locality=0.20,
        comm_intensity=0.15,
        comm_latency_sensitivity=0.15,
        comm_bytes_per_vcpu=20.0,
        smt_affinity=0.90,  # the paper's only SMT-preferring workload
        phase_noise=0.012,
        memory_gb=7.2,
        page_cache_fraction=0.65,
        n_tasks=17,
        n_processes=1,
        metric_name="iterations/s",
    ),
    WorkloadProfile(
        name="pca",
        ipc_base=8.0,
        working_set_mb=300.0,
        shared_fraction=0.10,
        cache_sensitivity=0.50,
        membw_per_vcpu=1800.0,  # streaming matrix passes
        numa_locality=0.15,
        comm_intensity=0.15,
        comm_latency_sensitivity=0.20,
        comm_bytes_per_vcpu=40.0,
        smt_affinity=-0.35,
        phase_noise=0.012,
        memory_gb=12.0,
        page_cache_fraction=0.7,
        n_tasks=17,
        n_processes=1,
        metric_name="matrices/s",
    ),
    WorkloadProfile(
        name="postgres-tpch",
        ipc_base=0.8,
        working_set_mb=500.0,
        shared_fraction=0.15,
        cache_sensitivity=0.55,
        membw_per_vcpu=1500.0,  # scan-dominated analytics
        numa_locality=0.20,
        comm_intensity=0.10,
        comm_latency_sensitivity=0.30,
        comm_bytes_per_vcpu=30.0,
        smt_affinity=-0.25,
        phase_noise=0.015,
        memory_gb=26.8,
        page_cache_fraction=0.62,  # paper: 62% of migration is page cache
        n_tasks=90,
        n_processes=48,
        metric_name="queries/h",
    ),
    WorkloadProfile(
        name="postgres-tpcc",
        ipc_base=60.0,
        working_set_mb=150.0,
        shared_fraction=0.35,  # shared buffer pool
        cache_sensitivity=0.50,
        membw_per_vcpu=500.0,
        numa_locality=0.20,
        comm_intensity=0.45,
        comm_latency_sensitivity=0.60,  # lock-heavy OLTP
        comm_bytes_per_vcpu=60.0,
        smt_affinity=-0.10,
        phase_noise=0.018,
        memory_gb=37.7,
        page_cache_fraction=0.75,  # paper: 75% of migration is page cache
        n_tasks=240,  # many server processes; Section 7's cpuset pathology
        n_processes=220,
        metric_name="tpmC",
    ),
    WorkloadProfile(
        name="spark-cc",
        ipc_base=4.0,
        working_set_mb=600.0,
        shared_fraction=0.20,
        cache_sensitivity=0.50,
        membw_per_vcpu=1100.0,
        numa_locality=0.15,
        comm_intensity=0.50,
        comm_latency_sensitivity=0.40,
        comm_bytes_per_vcpu=120.0,
        smt_affinity=-0.20,
        phase_noise=0.02,
        memory_gb=17.0,
        page_cache_fraction=0.25,
        n_tasks=400,  # JVM thread army
        n_processes=1,
        metric_name="iterations/s",
    ),
    WorkloadProfile(
        name="spark-pr-lj",
        ipc_base=3.5,
        working_set_mb=700.0,
        shared_fraction=0.20,
        cache_sensitivity=0.50,
        membw_per_vcpu=1200.0,
        numa_locality=0.15,
        comm_intensity=0.55,
        comm_latency_sensitivity=0.35,
        comm_bytes_per_vcpu=140.0,
        smt_affinity=-0.20,
        phase_noise=0.02,
        memory_gb=17.1,
        page_cache_fraction=0.25,
        n_tasks=400,
        n_processes=1,
        metric_name="iterations/s",
    ),
    WorkloadProfile(
        name="streamcluster",
        ipc_base=40.0,
        working_set_mb=90.0,
        shared_fraction=0.05,
        cache_sensitivity=0.50,
        membw_per_vcpu=2600.0,  # the extreme bandwidth-bound case
        numa_locality=0.10,
        comm_intensity=0.25,
        comm_latency_sensitivity=0.25,
        comm_bytes_per_vcpu=60.0,
        smt_affinity=-0.40,
        phase_noise=0.015,
        memory_gb=0.1,
        page_cache_fraction=0.05,
        n_tasks=17,
        n_processes=1,
        metric_name="points/s",
    ),
    WorkloadProfile(
        name="swaptions",
        ipc_base=110.0,
        working_set_mb=2.0,  # tiny per-thread state
        shared_fraction=0.10,
        cache_sensitivity=0.05,
        membw_per_vcpu=20.0,
        numa_locality=0.50,
        comm_intensity=0.02,
        comm_latency_sensitivity=0.05,
        comm_bytes_per_vcpu=2.0,
        smt_affinity=-0.10,
        phase_noise=0.01,
        memory_gb=0.01,
        page_cache_fraction=0.05,
        n_tasks=17,
        n_processes=1,
        metric_name="swaptions/s",
    ),
    WorkloadProfile(
        name="ft.C",
        ipc_base=6.0,
        working_set_mb=800.0,
        shared_fraction=0.05,
        cache_sensitivity=0.45,
        membw_per_vcpu=1600.0,
        numa_locality=0.10,
        comm_intensity=0.70,  # all-to-all transpose
        comm_latency_sensitivity=0.20,  # bandwidth-bound, not latency-bound
        comm_bytes_per_vcpu=400.0,
        smt_affinity=-0.45,
        phase_noise=0.015,
        memory_gb=5.0,
        page_cache_fraction=0.05,
        n_tasks=17,
        n_processes=1,
        metric_name="Mop/s",
    ),
    WorkloadProfile(
        name="dc.B",
        ipc_base=2.0,
        working_set_mb=900.0,
        shared_fraction=0.10,
        cache_sensitivity=0.50,
        membw_per_vcpu=900.0,
        numa_locality=0.20,
        comm_intensity=0.20,
        comm_latency_sensitivity=0.30,
        comm_bytes_per_vcpu=50.0,
        smt_affinity=-0.20,
        phase_noise=0.018,
        memory_gb=27.3,
        page_cache_fraction=0.60,  # data-cube spill files
        n_tasks=64,
        n_processes=1,
        metric_name="tuples/s",
    ),
    WorkloadProfile(
        name="wc",
        ipc_base=9.0,
        working_set_mb=250.0,
        shared_fraction=0.15,
        cache_sensitivity=0.45,
        membw_per_vcpu=1000.0,
        numa_locality=0.25,
        comm_intensity=0.30,
        comm_latency_sensitivity=0.25,
        comm_bytes_per_vcpu=80.0,
        smt_affinity=-0.20,
        phase_noise=0.015,
        memory_gb=15.4,
        page_cache_fraction=0.70,  # map-reduce over cached input files
        n_tasks=17,
        n_processes=1,
        metric_name="MB/s",
    ),
    WorkloadProfile(
        name="wr",
        ipc_base=8.0,
        working_set_mb=350.0,
        shared_fraction=0.15,
        cache_sensitivity=0.45,
        membw_per_vcpu=1100.0,
        numa_locality=0.25,
        comm_intensity=0.35,
        comm_latency_sensitivity=0.30,
        comm_bytes_per_vcpu=90.0,
        smt_affinity=-0.20,
        phase_noise=0.015,
        memory_gb=17.1,
        page_cache_fraction=0.70,
        n_tasks=17,
        n_processes=1,
        metric_name="MB/s",
    ),
    WorkloadProfile(
        name="WTbtree",
        ipc_base=120_000.0,
        working_set_mb=48.0,  # hot B-tree levels
        shared_fraction=0.55,  # upper tree levels shared by all threads
        cache_sensitivity=0.20,
        membw_per_vcpu=300.0,
        numa_locality=0.25,
        comm_intensity=0.85,
        comm_latency_sensitivity=0.95,  # Section 6's prime latency example
        comm_bytes_per_vcpu=150.0,
        smt_affinity=-0.25,
        phase_noise=0.015,
        memory_gb=36.3,
        page_cache_fraction=0.6,
        n_tasks=40,
        n_processes=1,
        metric_name="ops/s",
    ),
]

_BY_NAME: Dict[str, WorkloadProfile] = {p.name: p for p in _PROFILES}

#: Workload names in the order Table 2 lists them.
PAPER_WORKLOAD_NAMES = tuple(p.name for p in _PROFILES)


def paper_workloads() -> List[WorkloadProfile]:
    """All 18 paper workloads (fresh list; profiles are immutable)."""
    return list(_PROFILES)


def workload_by_name(name: str) -> WorkloadProfile:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: "
            f"{', '.join(sorted(_BY_NAME))}"
        ) from None
