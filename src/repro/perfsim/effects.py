"""Individual placement-effect models.

Each function captures one mechanism through which placement changes
performance; :class:`repro.perfsim.simulator.PerformanceSimulator` composes
them multiplicatively.  Keeping them separate makes each mechanism unit-
testable and lets the ablation benchmarks switch mechanisms off.

All factors are dimensionless multipliers on ideal throughput, 1.0 meaning
"no effect".  The SMT factor may exceed 1.0 for cooperatively sharing
workloads (the paper's kmeans preferred SMT).
"""

from __future__ import annotations

import math

import numpy as np

#: Bounds on per-thread efficiency under full sharing.  The upper bound
#: allows cooperative workloads to *prefer* SMT (the paper's kmeans), the
#: lower bound keeps pathological inputs sane.
_MIN_SMT_EFFICIENCY = 0.30
_MAX_SMT_EFFICIENCY = 1.15

#: How much of the [-1, 1] smt_affinity range shifts the machine's baseline
#: SMT efficiency (additive).
_SMT_AFFINITY_WEIGHT = 0.45


def smt_factor(
    l2_share: int,
    threads_per_l2: int,
    machine_smt_efficiency: float,
    smt_affinity: float,
) -> float:
    """Throughput multiplier for sharing L2 groups (SMT contexts or CMT
    modules).

    ``l2_share`` is how many of an L2 group's ``threads_per_l2`` hardware
    threads the placement uses.  The machine's baseline efficiency is
    adjusted by the workload's affinity and interpolated linearly with the
    sharing degree.
    """
    if threads_per_l2 <= 1 or l2_share <= 1:
        return 1.0
    degree = (l2_share - 1) / (threads_per_l2 - 1)
    efficiency = machine_smt_efficiency + _SMT_AFFINITY_WEIGHT * smt_affinity
    efficiency = min(max(efficiency, _MIN_SMT_EFFICIENCY), _MAX_SMT_EFFICIENCY)
    return 1.0 + degree * (efficiency - 1.0)


def effective_working_set_per_l3(
    working_set_mb: float, shared_fraction: float, n_l3: int
) -> float:
    """Working set competing for one L3 cache.

    Thread-private data divides across the caches; data shared by all
    threads is replicated into *every* cache the workload spans.  Highly
    shared workloads therefore gain nothing from more caches — the
    cooperative-sharing effect of Section 1.
    """
    if working_set_mb <= 0:
        raise ValueError("working_set_mb must be positive")
    if n_l3 < 1:
        raise ValueError("n_l3 must be >= 1")
    private = working_set_mb * (1.0 - shared_fraction)
    shared = working_set_mb * shared_fraction
    return shared + private / n_l3


def miss_fraction(working_set_per_l3_mb: float, l3_size_mb: float) -> float:
    """Fraction of accesses missing an L3 of the given size.

    A uniform-access-over-working-set model: an LRU cache of size S keeps S
    of the W hot megabytes resident, so misses are ``max(0, 1 - S/W)``.
    """
    if l3_size_mb <= 0:
        raise ValueError("l3_size_mb must be positive")
    if working_set_per_l3_mb <= 0:
        raise ValueError("working_set_per_l3_mb must be positive")
    return max(0.0, 1.0 - l3_size_mb / working_set_per_l3_mb)


def cache_factor(sensitivity: float, misses: float) -> float:
    """Throughput multiplier for L3 capacity misses."""
    if not 0.0 <= sensitivity <= 1.0:
        raise ValueError("sensitivity must be in [0, 1]")
    if not 0.0 <= misses <= 1.0:
        raise ValueError("misses must be in [0, 1]")
    return 1.0 - sensitivity * misses


def saturation_factor(
    demand: float, supply: float, sharpness: float = 4.0
) -> float:
    """Smooth bandwidth-saturation multiplier.

    Behaves like ``min(1, supply/demand)`` with a rounded knee:
    ``(1 + u^s)^(-1/s)`` where ``u = demand / supply``.  At u=0 the factor
    is 1; at u>>1 it approaches ``supply/demand`` (bandwidth-bound).
    """
    if demand < 0 or supply < 0:
        raise ValueError("demand and supply must be non-negative")
    if sharpness <= 0:
        raise ValueError("sharpness must be positive")
    if demand == 0:
        return 1.0
    if supply == 0:
        return 0.0
    utilization = demand / supply
    return float((1.0 + utilization**sharpness) ** (-1.0 / sharpness))


def comm_latency_factor(
    comm_intensity: float,
    latency_sensitivity: float,
    mean_latency_ns: float,
    local_latency_ns: float,
) -> float:
    """Throughput multiplier for inter-thread communication latency.

    The placement's mean pairwise latency, relative to the all-local case,
    stretches the communication portion of the critical path.  Placements
    confined to one node communicate through the shared L3 and see factor 1.
    """
    for name, value in (
        ("comm_intensity", comm_intensity),
        ("latency_sensitivity", latency_sensitivity),
    ):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1]")
    if local_latency_ns <= 0 or mean_latency_ns < local_latency_ns - 1e-9:
        raise ValueError("latencies must be positive with mean >= local")
    excess = mean_latency_ns / local_latency_ns - 1.0
    return 1.0 / (1.0 + comm_intensity * latency_sensitivity * excess)


# ----------------------------------------------------------------------
# Vectorized variants
# ----------------------------------------------------------------------
#
# Array counterparts of the scalar factors above, used by the simulator's
# batched kernels (one numpy pass over a whole placement grid instead of a
# Python call per (workload, placement) cell).  Each mirrors its scalar
# twin's arithmetic operation-for-operation — same order of multiplies,
# same guards expressed as ``np.where`` — so the batched kernels are
# bit-for-bit identical to the scalar loops (asserted in
# ``tests/perfsim/test_simulator_batch.py``).  Inputs are trusted (they
# come from validated profiles and placements), so the scalar versions'
# range checks are not repeated here.


def smt_factor_array(
    l2_share: np.ndarray,
    threads_per_l2: int,
    machine_smt_efficiency: float,
    smt_affinity: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`smt_factor`; broadcasts ``l2_share`` (per
    placement) against ``smt_affinity`` (per workload)."""
    l2_share = np.asarray(l2_share)
    smt_affinity = np.asarray(smt_affinity)
    if threads_per_l2 <= 1:
        return np.ones(np.broadcast(l2_share, smt_affinity).shape)
    degree = (l2_share - 1) / (threads_per_l2 - 1)
    efficiency = machine_smt_efficiency + _SMT_AFFINITY_WEIGHT * smt_affinity
    efficiency = np.minimum(
        np.maximum(efficiency, _MIN_SMT_EFFICIENCY), _MAX_SMT_EFFICIENCY
    )
    return np.where(l2_share <= 1, 1.0, 1.0 + degree * (efficiency - 1.0))


def effective_working_set_per_l3_array(
    working_set_mb: np.ndarray,
    shared_fraction: np.ndarray,
    n_l3: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`effective_working_set_per_l3`."""
    private = working_set_mb * (1.0 - shared_fraction)
    shared = working_set_mb * shared_fraction
    return shared + private / n_l3


def miss_fraction_array(
    working_set_per_l3_mb: np.ndarray, l3_size_mb
) -> np.ndarray:
    """Vectorized :func:`miss_fraction`."""
    return np.maximum(0.0, 1.0 - l3_size_mb / working_set_per_l3_mb)


def cache_factor_array(
    sensitivity: np.ndarray, misses: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`cache_factor`."""
    return 1.0 - sensitivity * misses


#: Elementwise libm pow.  numpy's vectorized float64 power differs from
#: CPython's ``float ** float`` (both call libm, but numpy's SIMD kernel
#: rounds differently in the last ulp), and the batched kernels must be
#: *bit-for-bit* equal to the scalar loops they replace — so the two pow
#: applications per saturation factor go through libm per element, like
#: the scalar path's ``**``.  Everything around them stays vectorized;
#: profiling shows the pow loop is a rounding error next to the removed
#: per-cell Python effect calls.
_libm_pow = np.frompyfunc(math.pow, 2, 1)


def saturation_factor_array(
    demand: np.ndarray, supply, sharpness: float = 4.0
) -> np.ndarray:
    """Vectorized :func:`saturation_factor`, with the scalar guards as
    masks: zero demand is 1.0 (checked first, as in the scalar), zero
    supply under nonzero demand is 0.0."""
    demand = np.asarray(demand, dtype=float)
    supply = np.asarray(supply, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        utilization = demand / supply
    inner = 1.0 + _libm_pow(utilization, sharpness).astype(float)
    factor = _libm_pow(inner, -1.0 / sharpness).astype(float)
    return np.where(demand == 0.0, 1.0, np.where(supply == 0.0, 0.0, factor))


def comm_latency_factor_array(
    comm_intensity: np.ndarray,
    latency_sensitivity: np.ndarray,
    mean_latency_ns: np.ndarray,
    local_latency_ns: float,
) -> np.ndarray:
    """Vectorized :func:`comm_latency_factor`."""
    excess = mean_latency_ns / local_latency_ns - 1.0
    return 1.0 / (1.0 + comm_intensity * latency_sensitivity * excess)


def l2_capacity_factor_array(
    working_set_per_vcpu_mb: np.ndarray,
    l2_share: np.ndarray,
    l2_size_mb: float,
    pressure_mb: float,
) -> np.ndarray:
    """Vectorized :func:`l2_capacity_factor`."""
    pressure = np.minimum(
        1.0, working_set_per_vcpu_mb / (l2_size_mb + pressure_mb)
    )
    return np.where(
        l2_share <= 1, 1.0, 1.0 - 0.06 * (l2_share - 1) * pressure
    )


def l2_capacity_factor(
    working_set_per_vcpu_mb: float,
    l2_share: int,
    l2_size_mb: float,
    pressure_mb: float,
) -> float:
    """Small additional penalty when SMT sharing also splits a hot L2.

    Only bites when each thread's slice of the working set already presses
    on the (shared) L2; modelled as up to 6% per extra sharer.
    """
    if l2_share <= 1:
        return 1.0
    if pressure_mb <= 0:
        raise ValueError("pressure_mb must be positive")
    pressure = min(1.0, working_set_per_vcpu_mb / (l2_size_mb + pressure_mb))
    return 1.0 - 0.06 * (l2_share - 1) * pressure
