"""Synthetic hardware performance events (HPEs).

The paper's baseline model feeds PMU events measured in a single placement
into the regressor (Section 5).  We synthesize a machine-specific event
catalog (25 events on the AMD model, 41 on the Intel model — the counts the
paper starts from) whose values derive from the workload's *visible*
behaviour in the measured placement:

* achieved IPC, L2/L3 miss pressure, DRAM utilization, remote-access
  fraction, sharing-traffic volume, SMT occupancy, plus per-workload
  microarchitectural signatures (branches, TLB, FP mix);
* two profile characteristics are deliberately *not* in the signal set:
  ``comm_latency_sensitivity`` and ``shared_fraction``.  A counter reports
  how much traffic flows, not how much the workload would suffer if the
  latency changed, nor whether its working set would fit a different cache
  count — the paper's explanation of why single-placement HPEs mispredict
  workloads like WTbtree (Section 6).

Real PMUs can only measure ~4 events at a time; :class:`HpeMonitor` models
that multiplexing by inflating measurement noise with the number of event
groups, which is what makes "just measure all 1000 events" impractical
(66 days on the paper's Intel machine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
import zlib

from repro.core.placements import Placement
from repro.perfsim import effects
from repro.perfsim.simulator import PerformanceSimulator, _stable_seed
from repro.perfsim.workload import WorkloadProfile
from repro.topology.machine import MachineTopology

#: Hardware counter registers available simultaneously.
COUNTER_REGISTERS = 4

#: Names of the signal components events are built from.
SIGNAL_NAMES = (
    "const",
    "ipc",
    "l3_miss",
    "l2_pressure",
    "dram_utilization",
    "remote_fraction",
    "sharing_traffic",
    "smt_occupancy",
    "branch_signature",
    "tlb_signature",
    "fp_signature",
)


@dataclass(frozen=True)
class HpeDefinition:
    """One synthetic event: an affine combination of behaviour signals."""

    name: str
    weights: Tuple[float, ...]
    noise: float

    def __post_init__(self) -> None:
        if len(self.weights) != len(SIGNAL_NAMES):
            raise ValueError(
                f"event {self.name} needs {len(SIGNAL_NAMES)} weights"
            )
        if self.noise < 0:
            raise ValueError("noise must be >= 0")


def _signature(workload_name: str, salt: str) -> float:
    """Stable per-workload pseudo-characteristic in [0, 1] (e.g. branch
    behaviour), derived from the name so it is consistent across runs."""
    return (zlib.crc32(f"{workload_name}:{salt}".encode()) % 10_000) / 10_000.0


def behaviour_signals(
    simulator: PerformanceSimulator,
    profile: WorkloadProfile,
    placement: Placement,
) -> np.ndarray:
    """The visible-behaviour signal vector for one (workload, placement)."""
    machine = simulator.machine
    factors = simulator.breakdown(profile, placement)
    ipc = float(np.prod(list(factors.values())))

    ws_per_l3 = effects.effective_working_set_per_l3(
        profile.working_set_mb, profile.shared_fraction, placement.l3_score
    )
    l3_miss = effects.miss_fraction(ws_per_l3, machine.l3_size_mb)
    l2_pressure = min(
        1.0,
        (profile.working_set_mb / placement.vcpus)
        / max(machine.l2_size_kb / 1024.0, 1e-6),
    )
    dram_demand = placement.vcpus * profile.membw_per_vcpu * l3_miss
    dram_supply = placement.n_nodes * machine.dram_bandwidth_mbps
    dram_utilization = min(2.0, dram_demand / dram_supply)
    n = placement.n_nodes
    remote_fraction = (1.0 - profile.numa_locality) * (n - 1) / n
    sharing_traffic = profile.comm_intensity * min(
        1.0, profile.comm_bytes_per_vcpu / 200.0
    )
    smt_occupancy = (
        (placement.l2_share - 1) / (machine.threads_per_l2 - 1)
        if machine.threads_per_l2 > 1
        else 0.0
    )
    return np.array(
        [
            1.0,
            ipc,
            l3_miss,
            l2_pressure,
            dram_utilization,
            remote_fraction,
            sharing_traffic,
            smt_occupancy,
            _signature(profile.name, "branch"),
            _signature(profile.name, "tlb"),
            _signature(profile.name, "fp"),
        ]
    )


_CANONICAL_EVENTS: Tuple[Tuple[str, Dict[str, float], float], ...] = (
    ("INSTRUCTIONS_RETIRED", {"ipc": 1.0}, 0.01),
    ("CPU_CLK_UNHALTED", {"const": 1.0}, 0.005),
    ("LLC_MISSES", {"l3_miss": 1.0}, 0.02),
    ("L2_MISSES", {"l2_pressure": 0.6, "l3_miss": 0.4}, 0.02),
    ("DRAM_ACCESSES", {"dram_utilization": 1.0}, 0.02),
    ("REMOTE_DRAM_ACCESSES", {"dram_utilization": 0.5, "remote_fraction": 0.8}, 0.03),
    ("HITM_SNOOPS", {"sharing_traffic": 1.0}, 0.03),
    ("SMT_CYCLES_SHARED", {"smt_occupancy": 1.0}, 0.01),
    ("BRANCH_MISPREDICTS", {"branch_signature": 1.0}, 0.02),
    ("DTLB_MISSES", {"tlb_signature": 0.7, "l3_miss": 0.3}, 0.02),
    ("FP_OPS_RETIRED", {"fp_signature": 1.0}, 0.01),
    ("STALL_CYCLES_BACKEND", {"l3_miss": 0.5, "dram_utilization": 0.5}, 0.02),
)

#: Event-catalog sizes the paper quotes for its two machines.
_CATALOG_SIZES = {
    "amd-opteron-6272": 25,
    "intel-xeon-e7-4830-v3": 41,
}


def build_catalog(machine: MachineTopology) -> List[HpeDefinition]:
    """The machine's event catalog: canonical events plus derived/redundant
    ones (real PMUs expose many overlapping views of the same behaviour)."""
    size = _CATALOG_SIZES.get(machine.name, 25)
    events: List[HpeDefinition] = []
    index = {name: i for i, name in enumerate(SIGNAL_NAMES)}
    for name, weight_map, noise in _CANONICAL_EVENTS:
        weights = [0.0] * len(SIGNAL_NAMES)
        for signal, value in weight_map.items():
            weights[index[signal]] = value
        events.append(HpeDefinition(name, tuple(weights), noise))

    rng = np.random.default_rng(_stable_seed("hpe-catalog", machine.name))
    derived = 0
    while len(events) < size:
        derived += 1
        weights = np.zeros(len(SIGNAL_NAMES))
        # Each derived event mixes 2-3 visible signals (never the constant).
        k = int(rng.integers(2, 4))
        chosen = rng.choice(np.arange(1, len(SIGNAL_NAMES)), size=k, replace=False)
        weights[chosen] = rng.uniform(0.2, 1.0, size=k)
        events.append(
            HpeDefinition(
                f"DERIVED_EVENT_{derived:02d}",
                tuple(float(w) for w in weights),
                float(rng.uniform(0.02, 0.08)),
            )
        )
    return events


def hpe_names_for(machine: MachineTopology) -> List[str]:
    return [event.name for event in build_catalog(machine)]


class HpeMonitor:
    """Measures synthetic events for a container run.

    Parameters
    ----------
    simulator:
        The performance simulator whose machine is being monitored.
    """

    def __init__(self, simulator: PerformanceSimulator) -> None:
        self.simulator = simulator
        self.catalog = build_catalog(simulator.machine)
        self._by_name = {event.name: event for event in self.catalog}

    @property
    def event_names(self) -> List[str]:
        return [event.name for event in self.catalog]

    def measure(
        self,
        profile: WorkloadProfile,
        placement: Placement,
        *,
        events: Sequence[str] | None = None,
        duration_s: float = 10.0,
        repetition: int = 0,
    ) -> Dict[str, float]:
        """Measure events during a run in ``placement``.

        With more than :data:`COUNTER_REGISTERS` events requested, the PMU
        time-multiplexes event groups: each group observes only a slice of
        the run, multiplying measurement noise by sqrt(#groups).
        """
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        names = list(events) if events is not None else self.event_names
        unknown = [n for n in names if n not in self._by_name]
        if unknown:
            raise KeyError(f"unknown events: {unknown}")

        signals = behaviour_signals(self.simulator, profile, placement)
        groups = max(1, -(-len(names) // COUNTER_REGISTERS))  # ceil div
        noise_scale = np.sqrt(groups) / np.sqrt(max(duration_s, 1e-9) / 10.0)

        rng = np.random.default_rng(
            _stable_seed(
                "hpe",
                self.simulator.seed,
                self.simulator.machine.name,
                profile.name,
                placement.nodes,
                placement.l2_share,
                repetition,
            )
        )
        values: Dict[str, float] = {}
        for name in names:
            event = self._by_name[name]
            base = float(np.dot(event.weights, signals))
            values[name] = base * float(
                np.exp(rng.normal(0.0, event.noise * noise_scale))
            )
        return values

    def measurement_cost_s(
        self, n_events: int, *, seconds_per_group: float = 10.0
    ) -> float:
        """Wall-clock cost of measuring ``n_events`` with 4 registers —
        the quantity that made exhaustive HPE measurement impractical in the
        paper (weeks for full catalogs across a training corpus)."""
        if n_events < 1:
            raise ValueError("n_events must be >= 1")
        groups = -(-n_events // COUNTER_REGISTERS)
        return groups * seconds_per_group
