"""The placement performance simulator.

Composes the effect models of :mod:`repro.perfsim.effects` into a
throughput figure for (workload, placement) pairs, supports co-located
containers sharing nodes (needed by the Aggressive policies of Section 7),
and produces deterministic, seedable measurement noise so that "running" a
container twice gives realistically different numbers.

Conventions
-----------
* Throughput is in application operations per second (the profile's
  ``metric_name``); only ratios between placements matter.
* Relative performance vectors are ``perf[i] / perf[baseline]`` — higher is
  better.  (The paper's prose example normalizes the other way around; the
  figures use this orientation.)
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.placements import Placement
from repro.perfsim.calibration import MachineCalibration, calibration_for
from repro.perfsim import effects
from repro.perfsim.workload import WorkloadProfile
from repro.topology.machine import MachineTopology


@dataclass(frozen=True)
class ContainerRun:
    """Result of one simulated run."""

    profile: WorkloadProfile
    placement: Placement
    throughput: float
    factors: Dict[str, float]


def _stable_seed(*parts) -> int:
    text = "|".join(str(p) for p in parts)
    return zlib.crc32(text.encode("utf-8"))


class PerformanceSimulator:
    """Simulates workload throughput in placements on one machine.

    Parameters
    ----------
    machine:
        Target machine model.
    calibration:
        Dynamic-behaviour constants; defaults to the machine's preset
        calibration.
    seed:
        Base seed for measurement noise.  All randomness is derived
        deterministically from (seed, workload, placement, repetition).
    """

    def __init__(
        self,
        machine: MachineTopology,
        *,
        calibration: MachineCalibration | None = None,
        seed: int = 0,
    ) -> None:
        self.machine = machine
        self.calibration = (
            calibration if calibration is not None else calibration_for(machine)
        )
        self.seed = seed

    # ------------------------------------------------------------------
    # Single-container model
    # ------------------------------------------------------------------

    def breakdown(
        self, profile: WorkloadProfile, placement: Placement
    ) -> Dict[str, float]:
        """Noise-free per-effect multipliers for one placement."""
        self._check_placement(placement)
        machine = self.machine
        cal = self.calibration
        n_nodes = placement.n_nodes
        vcpus = placement.vcpus

        smt = effects.smt_factor(
            placement.l2_share,
            machine.threads_per_l2,
            cal.smt_efficiency,
            profile.smt_affinity,
        ) * effects.l2_capacity_factor(
            profile.working_set_mb / vcpus,
            placement.l2_share,
            machine.l2_size_kb / 1024.0,
            cal.l2_pressure_mb,
        )

        ws_per_l3 = effects.effective_working_set_per_l3(
            profile.working_set_mb, profile.shared_fraction, placement.l3_score
        )
        misses = effects.miss_fraction(ws_per_l3, machine.l3_size_mb)
        cache = effects.cache_factor(profile.cache_sensitivity, misses)

        dram_demand = vcpus * profile.membw_per_vcpu * misses
        dram_supply = n_nodes * machine.dram_bandwidth_mbps
        membw = effects.saturation_factor(
            dram_demand, dram_supply, cal.saturation_sharpness
        )

        if n_nodes > 1:
            cross_fraction = (n_nodes - 1) / n_nodes
            ic_demand = (
                dram_demand * (1.0 - profile.numa_locality) * cross_fraction
                + vcpus * profile.comm_bytes_per_vcpu * cross_fraction
            )
            ic_supply = machine.interconnect.aggregate_bandwidth(placement.nodes)
            interconnect = effects.saturation_factor(
                ic_demand, ic_supply, cal.saturation_sharpness
            )
        else:
            interconnect = 1.0

        mean_latency = machine.interconnect.mean_pairwise_latency_ns(
            placement.nodes
        )
        comm = effects.comm_latency_factor(
            profile.comm_intensity,
            profile.comm_latency_sensitivity,
            mean_latency,
            machine.interconnect.local_latency_ns,
        )

        return {
            "smt": smt,
            "cache": cache,
            "membw": membw,
            "interconnect": interconnect,
            "comm_latency": comm,
        }

    def throughput(
        self,
        profile: WorkloadProfile,
        placement: Placement,
        *,
        noise: bool = True,
        duration_s: float = 10.0,
        repetition: int = 0,
    ) -> float:
        """Throughput of the container in a placement.

        ``duration_s`` models how long the measurement ran: short probes
        (the scheduler's "couple of seconds" observations) are noisier than
        long steady-state runs.
        """
        factors = self.breakdown(profile, placement)
        value = profile.ipc_base * placement.vcpus
        for factor in factors.values():
            value *= factor
        if noise and profile.phase_noise > 0:
            value *= self._noise_multiplier(profile, placement, duration_s, repetition)
        return value

    def run(
        self,
        profile: WorkloadProfile,
        placement: Placement,
        *,
        noise: bool = True,
        duration_s: float = 10.0,
        repetition: int = 0,
    ) -> ContainerRun:
        """Like :meth:`throughput`, but returns the factor breakdown too."""
        factors = self.breakdown(profile, placement)
        value = profile.ipc_base * placement.vcpus
        for factor in factors.values():
            value *= factor
        if noise and profile.phase_noise > 0:
            value *= self._noise_multiplier(profile, placement, duration_s, repetition)
        return ContainerRun(profile, placement, value, factors)

    def base_ipc(self, profile: WorkloadProfile) -> float:
        """The workload's instructions-per-cycle in ideal conditions.

        Real applications' IPC correlates with how memory-bound they are;
        that correlation is what makes absolute IPC observations informative
        to the model across workloads (Section 5 uses IPC as the generic
        online metric).  A stable per-workload residual models everything
        else (instruction mix, branchiness).
        """
        memory_pressure = min(1.0, profile.membw_per_vcpu / 2000.0)
        residual = 0.85 + 0.3 * (
            zlib.crc32(f"{profile.name}:ipc".encode()) % 1000
        ) / 1000.0
        return (
            2.4
            * (1.0 - 0.45 * memory_pressure)
            * (1.0 - 0.25 * profile.cache_sensitivity)
            * residual
        )

    def measured_ipc(
        self,
        profile: WorkloadProfile,
        placement: Placement,
        *,
        noise: bool = True,
        duration_s: float = 10.0,
        repetition: int = 0,
    ) -> float:
        """The online performance metric the scheduler observes: achieved
        instructions per cycle.  Unlike :meth:`throughput` (application
        units, arbitrary scale per workload), IPC is comparable across
        workloads, which is what model training needs."""
        factors = self.breakdown(profile, placement)
        value = self.base_ipc(profile)
        for factor in factors.values():
            value *= factor
        if noise and profile.phase_noise > 0:
            value *= self._noise_multiplier(
                profile, placement, duration_s, repetition, extra=1_000_003
            )
        return value

    def measured_ipc_noise(
        self,
        profile: WorkloadProfile,
        placement: Placement,
        *,
        duration_s: float = 10.0,
        repetition: int = 0,
    ) -> float:
        """The multiplicative noise term of :meth:`measured_ipc` alone.

        ``measured_ipc(noise=True)`` equals ``measured_ipc(noise=False) *
        measured_ipc_noise(...)`` bit-for-bit (same factor, multiplied in
        the same order), which lets callers memoize the deterministic part
        and re-draw only the noise per repetition.
        """
        if profile.phase_noise <= 0:
            return 1.0
        return self._noise_multiplier(
            profile, placement, duration_s, repetition, extra=1_000_003
        )

    def performance_vector(
        self,
        profile: WorkloadProfile,
        placements: Sequence[Placement],
        *,
        baseline_index: int = 0,
        noise: bool = False,
        repetition: int = 0,
    ) -> np.ndarray:
        """Relative performance across a placement list (the model's target
        quantity): ``perf[i] / perf[baseline]``."""
        if not placements:
            raise ValueError("placements must not be empty")
        if not 0 <= baseline_index < len(placements):
            raise ValueError(
                f"baseline_index {baseline_index} out of range for "
                f"{len(placements)} placements"
            )
        values = np.array(
            [
                self.throughput(
                    profile, p, noise=noise, repetition=repetition
                )
                for p in placements
            ]
        )
        baseline = values[baseline_index]
        if baseline <= 0:
            raise ValueError("baseline throughput is non-positive")
        return values / baseline

    # ------------------------------------------------------------------
    # Co-located containers (Aggressive policies, Section 7)
    # ------------------------------------------------------------------

    def simulate_colocated(
        self,
        assignments: Sequence[Tuple[WorkloadProfile, Placement]],
        *,
        noise: bool = True,
        repetition: int = 0,
    ) -> List[float]:
        """Throughput of containers that may share NUMA nodes.

        The solo path is the special case of a single assignment; with
        sharing, containers split L3 capacity in proportion to their thread
        counts, add their DRAM and interconnect demands, time-share
        oversubscribed cores, and suffer effective SMT sharing from
        neighbours' threads.
        """
        if not assignments:
            raise ValueError("assignments must not be empty")
        machine = self.machine
        cal = self.calibration
        for _, placement in assignments:
            self._check_placement(placement)

        # Per-node thread pressure across all containers.
        threads_on_node: Dict[int, float] = {}
        per_container_nodes: List[Dict[int, int]] = []
        for _, placement in assignments:
            counts: Dict[int, int] = {}
            for thread in placement.threads:
                node = machine.node_of_thread(thread)
                counts[node] = counts.get(node, 0) + 1
            per_container_nodes.append(counts)
            for node, count in counts.items():
                threads_on_node[node] = threads_on_node.get(node, 0) + count

        # First pass: per-container miss fractions under shared caches.
        miss_fractions: List[float] = []
        for (profile, placement), counts in zip(assignments, per_container_nodes):
            share = np.mean(
                [counts[node] / threads_on_node[node] for node in counts]
            )
            ws_per_l3 = effects.effective_working_set_per_l3(
                profile.working_set_mb,
                profile.shared_fraction,
                placement.l3_score,
            )
            misses = effects.miss_fraction(
                ws_per_l3, machine.l3_size_mb * float(share)
            )
            miss_fractions.append(misses)

        # Aggregate DRAM demand per node, and each container's own
        # interconnect demand (shared later in proportion to node overlap).
        dram_demand_on_node: Dict[int, float] = {n: 0.0 for n in threads_on_node}
        ic_demands: List[float] = []
        for (profile, placement), counts, misses in zip(
            assignments, per_container_nodes, miss_fractions
        ):
            demand = placement.vcpus * profile.membw_per_vcpu * misses
            for node, count in counts.items():
                dram_demand_on_node[node] += demand * count / placement.vcpus
            n_nodes = placement.n_nodes
            if n_nodes > 1:
                cross = (n_nodes - 1) / n_nodes
                ic_demands.append(
                    demand * (1.0 - profile.numa_locality) * cross
                    + placement.vcpus * profile.comm_bytes_per_vcpu * cross
                )
            else:
                ic_demands.append(0.0)

        results: List[float] = []
        for index, ((profile, placement), counts, misses) in enumerate(
            zip(assignments, per_container_nodes, miss_fractions)
        ):
            weights = np.array([counts[node] for node in counts], dtype=float)
            weights /= weights.sum()
            nodes = list(counts)

            # CPU time-sharing on oversubscribed nodes.
            cpu = float(
                np.dot(
                    weights,
                    [
                        min(1.0, machine.threads_per_node / threads_on_node[n])
                        for n in nodes
                    ],
                )
            )

            # Effective SMT sharing: own pinning or neighbour pressure,
            # whichever is denser.
            smt_values = []
            for node in nodes:
                pressure = threads_on_node[node] / machine.l2_groups_per_node
                eff_share = max(
                    placement.l2_share,
                    min(machine.threads_per_l2, pressure),
                )
                smt_values.append(
                    effects.smt_factor(
                        eff_share,
                        machine.threads_per_l2,
                        cal.smt_efficiency,
                        profile.smt_affinity,
                    )
                )
            smt = float(np.dot(weights, smt_values)) * effects.l2_capacity_factor(
                profile.working_set_mb / placement.vcpus,
                placement.l2_share,
                machine.l2_size_kb / 1024.0,
                cal.l2_pressure_mb,
            )

            cache = effects.cache_factor(profile.cache_sensitivity, misses)

            membw = float(
                np.dot(
                    weights,
                    [
                        effects.saturation_factor(
                            dram_demand_on_node[n],
                            machine.dram_bandwidth_mbps,
                            cal.saturation_sharpness,
                        )
                        for n in nodes
                    ],
                )
            )

            if placement.n_nodes > 1:
                # A neighbour's traffic competes for this container's links
                # in proportion to how much of the neighbour lives on the
                # same nodes.
                own_nodes = set(placement.nodes)
                ic_demand = 0.0
                for other_index, (
                    (_other_profile, other_placement),
                    other_demand,
                ) in enumerate(zip(assignments, ic_demands)):
                    if other_index == index:
                        ic_demand += other_demand
                        continue
                    overlap = len(own_nodes & set(other_placement.nodes))
                    ic_demand += other_demand * overlap / other_placement.n_nodes
                ic_supply = machine.interconnect.aggregate_bandwidth(
                    placement.nodes
                )
                interconnect = effects.saturation_factor(
                    ic_demand, ic_supply, cal.saturation_sharpness
                )
            else:
                interconnect = 1.0

            comm = effects.comm_latency_factor(
                profile.comm_intensity,
                profile.comm_latency_sensitivity,
                machine.interconnect.mean_pairwise_latency_ns(placement.nodes),
                machine.interconnect.local_latency_ns,
            )

            value = (
                profile.ipc_base
                * placement.vcpus
                * cpu
                * smt
                * cache
                * membw
                * interconnect
                * comm
            )
            if noise and profile.phase_noise > 0:
                value *= self._noise_multiplier(
                    profile, placement, 10.0, repetition, extra=index
                )
            results.append(value)
        return results

    # ------------------------------------------------------------------

    def _noise_multiplier(
        self,
        profile: WorkloadProfile,
        placement: Placement,
        duration_s: float,
        repetition: int,
        *,
        extra: int = 0,
    ) -> float:
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        rng = np.random.default_rng(
            _stable_seed(
                self.seed,
                self.machine.name,
                profile.name,
                placement.nodes,
                placement.l2_share,
                repetition,
                extra,
            )
        )
        sigma = profile.phase_noise / np.sqrt(max(duration_s, 1e-9) / 10.0)
        return float(np.exp(rng.normal(0.0, sigma)))

    def _check_placement(self, placement: Placement) -> None:
        if placement.machine.name != self.machine.name:
            raise ValueError(
                f"placement targets {placement.machine.name}, simulator "
                f"models {self.machine.name}"
            )
