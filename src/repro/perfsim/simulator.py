"""The placement performance simulator.

Composes the effect models of :mod:`repro.perfsim.effects` into a
throughput figure for (workload, placement) pairs, supports co-located
containers sharing nodes (needed by the Aggressive policies of Section 7),
and produces deterministic, seedable measurement noise so that "running" a
container twice gives realistically different numbers.

Conventions
-----------
* Throughput is in application operations per second (the profile's
  ``metric_name``); only ratios between placements matter.
* Relative performance vectors are ``perf[i] / perf[baseline]`` — higher is
  better.  (The paper's prose example normalizes the other way around; the
  figures use this orientation.)
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.placements import Placement
from repro.perfsim.calibration import MachineCalibration, calibration_for
from repro.perfsim import effects
from repro.perfsim.workload import WorkloadProfile
from repro.topology.machine import MachineTopology


@dataclass(frozen=True)
class ContainerRun:
    """Result of one simulated run."""

    profile: WorkloadProfile
    placement: Placement
    throughput: float
    factors: Dict[str, float]


def _stable_seed(*parts) -> int:
    text = "|".join(str(p) for p in parts)
    return zlib.crc32(text.encode("utf-8"))


class _PlacementArrays:
    """Per-placement attribute arrays for one placement list.

    The batched kernels evaluate whole (workload x placement) grids in
    single numpy passes; everything that depends only on the placements —
    node counts, interconnect supplies, mean latencies — is extracted once
    here and reused across calls (the placement lists of a shape are
    long-lived :class:`~repro.core.enumeration.ImportantPlacementSet`
    objects, so the simulator memoizes these arrays keyed by the tuple of
    placements).
    """

    __slots__ = (
        "n_nodes",
        "vcpus",
        "l2_share",
        "l3_score",
        "ic_supply",
        "mean_latency",
    )

    def __init__(
        self, machine: MachineTopology, placements: Sequence[Placement]
    ) -> None:
        self.n_nodes = np.array([p.n_nodes for p in placements], dtype=float)
        self.vcpus = np.array([p.vcpus for p in placements], dtype=float)
        self.l2_share = np.array([p.l2_share for p in placements])
        self.l3_score = np.array([p.l3_score for p in placements], dtype=float)
        # Supply is only read where n_nodes > 1 (single-node demand is
        # exactly zero there); the placeholder keeps the masked division
        # warning-free.
        self.ic_supply = np.array(
            [
                machine.interconnect.aggregate_bandwidth(p.nodes)
                if p.n_nodes > 1
                else 1.0
                for p in placements
            ]
        )
        self.mean_latency = np.array(
            [
                machine.interconnect.mean_pairwise_latency_ns(p.nodes)
                for p in placements
            ]
        )


class PerformanceSimulator:
    """Simulates workload throughput in placements on one machine.

    Parameters
    ----------
    machine:
        Target machine model.
    calibration:
        Dynamic-behaviour constants; defaults to the machine's preset
        calibration.
    seed:
        Base seed for measurement noise.  All randomness is derived
        deterministically from (seed, workload, placement, repetition).
    """

    def __init__(
        self,
        machine: MachineTopology,
        *,
        calibration: MachineCalibration | None = None,
        seed: int = 0,
    ) -> None:
        self.machine = machine
        self.calibration = (
            calibration if calibration is not None else calibration_for(machine)
        )
        self.seed = seed
        #: tuple(placements) -> _PlacementArrays, for the batched kernels.
        self._placement_arrays_cache: Dict[Tuple, _PlacementArrays] = {}

    # ------------------------------------------------------------------
    # Single-container model
    # ------------------------------------------------------------------

    def breakdown(
        self, profile: WorkloadProfile, placement: Placement
    ) -> Dict[str, float]:
        """Noise-free per-effect multipliers for one placement."""
        self._check_placement(placement)
        machine = self.machine
        cal = self.calibration
        n_nodes = placement.n_nodes
        vcpus = placement.vcpus

        smt = effects.smt_factor(
            placement.l2_share,
            machine.threads_per_l2,
            cal.smt_efficiency,
            profile.smt_affinity,
        ) * effects.l2_capacity_factor(
            profile.working_set_mb / vcpus,
            placement.l2_share,
            machine.l2_size_kb / 1024.0,
            cal.l2_pressure_mb,
        )

        ws_per_l3 = effects.effective_working_set_per_l3(
            profile.working_set_mb, profile.shared_fraction, placement.l3_score
        )
        misses = effects.miss_fraction(ws_per_l3, machine.l3_size_mb)
        cache = effects.cache_factor(profile.cache_sensitivity, misses)

        dram_demand = vcpus * profile.membw_per_vcpu * misses
        dram_supply = n_nodes * machine.dram_bandwidth_mbps
        membw = effects.saturation_factor(
            dram_demand, dram_supply, cal.saturation_sharpness
        )

        if n_nodes > 1:
            cross_fraction = (n_nodes - 1) / n_nodes
            ic_demand = (
                dram_demand * (1.0 - profile.numa_locality) * cross_fraction
                + vcpus * profile.comm_bytes_per_vcpu * cross_fraction
            )
            ic_supply = machine.interconnect.aggregate_bandwidth(placement.nodes)
            interconnect = effects.saturation_factor(
                ic_demand, ic_supply, cal.saturation_sharpness
            )
        else:
            interconnect = 1.0

        mean_latency = machine.interconnect.mean_pairwise_latency_ns(
            placement.nodes
        )
        comm = effects.comm_latency_factor(
            profile.comm_intensity,
            profile.comm_latency_sensitivity,
            mean_latency,
            machine.interconnect.local_latency_ns,
        )

        return {
            "smt": smt,
            "cache": cache,
            "membw": membw,
            "interconnect": interconnect,
            "comm_latency": comm,
        }

    # ------------------------------------------------------------------
    # Batched kernels: whole (workload x placement) grids per numpy pass
    # ------------------------------------------------------------------

    def _placement_arrays(
        self, placements: Sequence[Placement]
    ) -> _PlacementArrays:
        key = tuple(placements)
        arrays = self._placement_arrays_cache.get(key)
        if arrays is None:
            for placement in placements:
                self._check_placement(placement)
            if len(self._placement_arrays_cache) >= 16:
                self._placement_arrays_cache.clear()
            arrays = _PlacementArrays(self.machine, placements)
            self._placement_arrays_cache[key] = arrays
        return arrays

    @staticmethod
    def _profile_column(
        profiles: Sequence[WorkloadProfile], attribute: str
    ) -> np.ndarray:
        """One profile attribute as an ``(n, 1)`` column, ready to
        broadcast against per-placement rows."""
        return np.array(
            [getattr(profile, attribute) for profile in profiles],
            dtype=float,
        )[:, None]

    def breakdown_batch(
        self,
        profiles: Sequence[WorkloadProfile],
        placements: Sequence[Placement],
    ) -> Dict[str, np.ndarray]:
        """Noise-free per-effect multipliers for every (workload,
        placement) pair, each factor an ``(n_profiles, n_placements)``
        array computed in one numpy pass.

        Bit-for-bit identical to calling :meth:`breakdown` per cell: the
        array expressions repeat the scalar arithmetic
        operation-for-operation (see the vectorized variants in
        :mod:`repro.perfsim.effects`), they just do it for the whole grid
        at once.  This is the kernel every training-set build and retrain
        pays, ``n_workloads x n_placements`` times.
        """
        if not placements:
            raise ValueError("placements must not be empty")
        if not profiles:
            raise ValueError("profiles must not be empty")
        machine = self.machine
        cal = self.calibration
        arrays = self._placement_arrays(placements)
        l2_share = arrays.l2_share[None, :]
        vcpus = arrays.vcpus[None, :]
        n_nodes = arrays.n_nodes[None, :]

        working_set = self._profile_column(profiles, "working_set_mb")
        smt = effects.smt_factor_array(
            l2_share,
            machine.threads_per_l2,
            cal.smt_efficiency,
            self._profile_column(profiles, "smt_affinity"),
        ) * effects.l2_capacity_factor_array(
            working_set / vcpus,
            l2_share,
            machine.l2_size_kb / 1024.0,
            cal.l2_pressure_mb,
        )

        ws_per_l3 = effects.effective_working_set_per_l3_array(
            working_set,
            self._profile_column(profiles, "shared_fraction"),
            arrays.l3_score[None, :],
        )
        misses = effects.miss_fraction_array(ws_per_l3, machine.l3_size_mb)
        cache = effects.cache_factor_array(
            self._profile_column(profiles, "cache_sensitivity"), misses
        )

        dram_demand = (
            vcpus * self._profile_column(profiles, "membw_per_vcpu") * misses
        )
        dram_supply = n_nodes * machine.dram_bandwidth_mbps
        membw = effects.saturation_factor_array(
            dram_demand, dram_supply, cal.saturation_sharpness
        )

        # Single-node placements have cross_fraction exactly 0, hence
        # demand exactly 0, hence factor exactly 1.0 — the scalar path's
        # n_nodes == 1 branch falls out of the mask-free arithmetic.
        cross_fraction = (n_nodes - 1.0) / n_nodes
        ic_demand = (
            dram_demand
            * (1.0 - self._profile_column(profiles, "numa_locality"))
            * cross_fraction
            + vcpus
            * self._profile_column(profiles, "comm_bytes_per_vcpu")
            * cross_fraction
        )
        interconnect = effects.saturation_factor_array(
            ic_demand, arrays.ic_supply[None, :], cal.saturation_sharpness
        )

        comm = effects.comm_latency_factor_array(
            self._profile_column(profiles, "comm_intensity"),
            self._profile_column(profiles, "comm_latency_sensitivity"),
            arrays.mean_latency[None, :],
            machine.interconnect.local_latency_ns,
        )

        return {
            "smt": smt,
            "cache": cache,
            "membw": membw,
            "interconnect": interconnect,
            "comm_latency": comm,
        }

    def _apply_noise_grid(
        self,
        values: np.ndarray,
        profiles: Sequence[WorkloadProfile],
        placements: Sequence[Placement],
        duration_s: float,
        repetition: int,
        extra: int,
    ) -> None:
        """Multiply each grid cell by its scalar noise draw, in place.

        Noise stays a per-cell draw by construction: every (workload,
        placement, repetition) key seeds its own generator, which is what
        makes simulated measurements reproducible independent of batch
        shape — and exactly why the deterministic part is worth batching.
        """
        for row, profile in enumerate(profiles):
            if profile.phase_noise <= 0:
                continue
            for col, placement in enumerate(placements):
                values[row, col] *= self._noise_multiplier(
                    profile, placement, duration_s, repetition, extra=extra
                )

    def throughput_batch(
        self,
        profiles: Sequence[WorkloadProfile],
        placements: Sequence[Placement],
        *,
        noise: bool = True,
        duration_s: float = 10.0,
        repetition: int = 0,
    ) -> np.ndarray:
        """Application-metric throughput for a whole (workload, placement)
        grid — one :meth:`breakdown_batch` pass, bit-for-bit identical to
        per-cell :meth:`throughput` calls."""
        factors = self.breakdown_batch(profiles, placements)
        values = (
            self._profile_column(profiles, "ipc_base")
            * self._placement_arrays(placements).vcpus[None, :]
        )
        for name in ("smt", "cache", "membw", "interconnect", "comm_latency"):
            values = values * factors[name]
        if noise:
            self._apply_noise_grid(
                values, profiles, placements, duration_s, repetition, extra=0
            )
        return values

    def measured_ipc_batch(
        self,
        profiles: Sequence[WorkloadProfile],
        placements: Sequence[Placement],
        *,
        noise: bool = True,
        duration_s: float = 10.0,
        repetition: int = 0,
    ) -> np.ndarray:
        """Measured IPC for a whole (workload, placement) grid — the
        training-set kernel (:func:`repro.core.training.build_training_set`
        and every retrain's :func:`~repro.core.training.extend_training_set`
        run on this), bit-for-bit identical to per-cell
        :meth:`measured_ipc` calls."""
        factors = self.breakdown_batch(profiles, placements)
        values = np.array(
            [self.base_ipc(profile) for profile in profiles], dtype=float
        )[:, None] * factors["smt"]
        for name in ("cache", "membw", "interconnect", "comm_latency"):
            values = values * factors[name]
        if noise:
            self._apply_noise_grid(
                values,
                profiles,
                placements,
                duration_s,
                repetition,
                extra=1_000_003,
            )
        return values

    def throughput(
        self,
        profile: WorkloadProfile,
        placement: Placement,
        *,
        noise: bool = True,
        duration_s: float = 10.0,
        repetition: int = 0,
    ) -> float:
        """Throughput of the container in a placement.

        ``duration_s`` models how long the measurement ran: short probes
        (the scheduler's "couple of seconds" observations) are noisier than
        long steady-state runs.
        """
        factors = self.breakdown(profile, placement)
        value = profile.ipc_base * placement.vcpus
        for factor in factors.values():
            value *= factor
        if noise and profile.phase_noise > 0:
            value *= self._noise_multiplier(profile, placement, duration_s, repetition)
        return value

    def run(
        self,
        profile: WorkloadProfile,
        placement: Placement,
        *,
        noise: bool = True,
        duration_s: float = 10.0,
        repetition: int = 0,
    ) -> ContainerRun:
        """Like :meth:`throughput`, but returns the factor breakdown too."""
        factors = self.breakdown(profile, placement)
        value = profile.ipc_base * placement.vcpus
        for factor in factors.values():
            value *= factor
        if noise and profile.phase_noise > 0:
            value *= self._noise_multiplier(profile, placement, duration_s, repetition)
        return ContainerRun(profile, placement, value, factors)

    def base_ipc(self, profile: WorkloadProfile) -> float:
        """The workload's instructions-per-cycle in ideal conditions.

        Real applications' IPC correlates with how memory-bound they are;
        that correlation is what makes absolute IPC observations informative
        to the model across workloads (Section 5 uses IPC as the generic
        online metric).  A stable per-workload residual models everything
        else (instruction mix, branchiness).
        """
        memory_pressure = min(1.0, profile.membw_per_vcpu / 2000.0)
        residual = 0.85 + 0.3 * (
            zlib.crc32(f"{profile.name}:ipc".encode()) % 1000
        ) / 1000.0
        return (
            2.4
            * (1.0 - 0.45 * memory_pressure)
            * (1.0 - 0.25 * profile.cache_sensitivity)
            * residual
        )

    def measured_ipc(
        self,
        profile: WorkloadProfile,
        placement: Placement,
        *,
        noise: bool = True,
        duration_s: float = 10.0,
        repetition: int = 0,
    ) -> float:
        """The online performance metric the scheduler observes: achieved
        instructions per cycle.  Unlike :meth:`throughput` (application
        units, arbitrary scale per workload), IPC is comparable across
        workloads, which is what model training needs."""
        factors = self.breakdown(profile, placement)
        value = self.base_ipc(profile)
        for factor in factors.values():
            value *= factor
        if noise and profile.phase_noise > 0:
            value *= self._noise_multiplier(
                profile, placement, duration_s, repetition, extra=1_000_003
            )
        return value

    def measured_ipc_noise(
        self,
        profile: WorkloadProfile,
        placement: Placement,
        *,
        duration_s: float = 10.0,
        repetition: int = 0,
    ) -> float:
        """The multiplicative noise term of :meth:`measured_ipc` alone.

        ``measured_ipc(noise=True)`` equals ``measured_ipc(noise=False) *
        measured_ipc_noise(...)`` bit-for-bit (same factor, multiplied in
        the same order), which lets callers memoize the deterministic part
        and re-draw only the noise per repetition.
        """
        if profile.phase_noise <= 0:
            return 1.0
        return self._noise_multiplier(
            profile, placement, duration_s, repetition, extra=1_000_003
        )

    def performance_vector(
        self,
        profile: WorkloadProfile,
        placements: Sequence[Placement],
        *,
        baseline_index: int = 0,
        noise: bool = False,
        repetition: int = 0,
    ) -> np.ndarray:
        """Relative performance across a placement list (the model's target
        quantity): ``perf[i] / perf[baseline]``."""
        if not placements:
            raise ValueError("placements must not be empty")
        if not 0 <= baseline_index < len(placements):
            raise ValueError(
                f"baseline_index {baseline_index} out of range for "
                f"{len(placements)} placements"
            )
        values = self.throughput_batch(
            [profile], placements, noise=noise, repetition=repetition
        )[0]
        baseline = values[baseline_index]
        if baseline <= 0:
            raise ValueError("baseline throughput is non-positive")
        return values / baseline

    def performance_vector_batch(
        self,
        profiles: Sequence[WorkloadProfile],
        placements: Sequence[Placement],
        *,
        baseline_index: int = 0,
        noise: bool = False,
        repetition: int = 0,
    ) -> np.ndarray:
        """Relative-performance vectors for many workloads at once: one
        ``(n_profiles, n_placements)`` grid in one numpy pass, each row
        bit-for-bit equal to the corresponding :meth:`performance_vector`
        call."""
        if not placements:
            raise ValueError("placements must not be empty")
        if not 0 <= baseline_index < len(placements):
            raise ValueError(
                f"baseline_index {baseline_index} out of range for "
                f"{len(placements)} placements"
            )
        values = self.throughput_batch(
            profiles, placements, noise=noise, repetition=repetition
        )
        baselines = values[:, baseline_index : baseline_index + 1]
        if np.any(baselines <= 0):
            raise ValueError("baseline throughput is non-positive")
        return values / baselines

    # ------------------------------------------------------------------
    # Co-located containers (Aggressive policies, Section 7)
    # ------------------------------------------------------------------

    def simulate_colocated(
        self,
        assignments: Sequence[Tuple[WorkloadProfile, Placement]],
        *,
        noise: bool = True,
        repetition: int = 0,
    ) -> List[float]:
        """Throughput of containers that may share NUMA nodes.

        The solo path is the special case of a single assignment; with
        sharing, containers split L3 capacity in proportion to their thread
        counts, add their DRAM and interconnect demands, time-share
        oversubscribed cores, and suffer effective SMT sharing from
        neighbours' threads.
        """
        if not assignments:
            raise ValueError("assignments must not be empty")
        machine = self.machine
        cal = self.calibration
        for _, placement in assignments:
            self._check_placement(placement)

        # Per-node thread pressure across all containers.
        threads_on_node: Dict[int, float] = {}
        per_container_nodes: List[Dict[int, int]] = []
        for _, placement in assignments:
            counts: Dict[int, int] = {}
            for thread in placement.threads:
                node = machine.node_of_thread(thread)
                counts[node] = counts.get(node, 0) + 1
            per_container_nodes.append(counts)
            for node, count in counts.items():
                threads_on_node[node] = threads_on_node.get(node, 0) + count

        # First pass: per-container miss fractions under shared caches.
        miss_fractions: List[float] = []
        for (profile, placement), counts in zip(assignments, per_container_nodes):
            share = np.mean(
                [counts[node] / threads_on_node[node] for node in counts]
            )
            ws_per_l3 = effects.effective_working_set_per_l3(
                profile.working_set_mb,
                profile.shared_fraction,
                placement.l3_score,
            )
            misses = effects.miss_fraction(
                ws_per_l3, machine.l3_size_mb * float(share)
            )
            miss_fractions.append(misses)

        # Aggregate DRAM demand per node, and each container's own
        # interconnect demand (shared later in proportion to node overlap).
        dram_demand_on_node: Dict[int, float] = {n: 0.0 for n in threads_on_node}
        ic_demands: List[float] = []
        for (profile, placement), counts, misses in zip(
            assignments, per_container_nodes, miss_fractions
        ):
            demand = placement.vcpus * profile.membw_per_vcpu * misses
            for node, count in counts.items():
                dram_demand_on_node[node] += demand * count / placement.vcpus
            n_nodes = placement.n_nodes
            if n_nodes > 1:
                cross = (n_nodes - 1) / n_nodes
                ic_demands.append(
                    demand * (1.0 - profile.numa_locality) * cross
                    + placement.vcpus * profile.comm_bytes_per_vcpu * cross
                )
            else:
                ic_demands.append(0.0)

        results: List[float] = []
        for index, ((profile, placement), counts, misses) in enumerate(
            zip(assignments, per_container_nodes, miss_fractions)
        ):
            weights = np.array([counts[node] for node in counts], dtype=float)
            weights /= weights.sum()
            nodes = list(counts)

            # CPU time-sharing on oversubscribed nodes.
            cpu = float(
                np.dot(
                    weights,
                    [
                        min(1.0, machine.threads_per_node / threads_on_node[n])
                        for n in nodes
                    ],
                )
            )

            # Effective SMT sharing: own pinning or neighbour pressure,
            # whichever is denser.
            smt_values = []
            for node in nodes:
                pressure = threads_on_node[node] / machine.l2_groups_per_node
                eff_share = max(
                    placement.l2_share,
                    min(machine.threads_per_l2, pressure),
                )
                smt_values.append(
                    effects.smt_factor(
                        eff_share,
                        machine.threads_per_l2,
                        cal.smt_efficiency,
                        profile.smt_affinity,
                    )
                )
            smt = float(np.dot(weights, smt_values)) * effects.l2_capacity_factor(
                profile.working_set_mb / placement.vcpus,
                placement.l2_share,
                machine.l2_size_kb / 1024.0,
                cal.l2_pressure_mb,
            )

            cache = effects.cache_factor(profile.cache_sensitivity, misses)

            membw = float(
                np.dot(
                    weights,
                    [
                        effects.saturation_factor(
                            dram_demand_on_node[n],
                            machine.dram_bandwidth_mbps,
                            cal.saturation_sharpness,
                        )
                        for n in nodes
                    ],
                )
            )

            if placement.n_nodes > 1:
                # A neighbour's traffic competes for this container's links
                # in proportion to how much of the neighbour lives on the
                # same nodes.
                own_nodes = set(placement.nodes)
                ic_demand = 0.0
                for other_index, (
                    (_other_profile, other_placement),
                    other_demand,
                ) in enumerate(zip(assignments, ic_demands)):
                    if other_index == index:
                        ic_demand += other_demand
                        continue
                    overlap = len(own_nodes & set(other_placement.nodes))
                    ic_demand += other_demand * overlap / other_placement.n_nodes
                ic_supply = machine.interconnect.aggregate_bandwidth(
                    placement.nodes
                )
                interconnect = effects.saturation_factor(
                    ic_demand, ic_supply, cal.saturation_sharpness
                )
            else:
                interconnect = 1.0

            comm = effects.comm_latency_factor(
                profile.comm_intensity,
                profile.comm_latency_sensitivity,
                machine.interconnect.mean_pairwise_latency_ns(placement.nodes),
                machine.interconnect.local_latency_ns,
            )

            value = (
                profile.ipc_base
                * placement.vcpus
                * cpu
                * smt
                * cache
                * membw
                * interconnect
                * comm
            )
            if noise and profile.phase_noise > 0:
                value *= self._noise_multiplier(
                    profile, placement, 10.0, repetition, extra=index
                )
            results.append(value)
        return results

    def simulate_colocated_batch(
        self,
        assignments: Sequence[Tuple[WorkloadProfile, Placement]],
        *,
        noise: bool = True,
        repetition: int = 0,
    ) -> List[float]:
        """Batched :meth:`simulate_colocated`: same contract, same floats.

        The scalar path walks Python loops of effect-model calls per
        container and per node; here the (container, node) pair structure
        is flattened once and every elementwise factor — CPU time-sharing,
        SMT pressure, cache shares, per-node DRAM saturation — is computed
        for all pairs in one numpy pass.  The per-container reductions
        (the ``np.dot`` weightings and the neighbour interconnect
        accumulation) deliberately run over the same values in the same
        order as the scalar loop, so results are bit-for-bit identical
        (asserted in ``tests/perfsim/test_simulator_batch.py``).
        """
        if not assignments:
            raise ValueError("assignments must not be empty")
        machine = self.machine
        cal = self.calibration
        for _, placement in assignments:
            self._check_placement(placement)

        n = len(assignments)
        # Flatten (container, node) pairs in scalar iteration order.
        pair_container: List[int] = []
        pair_node: List[int] = []
        pair_count: List[int] = []
        per_container_nodes: List[Dict[int, int]] = []
        threads_on_node: Dict[int, float] = {}
        for index, (_, placement) in enumerate(assignments):
            counts: Dict[int, int] = {}
            for thread in placement.threads:
                node = machine.node_of_thread(thread)
                counts[node] = counts.get(node, 0) + 1
            per_container_nodes.append(counts)
            for node, count in counts.items():
                threads_on_node[node] = threads_on_node.get(node, 0) + count
                pair_container.append(index)
                pair_node.append(node)
                pair_count.append(count)
        container_of_pair = np.asarray(pair_container, dtype=np.intp)
        counts_arr = np.asarray(pair_count, dtype=float)
        ton = np.array(
            [threads_on_node[node] for node in pair_node], dtype=float
        )
        node_index = {node: k for k, node in enumerate(threads_on_node)}
        node_of_pair = np.array(
            [node_index[node] for node in pair_node], dtype=np.intp
        )
        bounds = np.concatenate(
            ([0], np.cumsum([len(c) for c in per_container_nodes]))
        )

        # Per-container profile/placement columns.
        profiles = [profile for profile, _ in assignments]
        working_set = np.array([p.working_set_mb for p in profiles])
        vcpus = np.array([p.vcpus for _, p in assignments], dtype=float)
        l2_share = np.array([p.l2_share for _, p in assignments])
        n_nodes = np.array([p.n_nodes for _, p in assignments], dtype=float)
        l3_score = np.array([p.l3_score for _, p in assignments], dtype=float)

        # Cache shares and miss fractions: one pass over all pairs.
        ratio = counts_arr / ton
        share = np.array(
            [
                np.mean(ratio[start:end])
                for start, end in zip(bounds[:-1], bounds[1:])
            ]
        )
        ws_per_l3 = effects.effective_working_set_per_l3_array(
            working_set,
            np.array([p.shared_fraction for p in profiles]),
            l3_score,
        )
        misses = effects.miss_fraction_array(
            ws_per_l3, machine.l3_size_mb * share
        )

        # Per-node DRAM demand, accumulated in scalar order (np.add.at
        # adds element-by-element in pair order — the scalar loop's order).
        demand = (
            vcpus * np.array([p.membw_per_vcpu for p in profiles]) * misses
        )
        dram_on_node = np.zeros(len(node_index))
        np.add.at(
            dram_on_node,
            node_of_pair,
            demand[container_of_pair] * counts_arr / vcpus[container_of_pair],
        )

        # Per-container interconnect demand (zero for single-node).
        cross = np.where(n_nodes > 1, (n_nodes - 1.0) / n_nodes, 0.0)
        ic_demands = (
            demand
            * (1.0 - np.array([p.numa_locality for p in profiles]))
            * cross
            + vcpus * np.array([p.comm_bytes_per_vcpu for p in profiles]) * cross
        )

        # Per-pair factor values, one numpy pass each.
        cpu_vals = np.minimum(1.0, machine.threads_per_node / ton)
        pressure = ton / machine.l2_groups_per_node
        eff_share = np.maximum(
            l2_share[container_of_pair],
            np.minimum(machine.threads_per_l2, pressure),
        )
        smt_vals = effects.smt_factor_array(
            eff_share,
            machine.threads_per_l2,
            cal.smt_efficiency,
            np.array([p.smt_affinity for p in profiles])[container_of_pair],
        )
        membw_vals = effects.saturation_factor_array(
            dram_on_node[node_of_pair],
            machine.dram_bandwidth_mbps,
            cal.saturation_sharpness,
        )

        # Per-container factors.
        l2cap = effects.l2_capacity_factor_array(
            working_set / vcpus,
            l2_share,
            machine.l2_size_kb / 1024.0,
            cal.l2_pressure_mb,
        )
        cache = effects.cache_factor_array(
            np.array([p.cache_sensitivity for p in profiles]), misses
        )
        comm = effects.comm_latency_factor_array(
            np.array([p.comm_intensity for p in profiles]),
            np.array([p.comm_latency_sensitivity for p in profiles]),
            np.array(
                [
                    machine.interconnect.mean_pairwise_latency_ns(p.nodes)
                    for _, p in assignments
                ]
            ),
            machine.interconnect.local_latency_ns,
        )
        ic_supply = [
            machine.interconnect.aggregate_bandwidth(p.nodes)
            if p.n_nodes > 1
            else 0.0
            for _, p in assignments
        ]
        overlap = np.zeros((n, len(node_index)), dtype=np.intp)
        overlap[container_of_pair, node_of_pair] = 1
        overlap = overlap @ overlap.T  # exact node-overlap counts
        n_nodes_int = [p.n_nodes for _, p in assignments]

        results: List[float] = []
        for index, (profile, placement) in enumerate(assignments):
            start, end = bounds[index], bounds[index + 1]
            weights = counts_arr[start:end] / counts_arr[start:end].sum()
            cpu = float(np.dot(weights, cpu_vals[start:end]))
            smt = float(np.dot(weights, smt_vals[start:end])) * l2cap[index]
            membw = float(np.dot(weights, membw_vals[start:end]))
            if placement.n_nodes > 1:
                # The neighbour accumulation stays a loop in scalar order;
                # its inputs (overlap counts) are precomputed above.
                ic_demand = 0.0
                for other in range(n):
                    if other == index:
                        ic_demand += ic_demands[other]
                    else:
                        ic_demand += (
                            ic_demands[other]
                            * overlap[index, other]
                            / n_nodes_int[other]
                        )
                interconnect = effects.saturation_factor(
                    float(ic_demand), ic_supply[index], cal.saturation_sharpness
                )
            else:
                interconnect = 1.0
            value = (
                profile.ipc_base
                * placement.vcpus
                * cpu
                * smt
                * cache[index]
                * membw
                * interconnect
                * comm[index]
            )
            if noise and profile.phase_noise > 0:
                value *= self._noise_multiplier(
                    profile, placement, 10.0, repetition, extra=index
                )
            results.append(float(value))
        return results

    # ------------------------------------------------------------------

    def _noise_multiplier(
        self,
        profile: WorkloadProfile,
        placement: Placement,
        duration_s: float,
        repetition: int,
        *,
        extra: int = 0,
    ) -> float:
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        rng = np.random.default_rng(
            _stable_seed(
                self.seed,
                self.machine.name,
                profile.name,
                placement.nodes,
                placement.l2_share,
                repetition,
                extra,
            )
        )
        sigma = profile.phase_noise / np.sqrt(max(duration_s, 1e-9) / 10.0)
        return float(np.exp(rng.normal(0.0, sigma)))

    def _check_placement(self, placement: Placement) -> None:
        if placement.machine.name != self.machine.name:
            raise ValueError(
                f"placement targets {placement.machine.name}, simulator "
                f"models {self.machine.name}"
            )
