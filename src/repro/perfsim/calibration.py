"""Per-machine simulator calibration constants.

These are hardware characteristics that the topology model does not carry
because they describe dynamic behaviour rather than structure: how efficient
SMT/CMT sharing is, and how sharply bandwidth saturation bites.  They are
keyed by machine name so the presets get values consistent with what the
paper reports (AMD's CMT modules share the FP units and front-end and hurt
more; Intel's Hyper-Threading is comparatively benign).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.topology.machine import MachineTopology


@dataclass(frozen=True)
class MachineCalibration:
    """Dynamic-behaviour constants for one machine.

    smt_efficiency:
        Per-thread throughput when an L2 group is fully shared, relative to
        running alone (0.72 means two threads on a module each run at 72%).
    saturation_sharpness:
        Exponent of the smooth min() used for bandwidth saturation; higher
        values approximate a hard knee.
    l2_pressure_mb:
        Working-set-per-thread size (MB) at which sharing an L2 starts to
        add capacity misses on top of the pipeline penalty.
    """

    smt_efficiency: float = 0.80
    saturation_sharpness: float = 4.0
    l2_pressure_mb: float = 1.0

    def __post_init__(self) -> None:
        if not 0.1 <= self.smt_efficiency <= 1.5:
            raise ValueError("smt_efficiency out of plausible range")
        if self.saturation_sharpness <= 0:
            raise ValueError("saturation_sharpness must be positive")
        if self.l2_pressure_mb <= 0:
            raise ValueError("l2_pressure_mb must be positive")


#: Calibrations for the shipped presets.
_CALIBRATIONS: Dict[str, MachineCalibration] = {
    # Bulldozer CMT: shared front-end and FP units between the two cores of
    # a module — sharing costs real throughput.
    "amd-opteron-6272": MachineCalibration(
        smt_efficiency=0.74, saturation_sharpness=4.0, l2_pressure_mb=1.0
    ),
    # Haswell SMT: two hyperthreads fill each other's stalls; milder.
    "intel-xeon-e7-4830-v3": MachineCalibration(
        smt_efficiency=0.86, saturation_sharpness=4.0, l2_pressure_mb=0.125
    ),
    "amd-epyc-zen": MachineCalibration(
        smt_efficiency=0.88, saturation_sharpness=4.0, l2_pressure_mb=0.25
    ),
    "intel-haswell-cod": MachineCalibration(
        smt_efficiency=0.86, saturation_sharpness=4.0, l2_pressure_mb=0.125
    ),
}

_DEFAULT = MachineCalibration()


def calibration_for(machine: MachineTopology) -> MachineCalibration:
    """The calibration for a machine, by name; generic defaults otherwise."""
    return _CALIBRATIONS.get(machine.name, _DEFAULT)
