"""Trace-fed retraining: turn observed workloads into a candidate model.

The warm-start discipline keeps retraining cheap enough to run inside the
serving loop:

* **corpus growth is incremental and batched** — the key's retained
  :class:`~repro.core.training.TrainingSet` gains rows only for workloads
  observed in the trace window that the corpus has never seen, and
  :func:`~repro.core.training.extend_training_set` simulates all of those
  rows in one vectorized
  :meth:`~repro.perfsim.simulator.PerformanceSimulator.measured_ipc_batch`
  kernel call rather than a Python loop per (workload, placement) cell;
* **the forest is grown, not refitted** — the candidate inherits the
  incumbent's trees, grows a budgeted batch of fresh trees on the extended
  corpus, and prunes the oldest back to the tree budget
  (:meth:`~repro.core.model.PlacementModel.warm_refit`), so serving cost
  stays flat while repeated retrains cycle pre-drift trees out of the
  ensemble.

The retrainer only *builds* candidates; whether one ships is the holdout
gate's call (:mod:`repro.serving.online`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.training import extend_training_set
from repro.serving.server import ModelServer, ModelVersion
from repro.serving.traces import PlacementObservation
from repro.topology.machine import MachineTopology


@dataclass(frozen=True)
class RetrainConfig:
    """Budget knobs of one retraining round."""

    #: Most distinct newly observed workloads folded in per retrain
    #: (newest first) — bounds the simulator cost of a round.
    max_new_workloads: int = 24
    #: Trees grown on the extended corpus per retrain.
    n_grow: int = 16
    #: Ensemble size ceiling; None keeps the incumbent's size.
    tree_budget: int | None = None

    def __post_init__(self) -> None:
        if self.max_new_workloads < 1:
            raise ValueError("max_new_workloads must be >= 1")
        if self.n_grow < 1:
            raise ValueError("n_grow must be >= 1")
        if self.tree_budget is not None and self.tree_budget < 1:
            raise ValueError("tree_budget must be >= 1 or None")


class Retrainer:
    """Builds shadow candidates from a key's recent traces."""

    def __init__(
        self, server: ModelServer, config: RetrainConfig | None = None
    ) -> None:
        self.server = server
        self.config = config or RetrainConfig()
        #: Simulator runs spent extending corpora (cost accounting).
        self.simulated_rows = 0

    def retrain(
        self,
        machine: MachineTopology,
        vcpus: int,
        traces: Sequence[PlacementObservation],
        *,
        time: float,
    ) -> ModelVersion | None:
        """Extend the key's corpus with trace workloads and warm-refit.

        Returns the new shadow :class:`ModelVersion`, or None when the
        trace window contributes no workload the corpus lacks (retraining
        on identical data would produce an identical-in-expectation model
        and waste a shadow slot).
        """
        base = self.server.training_set(machine, vcpus)
        known = set(base.names)
        fresh: List = []
        for observation in reversed(list(traces)):  # newest first
            profile = observation.profile
            if profile.name in known:
                continue
            known.add(profile.name)
            fresh.append(profile)
            if len(fresh) >= self.config.max_new_workloads:
                break
        if not fresh:
            return None
        fresh.reverse()  # restore arrival order for reproducible matrices

        extended = extend_training_set(
            base, fresh, simulator=self.server.simulator(machine)
        )
        self.simulated_rows += len(extended) - len(base)
        incumbent = self.server.model(machine, vcpus)
        candidate_model = incumbent.warm_refit(
            extended,
            n_grow=self.config.n_grow,
            tree_budget=self.config.tree_budget,
        )
        # The extended corpus becomes the key's warm-start base even if
        # this candidate is later discarded: its rows are real measured
        # executions, and the next round should append to them rather than
        # re-simulate them.
        key = (machine.fingerprint(), int(vcpus))
        self.server._training_sets[key] = extended
        return self.server.add_candidate(
            machine,
            vcpus,
            candidate_model,
            time=time,
            n_training_rows=len(extended),
            n_new_workloads=len(fresh),
        )
