"""Online model lifecycle: trace-fed retraining and versioned serving.

The paper trains its model once from an offline corpus, but a running
fleet continuously produces exactly the data the model needs — two probe
measurements and a realized outcome per placement.  This package closes
that loop:

* :mod:`repro.serving.traces` — bounded, shape-partitioned collection of
  :class:`PlacementObservation` records (prediction vs realized outcome);
* :mod:`repro.serving.drift` — rolling-MAPE drift detection over the live
  error stream;
* :mod:`repro.serving.retrain` — warm-start corpus growth plus
  grow-and-prune forest refits that turn a trace window into a candidate
  model;
* :mod:`repro.serving.server` — the versioned :class:`ModelServer`
  (a drop-in :class:`~repro.scheduler.registry.ModelRegistry`): shadow
  candidates, paired holdout gates, atomic promotion with exact memo
  invalidation;
* :mod:`repro.serving.online` — :class:`OnlineLearner`, the loop driver
  the lifecycle scheduler calls per graded placement.

With no learner attached (or no candidate ever promoted) every decision
the fleet makes is bit-for-bit what the frozen pipeline decides — the
equivalence tests assert it.
"""

from repro.serving.drift import DriftConfig, DriftEvent, DriftMonitor
from repro.serving.online import (
    OnlineLearner,
    OnlineLearningConfig,
    OnlineStats,
)
from repro.serving.retrain import RetrainConfig, Retrainer
from repro.serving.server import (
    ModelServer,
    ModelVersion,
    PromotionRecord,
    VersionStatus,
)
from repro.serving.traces import PlacementObservation, TraceStore

__all__ = [
    "DriftConfig",
    "DriftEvent",
    "DriftMonitor",
    "ModelServer",
    "ModelVersion",
    "OnlineLearner",
    "OnlineLearningConfig",
    "OnlineStats",
    "PlacementObservation",
    "PromotionRecord",
    "RetrainConfig",
    "Retrainer",
    "TraceStore",
    "VersionStatus",
]
