"""The closed loop: trace -> drift -> retrain -> shadow -> promote.

:class:`OnlineLearner` is what the event-driven
:class:`~repro.scheduler.lifecycle.LifecycleScheduler` calls after grading
each placed ML decision.  One ``observe`` call does the whole lifecycle
step for that observation's ``(machine shape, vcpus)`` partition:

1. close the prediction loop into a
   :class:`~repro.serving.traces.PlacementObservation` (the probe IPCs are
   re-read through the registry's memo, so they are bit-for-bit the values
   the policy predicted from) and record it in the
   :class:`~repro.serving.traces.TraceStore`;
2. update the partition's rolling MAPE
   (:class:`~repro.serving.drift.DriftMonitor`);
3. if a shadow candidate is in flight, score it on this observation
   (prediction logged, never acted on) and run the holdout gate: promote
   when it beats the incumbent on enough paired observations, discard when
   it has had its chance and has not;
4. otherwise, if the partition is drifted and its retrain cooldown has
   passed, build a new candidate from the trace window
   (:class:`~repro.serving.retrain.Retrainer`).

Everything is deterministic in the event stream: no wall clock, no RNG —
replaying a stream replays every retrain and promotion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.serving.drift import DriftConfig, DriftMonitor
from repro.serving.retrain import RetrainConfig, Retrainer
from repro.serving.server import ModelServer, PromotionRecord
from repro.serving.traces import PlacementObservation, TraceStore
from repro.topology.machine import MachineTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.scheduler.scheduler import GradedDecision


@dataclass(frozen=True)
class OnlineLearningConfig:
    """Knobs of the whole serving loop."""

    #: Simulated probe length; must match the policy's
    #: ``probe_duration_s`` so re-read probes are the predictions' inputs.
    probe_duration_s: float = 3.0
    drift: DriftConfig = field(default_factory=DriftConfig)
    retrain: RetrainConfig = field(default_factory=RetrainConfig)
    #: Observations kept per trace-store partition.
    trace_capacity: int = 512
    #: Observations a partition must accumulate between retrains (lets a
    #: freshly promoted model show what it can do before being judged).
    retrain_cooldown: int = 32
    #: Paired shadow observations before the gate may promote.
    shadow_min_observations: int = 16
    #: Paired shadow observations after which a candidate that has not
    #: won is discarded (the slot frees up for a retrain on newer data).
    shadow_max_observations: int = 64

    def __post_init__(self) -> None:
        if self.probe_duration_s <= 0:
            raise ValueError("probe_duration_s must be positive")
        if self.trace_capacity < 1:
            raise ValueError("trace_capacity must be >= 1")
        if self.retrain_cooldown < 0:
            raise ValueError("retrain_cooldown must be >= 0")
        if not (
            1
            <= self.shadow_min_observations
            <= self.shadow_max_observations
        ):
            raise ValueError(
                "need 1 <= shadow_min_observations <= shadow_max_observations"
            )


@dataclass
class OnlineStats:
    """Serving-loop counters carried inside a FleetReport."""

    observations: int = 0
    drift_events: int = 0
    retrains: int = 0
    shadow_discards: int = 0
    promotions: List[PromotionRecord] = field(default_factory=list)
    #: (time, vcpus, rolling MAPE pct | None) per observation — the
    #: drift-recovery trajectory benchmarks plot.
    mape_timeline: List[Tuple[float, int, float | None]] = field(
        default_factory=list
    )

    @property
    def n_promotions(self) -> int:
        return len(self.promotions)

    def final_rolling_mape_pct(self, vcpus: int | None = None) -> float | None:
        """The last recorded rolling MAPE (optionally for one vCPU size)."""
        for time, size, mape in reversed(self.mape_timeline):
            if mape is None:
                continue
            if vcpus is None or size == vcpus:
                return mape
        return None

    def describe(self) -> str:
        lines = [
            f"  online learning: {self.observations} observations, "
            f"{self.drift_events} drift events, {self.retrains} retrains, "
            f"{self.n_promotions} promotions "
            f"({self.shadow_discards} shadow candidates discarded)"
        ]
        for record in self.promotions:
            lines.append(f"    {record.describe()}")
        final = self.final_rolling_mape_pct()
        if final is not None:
            lines.append(f"  final rolling MAPE: {final:.1f}%")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "observations": self.observations,
            "drift_events": self.drift_events,
            "retrains": self.retrains,
            "shadow_discards": self.shadow_discards,
            "promotions": [record.to_dict() for record in self.promotions],
            "mape_timeline": [
                [time, vcpus, mape] for time, vcpus, mape in self.mape_timeline
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "OnlineStats":
        return cls(
            observations=data["observations"],
            drift_events=data["drift_events"],
            retrains=data["retrains"],
            shadow_discards=data["shadow_discards"],
            promotions=[
                PromotionRecord.from_dict(record)
                for record in data["promotions"]
            ],
            mape_timeline=[
                (time, vcpus, mape)
                for time, vcpus, mape in data["mape_timeline"]
            ],
        )


class OnlineLearner:
    """Drives one :class:`ModelServer` from a fleet's graded decisions."""

    def __init__(
        self,
        server: ModelServer,
        config: OnlineLearningConfig | None = None,
    ) -> None:
        self.server = server
        self.config = config or OnlineLearningConfig()
        self.traces = TraceStore(
            capacity_per_partition=self.config.trace_capacity
        )
        self.monitor = DriftMonitor(self.config.drift)
        self.retrainer = Retrainer(server, self.config.retrain)
        self.stats = OnlineStats()
        #: Partition -> observations seen since its last retrain.
        self._since_retrain: Dict[Tuple, int] = {}

    # ------------------------------------------------------------------

    def observe(
        self,
        machine: MachineTopology,
        graded: "GradedDecision",
        time: float,
    ) -> PlacementObservation | None:
        """Fold one graded decision into the loop.

        Only model-driven placements close the loop (heuristic policies
        make no prediction to score); anything else returns None.
        """
        decision = graded.decision
        if (
            not decision.placed
            or decision.placement_id is None
            or decision.predicted_relative is None
            or graded.achieved_relative is None
        ):
            return None
        request = decision.request
        fingerprint = machine.fingerprint()
        partition = (fingerprint, request.vcpus)

        active = self.server.active_version(machine, request.vcpus)
        placements = self.server.placements(machine, request.vcpus)
        i, j = active.model.input_pair
        # Bit-for-bit the probes the policy predicted from: the same memo,
        # the same repetition keys.
        probe_i = self.server.probe_ipc(
            machine,
            request.profile,
            placements[i],
            duration_s=self.config.probe_duration_s,
            repetition=request.request_id,
        )
        probe_j = self.server.probe_ipc(
            machine,
            request.profile,
            placements[j],
            duration_s=self.config.probe_duration_s,
            repetition=request.request_id + 1,
        )
        observation = PlacementObservation(
            time=time,
            request_id=request.request_id,
            fingerprint=fingerprint,
            vcpus=request.vcpus,
            profile=request.profile,
            placement_id=decision.placement_id,
            probe_i=probe_i,
            probe_j=probe_j,
            predicted_relative=decision.predicted_relative,
            achieved_relative=graded.achieved_relative,
            model_version=active.version,
            block_exact=decision.block_exact,
        )
        self.traces.record(observation)
        self.stats.observations += 1
        self._since_retrain[partition] = (
            self._since_retrain.get(partition, self.config.retrain_cooldown)
            + 1
        )

        drifted = self.monitor.observe(observation)
        if drifted:
            self.stats.drift_events += 1

        candidate = self.server.shadow_candidate(machine, request.vcpus)
        if candidate is not None:
            self._score_shadow(machine, observation, candidate)
        elif drifted and (
            self._since_retrain[partition] > self.config.retrain_cooldown
        ):
            built = self.retrainer.retrain(
                machine,
                request.vcpus,
                self.traces.recent(fingerprint, request.vcpus),
                time=time,
            )
            if built is not None:
                self.stats.retrains += 1
                self._since_retrain[partition] = 0

        self.stats.mape_timeline.append(
            (
                time,
                request.vcpus,
                self.monitor.rolling_mape_pct(fingerprint, request.vcpus),
            )
        )
        return observation

    # ------------------------------------------------------------------

    def _score_shadow(
        self,
        machine: MachineTopology,
        observation: PlacementObservation,
        candidate,
    ) -> None:
        """Log the candidate's prediction for this observation and run the
        holdout gate."""
        shadow_vector = candidate.model.predict(
            observation.probe_i, observation.probe_j
        )
        shadow_predicted = float(
            shadow_vector[observation.placement_id - 1]
        )
        actual = observation.achieved_relative
        candidate.shadow_errors.append(
            abs(shadow_predicted - actual) / abs(actual)
        )
        candidate.incumbent_errors.append(observation.error_fraction)

        n = candidate.n_shadow_observations
        if n < self.config.shadow_min_observations:
            return
        if candidate.shadow_mape_pct < candidate.incumbent_mape_pct:
            self.server.promote(
                machine, observation.vcpus, time=observation.time
            )
            # The new model starts with a clean rolling window and a
            # fresh retrain cooldown — its MAPE must describe it, not
            # its predecessor, and it gets the configured grace period
            # before it can itself be judged drifted and replaced.
            self.monitor.reset(observation.fingerprint, observation.vcpus)
            self._since_retrain[
                (observation.fingerprint, observation.vcpus)
            ] = 0
            self.stats.promotions = self.server.promotions
        elif n >= self.config.shadow_max_observations:
            self.server.discard_candidate(
                machine, observation.vcpus, time=observation.time
            )
            self.stats.shadow_discards = self.server.discarded
