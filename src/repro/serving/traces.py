"""Trace collection: what the fleet observes about its own predictions.

The paper's model needs exactly two probe measurements per container plus
the realized performance — and a running fleet produces all three for free
on every placement it makes.  A :class:`PlacementObservation` is one such
record: the request, the placement the policy chose, the probe IPCs the
prediction consumed, the prediction itself, and the post-placement measured
performance the grader observed.  The :class:`TraceStore` keeps a bounded
window of them, partitioned per machine shape (each shape has its own
model chain, so drift detection and retraining read per-shape windows).

Nothing here decides anything; the store is the data plane the drift
monitor (:mod:`repro.serving.drift`) and retrainer
(:mod:`repro.serving.retrain`) consume.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, List, Tuple

from repro.perfsim.workload import WorkloadProfile


@dataclass(frozen=True)
class PlacementObservation:
    """One closed prediction loop: what was predicted, what happened.

    ``predicted_relative`` and ``achieved_relative`` are both relative to
    the model's baseline placement, so ``|pred - actual| / actual`` is the
    live counterpart of the paper's evaluation MAPE.
    """

    #: Simulated time of the placement (event time, not wall clock).
    time: float
    request_id: int
    #: Machine-shape fingerprint of the chosen host (the partition key).
    fingerprint: Tuple
    vcpus: int
    profile: WorkloadProfile
    #: 1-based important-placement id the policy chose.
    placement_id: int
    #: The two probe observations the prediction consumed.
    probe_i: float
    probe_j: float
    #: The live model's prediction for the chosen placement.
    predicted_relative: float
    #: Post-placement measured performance (the grader's number).
    achieved_relative: float
    #: Version id of the model that made the prediction.
    model_version: int
    #: Whether the realized block matched the chosen placement's score
    #: (a mismatched block makes some prediction error expected).
    block_exact: bool = True

    @property
    def workload_name(self) -> str:
        return self.profile.name

    @property
    def error_fraction(self) -> float:
        """Absolute relative prediction error of this observation."""
        return abs(self.predicted_relative - self.achieved_relative) / abs(
            self.achieved_relative
        )

    def describe(self) -> str:
        return (
            f"t={self.time:9.2f}s req#{self.request_id} "
            f"{self.workload_name} x{self.vcpus} -> placement "
            f"#{self.placement_id} predicted {self.predicted_relative:.3f} "
            f"achieved {self.achieved_relative:.3f} "
            f"(v{self.model_version}, err {self.error_fraction:.1%})"
        )


class TraceStore:
    """Bounded, shape-partitioned buffer of placement observations.

    Parameters
    ----------
    capacity_per_partition:
        Observations kept per ``(fingerprint, vcpus)`` partition; the
        oldest fall off (a drifted fleet must not retrain on pre-drift
        traces forever, and an unbounded store would grow with stream
        length).
    """

    def __init__(self, *, capacity_per_partition: int = 512) -> None:
        if capacity_per_partition < 1:
            raise ValueError("capacity_per_partition must be >= 1")
        self.capacity_per_partition = capacity_per_partition
        self._partitions: Dict[Tuple, Deque[PlacementObservation]] = {}
        self._recorded = 0
        self._evicted = 0

    @staticmethod
    def partition_key(observation: PlacementObservation) -> Tuple:
        return (observation.fingerprint, observation.vcpus)

    def record(self, observation: PlacementObservation) -> None:
        key = self.partition_key(observation)
        partition = self._partitions.get(key)
        if partition is None:
            partition = deque(maxlen=self.capacity_per_partition)
            self._partitions[key] = partition
        if len(partition) == self.capacity_per_partition:
            self._evicted += 1
        partition.append(observation)
        self._recorded += 1

    # ------------------------------------------------------------------

    def partitions(self) -> List[Tuple]:
        """Partition keys in first-seen order."""
        return list(self._partitions)

    def recent(
        self, fingerprint: Tuple, vcpus: int, n: int | None = None
    ) -> List[PlacementObservation]:
        """The newest ``n`` observations of one partition (all when
        ``n`` is None), oldest first."""
        partition = self._partitions.get((fingerprint, int(vcpus)))
        if partition is None:
            return []
        if n is None or n >= len(partition):
            return list(partition)
        return list(partition)[len(partition) - n :]

    def __len__(self) -> int:
        return sum(len(p) for p in self._partitions.values())

    def __iter__(self) -> Iterator[PlacementObservation]:
        for partition in self._partitions.values():
            yield from partition

    @property
    def recorded(self) -> int:
        """Total observations ever recorded (evictions included)."""
        return self._recorded

    @property
    def evicted(self) -> int:
        return self._evicted

    def describe(self) -> str:
        parts = ", ".join(
            f"{key[1]}-vCPU x{len(partition)}"
            for key, partition in self._partitions.items()
        )
        return (
            f"trace store: {len(self)} observations in "
            f"{len(self._partitions)} partition(s) [{parts}] "
            f"({self._recorded} recorded, {self._evicted} evicted)"
        )
