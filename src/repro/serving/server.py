"""Versioned model serving: shadow candidates, holdout gates, promotion.

:class:`ModelServer` is the :class:`~repro.scheduler.registry.ModelRegistry`
grown into a serving plane: instead of one frozen model per ``(machine
shape, vcpus)`` key it holds a *version chain* — the active model serving
predictions, plus at most one shadow candidate whose predictions are
logged against the same observations but never acted on.  Promotion is
atomic (one reference swap) and invalidates exactly the memo entries the
retiring version produced:

* the registry's ``baseline_ipc`` memo is version-keyed through
  :meth:`ModelServer.model_version_token`, so stale denominators simply
  stop being addressable (and are purged eagerly);
* the process-wide :class:`~repro.core.blockscores.BlockScoreCache` is
  version-bumped for the shape, dropping the target-score match lists
  the old version's candidate placements populated.

A server with no candidates behaves bit-for-bit like the plain registry —
the fleet equivalence tests assert exactly that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.blockscores import DEFAULT_BLOCK_SCORE_CACHE
from repro.core.model import PlacementModel
from repro.scheduler.registry import ModelRegistry
from repro.topology.machine import MachineTopology


class VersionStatus(enum.Enum):
    """Where a model version sits in its lifecycle."""

    SHADOW = "shadow"
    ACTIVE = "active"
    RETIRED = "retired"


@dataclass
class ModelVersion:
    """One entry of a key's version chain.

    ``shadow_errors`` / ``incumbent_errors`` are *paired*: entry ``k`` of
    both lists scores the same live observation, so the holdout gate
    compares the candidate and the incumbent on identical data — the only
    comparison that is fair when the arrival mix itself is drifting.
    """

    version: int
    model: PlacementModel
    status: VersionStatus
    created_time: float
    n_training_rows: int
    #: Workloads newly folded into the corpus for this version (0 for the
    #: initial offline model).
    n_new_workloads: int = 0
    promoted_time: float | None = None
    retired_time: float | None = None
    shadow_errors: List[float] = field(default_factory=list)
    incumbent_errors: List[float] = field(default_factory=list)

    @property
    def n_shadow_observations(self) -> int:
        return len(self.shadow_errors)

    @property
    def shadow_mape_pct(self) -> float | None:
        if not self.shadow_errors:
            return None
        return 100.0 * sum(self.shadow_errors) / len(self.shadow_errors)

    @property
    def incumbent_mape_pct(self) -> float | None:
        if not self.incumbent_errors:
            return None
        return 100.0 * sum(self.incumbent_errors) / len(self.incumbent_errors)

    def describe(self) -> str:
        text = (
            f"v{self.version} [{self.status.value}] "
            f"{self.n_training_rows} rows"
        )
        if self.n_new_workloads:
            text += f" (+{self.n_new_workloads} observed workloads)"
        if self.shadow_errors:
            text += (
                f", shadow MAPE {self.shadow_mape_pct:.1f}% vs incumbent "
                f"{self.incumbent_mape_pct:.1f}% over "
                f"{self.n_shadow_observations} obs"
            )
        return text


@dataclass(frozen=True)
class PromotionRecord:
    """One candidate clearing the holdout gate — the audit trail."""

    time: float
    fingerprint: Tuple
    vcpus: int
    version: int
    shadow_mape_pct: float
    incumbent_mape_pct: float
    n_shadow_observations: int

    def describe(self) -> str:
        return (
            f"t={self.time:9.2f}s promote v{self.version} for "
            f"{self.vcpus}-vCPU partition: shadow MAPE "
            f"{self.shadow_mape_pct:.1f}% beat incumbent "
            f"{self.incumbent_mape_pct:.1f}% over "
            f"{self.n_shadow_observations} paired obs"
        )

    def to_dict(self) -> Dict:
        """JSON-safe record; the machine fingerprint (a nested tuple — the
        interconnect signature nests) serializes as nested lists."""
        from repro.core.serialize import listed

        return {
            "time": self.time,
            "fingerprint": listed(self.fingerprint),
            "vcpus": self.vcpus,
            "version": self.version,
            "shadow_mape_pct": self.shadow_mape_pct,
            "incumbent_mape_pct": self.incumbent_mape_pct,
            "n_shadow_observations": self.n_shadow_observations,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PromotionRecord":
        from repro.core.serialize import tupled

        return cls(
            time=data["time"],
            fingerprint=tupled(data["fingerprint"]),
            vcpus=data["vcpus"],
            version=data["version"],
            shadow_mape_pct=data["shadow_mape_pct"],
            incumbent_mape_pct=data["incumbent_mape_pct"],
            n_shadow_observations=data["n_shadow_observations"],
        )


class ModelServer(ModelRegistry):
    """A :class:`ModelRegistry` whose models are versioned artifacts.

    Accepts the same constructor arguments as the registry and can be
    dropped in anywhere a registry is used (policies, schedulers, the
    grader).  Until a candidate is promoted it serves exactly what the
    plain registry would serve.
    """

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        #: (fingerprint, vcpus) -> version chain, oldest first.
        self._chains: Dict[Tuple, List[ModelVersion]] = {}
        self.promotions: List[PromotionRecord] = []
        self.discarded = 0

    # ------------------------------------------------------------------
    # Version chains
    # ------------------------------------------------------------------

    def _chain(
        self, machine: MachineTopology, vcpus: int
    ) -> List[ModelVersion]:
        key = (machine.fingerprint(), int(vcpus))
        chain = self._chains.get(key)
        if chain is None:
            base = super().model(machine, vcpus)
            chain = [
                ModelVersion(
                    version=1,
                    model=base,
                    status=VersionStatus.ACTIVE,
                    created_time=0.0,
                    n_training_rows=len(self.training_set(machine, vcpus)),
                )
            ]
            self._chains[key] = chain
        return chain

    def versions(
        self, machine: MachineTopology, vcpus: int
    ) -> List[ModelVersion]:
        """The key's full version chain (building v1 if needed)."""
        return list(self._chain(machine, vcpus))

    def active_version(
        self, machine: MachineTopology, vcpus: int
    ) -> ModelVersion:
        for version in reversed(self._chain(machine, vcpus)):
            if version.status is VersionStatus.ACTIVE:
                return version
        raise RuntimeError("version chain has no active entry")  # pragma: no cover

    def shadow_candidate(
        self, machine: MachineTopology, vcpus: int
    ) -> ModelVersion | None:
        """The key's in-flight shadow candidate, if any (at most one)."""
        key = (machine.fingerprint(), int(vcpus))
        for version in reversed(self._chains.get(key, ())):
            if version.status is VersionStatus.SHADOW:
                return version
        return None

    # ------------------------------------------------------------------
    # Registry overrides: serve the active version
    # ------------------------------------------------------------------

    def model(self, machine: MachineTopology, vcpus: int) -> PlacementModel:
        return self.active_version(machine, vcpus).model

    def input_pair(
        self, machine: MachineTopology, vcpus: int
    ) -> Tuple[int, int]:
        key = (machine.fingerprint(), int(vcpus))
        chain = self._chains.get(key)
        if chain is not None:
            pair = self.active_version(machine, vcpus).model.input_pair
            if pair is not None:
                return pair
        return super().input_pair(machine, vcpus)

    def model_version_token(
        self, machine: MachineTopology, vcpus: int
    ) -> int:
        # 1 before the chain exists: the lazily built chain starts at v1,
        # so the token is stable across chain creation and only moves on
        # promotion — which is exactly when baseline_ipc entries may go
        # stale.
        return self._current_version_token(machine.fingerprint(), vcpus)

    def _current_version_token(self, fingerprint: Tuple, vcpus: int) -> int:
        chain = self._chains.get((fingerprint, int(vcpus)))
        if chain is None:
            return 1
        for version in reversed(chain):
            if version.status is VersionStatus.ACTIVE:
                return version.version
        raise RuntimeError(
            "version chain has no active entry"
        )  # pragma: no cover

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------

    def add_candidate(
        self,
        machine: MachineTopology,
        vcpus: int,
        model: PlacementModel,
        *,
        time: float,
        n_training_rows: int,
        n_new_workloads: int = 0,
    ) -> ModelVersion:
        """Append a shadow candidate to the key's chain.

        One candidate at a time: shadow evaluation is a paired comparison
        against the incumbent, and racing candidates would split the
        observation stream into windows too small to gate on.
        """
        chain = self._chain(machine, vcpus)
        if self.shadow_candidate(machine, vcpus) is not None:
            raise ValueError(
                "a shadow candidate is already in flight for this key"
            )
        candidate = ModelVersion(
            version=chain[-1].version + 1,
            model=model,
            status=VersionStatus.SHADOW,
            created_time=time,
            n_training_rows=n_training_rows,
            n_new_workloads=n_new_workloads,
        )
        chain.append(candidate)
        return candidate

    def promote(
        self, machine: MachineTopology, vcpus: int, *, time: float
    ) -> PromotionRecord:
        """Atomically make the shadow candidate the serving model.

        The swap itself is one status flip plus one ``_models`` reference
        assignment; every follow-on effect is cache invalidation scoped to
        exactly this key:

        * stale ``baseline_ipc`` entries (old version token) are purged;
        * the shape's shared block-score tables are version-bumped (their
          memoized target-match lists were built for the old version's
          candidate placements).
        """
        candidate = self.shadow_candidate(machine, vcpus)
        if candidate is None:
            raise ValueError("no shadow candidate to promote for this key")
        incumbent = self.active_version(machine, vcpus)
        fingerprint = machine.fingerprint()
        key = (fingerprint, int(vcpus))

        incumbent.status = VersionStatus.RETIRED
        incumbent.retired_time = time
        candidate.status = VersionStatus.ACTIVE
        candidate.promoted_time = time
        # Keep the base-class store pointing at the serving model so any
        # code path reading ModelRegistry state (or bypassing the chain)
        # agrees with the chain.
        self._models[key] = candidate.model

        stale = [
            memo_key
            for memo_key in self._baseline_ipc
            if memo_key[0] == fingerprint
            and memo_key[1] == int(vcpus)
            and memo_key[3] != candidate.version
        ]
        for memo_key in stale:
            del self._baseline_ipc[memo_key]
        DEFAULT_BLOCK_SCORE_CACHE.invalidate(fingerprint)
        # Cheap post-condition: the purge above left no entry keyed at a
        # retired version token (the memo-invalidation lint's
        # 'model-promotion-memos' surface, checked statically too).
        self.assert_version_consistency()

        record = PromotionRecord(
            time=time,
            fingerprint=fingerprint,
            vcpus=int(vcpus),
            version=candidate.version,
            shadow_mape_pct=candidate.shadow_mape_pct or 0.0,
            incumbent_mape_pct=candidate.incumbent_mape_pct or 0.0,
            n_shadow_observations=candidate.n_shadow_observations,
        )
        self.promotions.append(record)
        return record

    def discard_candidate(
        self, machine: MachineTopology, vcpus: int, *, time: float
    ) -> ModelVersion:
        """Retire the shadow candidate without promoting it (it failed the
        holdout gate); the incumbent keeps serving untouched."""
        candidate = self.shadow_candidate(machine, vcpus)
        if candidate is None:
            raise ValueError("no shadow candidate to discard for this key")
        candidate.status = VersionStatus.RETIRED
        candidate.retired_time = time
        self.discarded += 1
        return candidate

    def describe_chains(self) -> str:
        if not self._chains:
            return "model server: no version chains yet"
        lines = ["model server version chains:"]
        for (fingerprint, vcpus), chain in self._chains.items():
            name = fingerprint[0] if fingerprint else "?"
            lines.append(
                f"  {name} x{vcpus} vCPUs: "
                + "; ".join(version.describe() for version in chain)
            )
        return "\n".join(lines)
