"""Drift detection: when does the live model stop describing the fleet?

The serving loop's tripwire.  Every graded placement yields one absolute
relative prediction error (see
:class:`~repro.serving.traces.PlacementObservation`); the monitor keeps a
rolling window of them per ``(machine shape, vcpus)`` partition and
compares the window's MAPE against a threshold.  A workload-mix shift that
the frozen model has never trained on shows up here as a climbing rolling
MAPE — the signal the retrainer acts on.

The monitor is deliberately model-free: it never looks at features or
forests, only at realized errors, so it works unchanged for any model the
server promotes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Tuple

from repro.serving.traces import PlacementObservation


@dataclass(frozen=True)
class DriftConfig:
    """Knobs of the rolling-MAPE drift detector."""

    #: Observations per rolling window (per partition).
    window: int = 48
    #: Minimum observations before the window's MAPE is trusted at all —
    #: a threshold crossed on three samples is noise, not drift.
    min_observations: int = 24
    #: Rolling MAPE (percent) above which the partition counts as drifted.
    threshold_pct: float = 12.0

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if not 1 <= self.min_observations <= self.window:
            raise ValueError(
                "min_observations must be in [1, window]"
            )
        if self.threshold_pct <= 0:
            raise ValueError("threshold_pct must be positive")


@dataclass(frozen=True)
class DriftEvent:
    """One threshold crossing — the record the report surfaces."""

    time: float
    fingerprint: Tuple
    vcpus: int
    rolling_mape_pct: float
    observations: int
    model_version: int

    def describe(self) -> str:
        return (
            f"t={self.time:9.2f}s drift on {self.vcpus}-vCPU partition: "
            f"rolling MAPE {self.rolling_mape_pct:.1f}% over "
            f"{self.observations} obs (model v{self.model_version})"
        )


class DriftMonitor:
    """Per-partition rolling MAPE over live prediction errors.

    :meth:`observe` returns True exactly when the observation pushes its
    partition's rolling MAPE over the threshold (with a full-enough
    window) — the caller decides what to do about it (the online learner
    triggers a retrain, subject to its own cooldown).
    """

    def __init__(self, config: DriftConfig | None = None) -> None:
        self.config = config or DriftConfig()
        self._errors: Dict[Tuple, Deque[float]] = {}
        self.events: List[DriftEvent] = []

    def _window(self, key: Tuple) -> Deque[float]:
        window = self._errors.get(key)
        if window is None:
            window = deque(maxlen=self.config.window)
            self._errors[key] = window
        return window

    def observe(self, observation: PlacementObservation) -> bool:
        """Fold one observation in; True when the partition is drifted."""
        key = (observation.fingerprint, observation.vcpus)
        window = self._window(key)
        window.append(observation.error_fraction)
        if len(window) < self.config.min_observations:
            return False
        mape = 100.0 * sum(window) / len(window)
        if mape <= self.config.threshold_pct:
            return False
        self.events.append(
            DriftEvent(
                time=observation.time,
                fingerprint=observation.fingerprint,
                vcpus=observation.vcpus,
                rolling_mape_pct=mape,
                observations=len(window),
                model_version=observation.model_version,
            )
        )
        return True

    def rolling_mape_pct(
        self, fingerprint: Tuple, vcpus: int
    ) -> float | None:
        """The partition's current rolling MAPE in percent, or None while
        the window holds fewer than ``min_observations`` errors."""
        window = self._errors.get((fingerprint, int(vcpus)))
        if window is None or len(window) < self.config.min_observations:
            return None
        return 100.0 * sum(window) / len(window)

    def reset(self, fingerprint: Tuple, vcpus: int) -> None:
        """Start the partition's window over — called on promotion, so the
        rolling MAPE describes the model actually serving."""
        self._errors.pop((fingerprint, int(vcpus)), None)
