"""Command-line interface: the paper's workflow without writing Python.

Subcommands mirror the paper's steps:

* ``machines`` — list the built-in machine models;
* ``concerns`` — show a machine's scheduling concerns (Table 1);
* ``enumerate`` — list the important placements for a container size;
* ``predict`` — train the canonical model and predict a workload's
  performance vector from two probe observations;
* ``policies`` — run the Figure-5 packing comparison for one workload;
* ``migrate-plan`` — price the migration of a workload and recommend a
  mechanism (Table 2 / Section 7);
* ``lint`` — run the invariant-aware static analysis suite
  (``repro.analysis``) over the tree: determinism, wire-schema,
  memo-invalidation, and pipe-safety rules; exits non-zero on findings;
* ``schedule`` — place a stream of heterogeneous container requests across
  a simulated fleet and print the fleet report (the scheduler subsystem).
  With ``--churn``, requests also *depart*: the event-driven lifecycle
  engine replays timestamped arrivals and departures, tracks
  fragmentation, and (unless ``--no-rebalance``) recovers
  fragmentation rejects with cost-gated container migrations.
  With ``--online-learning`` (implies ``--churn``), the serving loop
  closes: graded placements feed a trace store, rolling-MAPE drift
  triggers warm-start retraining, and candidates shadow the incumbent
  until they clear the holdout gate and promote.  ``--phase-shift``
  applies the canonical mid-stream workload-mix shift that makes a
  frozen model drift.

Every subcommand accepts ``--seed``; it drives all randomness the command
uses (request streams, simulators, model fitting), so runs are
reproducible end to end from the command line.

Run ``python -m repro <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Sequence

from repro.core import (
    AggressivePolicy,
    ConservativePolicy,
    MlPolicy,
    SmartAggressivePolicy,
    concerns_for,
    enumerate_important_placements,
    evaluate_policy,
)
from repro.experiments import fitted_model, paper_vcpus
from repro.migration import MigrationPlanner
from repro.perfsim import (
    PerformanceSimulator,
    paper_workloads,
    workload_by_name,
)
from repro.topology import (
    amd_epyc_zen,
    amd_opteron_6272,
    intel_haswell_cod,
    intel_xeon_e7_4830_v3,
)

MACHINES: Dict[str, Callable] = {
    "amd": amd_opteron_6272,
    "intel": intel_xeon_e7_4830_v3,
    "zen": amd_epyc_zen,
    "cod": intel_haswell_cod,
}


def _machine(name: str):
    try:
        return MACHINES[name]()
    except KeyError:
        raise SystemExit(
            f"unknown machine {name!r}; choose from {', '.join(MACHINES)}"
        )


def cmd_machines(_args) -> int:
    for key, factory in MACHINES.items():
        machine = factory()
        print(f"[{key}]")
        print(machine.summary())
        print()
    return 0


def cmd_concerns(args) -> int:
    machine = _machine(args.machine)
    print(concerns_for(machine).table())
    return 0


def cmd_enumerate(args) -> int:
    machine = _machine(args.machine)
    vcpus = args.vcpus or paper_vcpus(machine)
    ips = enumerate_important_placements(machine, vcpus)
    print(ips.describe())
    return 0


def cmd_predict(args) -> int:
    machine = _machine(args.machine)
    workload = workload_by_name(args.workload)
    model, training_set = fitted_model(machine, random_state=args.seed)
    placements = training_set.placements
    i, j = model.input_pair
    simulator = PerformanceSimulator(machine, seed=args.seed)
    obs_i = simulator.measured_ipc(workload, placements[i], duration_s=3.0)
    obs_j = simulator.measured_ipc(workload, placements[j], duration_s=3.0)
    vector = model.predict(obs_i, obs_j)
    print(
        f"{workload.name}: probed #{i + 1} ({obs_i:.3f} IPC) and "
        f"#{j + 1} ({obs_j:.3f} IPC)"
    )
    for placement_id, (placement, value) in enumerate(
        zip(placements, vector), start=1
    ):
        marker = " <- best" if value == vector.max() else ""
        print(f"  #{placement_id:>2} {placement.describe():55s} {value:5.2f}{marker}")
    if args.goal is not None:
        meeting = [
            (p, v)
            for p, v in zip(placements, vector)
            if v >= args.goal
        ]
        if meeting:
            placement, value = min(meeting, key=lambda c: (c[0].n_nodes, -c[1]))
            print(
                f"\ncheapest placement meeting {args.goal:.0%} of baseline: "
                f"{placement.describe()} (predicted {value:.2f})"
            )
        else:
            print(f"\nno placement is predicted to meet {args.goal:.0%}")
    return 0


def cmd_policies(args) -> int:
    machine = _machine(args.machine)
    workload = workload_by_name(args.workload)
    simulator = PerformanceSimulator(machine, seed=args.seed)
    model, training_set = fitted_model(machine, random_state=args.seed)
    placements = training_set.placements
    baseline = placements[model.input_pair[0]]
    vcpus = paper_vcpus(machine)
    print(
        f"{workload.name} on {machine.name}, goal "
        f"{args.goal:.0%} of baseline placement:"
    )
    for policy in (
        MlPolicy(model, placements, simulator),
        ConservativePolicy(),
        AggressivePolicy(),
        SmartAggressivePolicy(),
    ):
        outcome = evaluate_policy(
            policy,
            machine,
            workload,
            vcpus,
            goal_fraction=args.goal,
            baseline_placement=baseline,
            simulator=simulator,
        )
        print(
            f"  {policy.name:20s} instances={outcome.instances} "
            f"worst-violation={outcome.violations_pct:.0f}%"
        )
    return 0


def _schedule_config(args):
    from repro.scheduler import ScheduleConfig

    try:
        return ScheduleConfig.from_args(args)
    except ValueError as error:
        raise SystemExit(str(error))


def cmd_schedule(args) -> int:
    from repro.scheduler import (
        FleetScheduler,
        LifecycleScheduler,
        RebalanceConfig,
    )

    if args.trace < 0:
        raise SystemExit("--trace must be >= 0")
    config = _schedule_config(args)

    fleet = config.build_fleet()
    if config.online_learning:
        from repro.serving import (
            DriftConfig,
            ModelServer,
            OnlineLearner,
            OnlineLearningConfig,
        )

        registry = ModelServer(seed=config.seed)
        drift = (
            DriftConfig(threshold_pct=config.drift_threshold)
            if config.drift_threshold is not None
            else DriftConfig()
        )
        learner = OnlineLearner(registry, OnlineLearningConfig(drift=drift))
    else:
        registry = config.build_registry()
        learner = None
    policy = config.build_policy(registry)
    requests = config.build_stream()

    if config.churn:
        engine = LifecycleScheduler(
            fleet,
            policy,
            registry=registry,
            config=RebalanceConfig(
                enabled=config.rebalance_enabled,
                reject_penalty_seconds=config.penalty_seconds,
            ),
            online=learner,
        )
        report = engine.run(requests)
    else:
        scheduler = FleetScheduler(
            fleet,
            policy,
            registry=registry,
            batch_size=config.effective_batch_size,
        )
        report = scheduler.run(requests)
    print(report.describe())
    if config.online_learning:
        print()
        print(registry.describe_chains())
    if args.trace:
        print()
        for graded in report.decisions[: args.trace]:
            print(f"  {graded.describe()}")
        if report.churn is not None and report.churn.migrations:
            print()
            for record in report.churn.migrations[: args.trace]:
                print(f"  {record.describe()}")
    return 0


def cmd_serve(args) -> int:
    import json as json_module

    from repro.scheduler import FaultPlan, SchedulerService

    config = _schedule_config(args)
    faults = None
    if getattr(args, "chaos", False):
        faults = FaultPlan.kill_each_shard_once(
            config.shards, seed=config.seed
        )
    try:
        with SchedulerService(config, faults=faults) as service:
            report = service.serve()
    except ValueError as error:
        raise SystemExit(str(error))
    if args.emit_json:
        print(
            json_module.dumps(
                report.to_dict(include_decisions=False), indent=2
            )
        )
    else:
        print(report.describe())
    return 0


def cmd_capacity(args) -> int:
    """What-if capacity queries over the available-space vectors."""
    from repro.scheduler import (
        CapacityTracker,
        brute_force_capacity,
        minimal_shape,
    )

    if args.fill:
        args.requests = args.fill  # reuse the config's stream builder
    config = _schedule_config(args)
    fleet = config.build_fleet()
    # Attach before any placement so the counts are maintained
    # incrementally (and cross-checked against brute force below).
    tracker = CapacityTracker(fleet.index, config.vcpus)
    if args.fill:
        policy = config.build_policy(config.build_registry())
        decisions = policy.decide_batch(config.build_stream(), fleet)
        placed = sum(1 for decision in decisions if decision.placed)
        print(
            f"filled: {placed}/{args.fill} request(s) placed "
            f"({config.policy} policy, seed {config.seed})"
        )
    index = fleet.index
    print(
        f"fleet: {len(fleet)} host(s) ({config.machine}), "
        f"{index.free_nodes_total}/{index.total_nodes} nodes free"
    )
    print("available space (additional containers that fit):")
    vector = tracker.vector()
    for vcpus in vector.classes:
        shapes = []
        for machine in index.shapes():
            try:
                needed = minimal_shape(machine, vcpus)[0]
            except ValueError:
                continue
            shapes.append(f"{machine.name}: {needed}-node blocks")
        detail = "; ".join(shapes) if shapes else "infeasible on every shape"
        print(f"  vcpus {vcpus:>3}: {vector.count(vcpus):>6}   ({detail})")
    tracker.assert_consistent(fleet.hosts)
    print("incremental tracker matches brute-force re-enumeration")
    if args.query is not None:
        if args.query < 1:
            raise SystemExit("--query must be >= 1")
        count = brute_force_capacity(fleet.hosts, [args.query])[args.query]
        print(
            f"what-if: {count} more {args.query}-vCPU container(s) "
            f"fit right now"
        )
    return 0


def cmd_lint(args) -> int:
    import json as json_module
    import time
    from pathlib import Path

    import repro
    from repro.analysis import (
        DEFAULT_CACHE_NAME,
        RULE_CLASSES,
        Analyzer,
        LintCache,
        rules_named,
    )

    if args.list_rules:
        for rule_id, rule_class in sorted(RULE_CLASSES.items()):
            doc = (rule_class.__doc__ or "").strip().splitlines()
            print(f"{rule_id:20s} {doc[0] if doc else ''}")
        return 0
    try:
        rules = (
            rules_named(token for token in args.rules.split(",") if token)
            if args.rules
            else None
        )
    except ValueError as error:
        raise SystemExit(str(error))
    cache = None
    if not args.no_cache:
        cache = LintCache(Path(args.cache_file or DEFAULT_CACHE_NAME))
    analyzer = Analyzer(rules, cache=cache)
    paths = [Path(p) for p in args.paths] or [Path(repro.__file__).parent]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        raise SystemExit(f"no such path: {', '.join(missing)}")
    start = time.perf_counter()
    findings, n_files = analyzer.analyze_paths(paths)
    elapsed = time.perf_counter() - start
    if cache is not None:
        cache.save()
    if args.format == "json":
        print(
            json_module.dumps(
                {
                    "rules": sorted(rule.id for rule in analyzer.rules),
                    "files": n_files,
                    "elapsed_seconds": round(elapsed, 3),
                    "findings": [f.to_dict() for f in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.describe())
        noun = "finding" if len(findings) == 1 else "findings"
        print(
            f"checked {n_files} files in {elapsed:.2f}s: "
            f"{len(findings)} {noun}"
        )
    return 1 if findings else 0


def cmd_migrate_plan(args) -> int:
    planner = MigrationPlanner()
    workloads = (
        [workload_by_name(args.workload)]
        if args.workload
        else paper_workloads()
    )
    for workload in workloads:
        advice = planner.advise(workload)
        print(f"{workload.name:15s} -> {advice.recommended:9s} {advice.reason}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    # One seed for every subcommand: any randomness a command uses
    # (streams, simulators, model fitting) derives from it, so a repeated
    # invocation with the same flags reproduces bit for bit.
    seed_parent = argparse.ArgumentParser(add_help=False)
    seed_parent.add_argument(
        "--seed",
        type=int,
        default=0,
        help="drives all randomness this command uses (default 0)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "machines", help="list machine models", parents=[seed_parent]
    ).set_defaults(func=cmd_machines)

    p = sub.add_parser(
        "concerns",
        help="show a machine's scheduling concerns",
        parents=[seed_parent],
    )
    p.add_argument("--machine", default="amd", choices=sorted(MACHINES))
    p.set_defaults(func=cmd_concerns)

    p = sub.add_parser(
        "enumerate", help="list important placements", parents=[seed_parent]
    )
    p.add_argument("--machine", default="amd", choices=sorted(MACHINES))
    p.add_argument("--vcpus", type=int, default=None)
    p.set_defaults(func=cmd_enumerate)

    p = sub.add_parser(
        "predict", help="predict a workload's vector", parents=[seed_parent]
    )
    p.add_argument("--machine", default="amd", choices=sorted(MACHINES))
    p.add_argument("--workload", default="WTbtree")
    p.add_argument("--goal", type=float, default=None)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser(
        "policies", help="compare packing policies", parents=[seed_parent]
    )
    p.add_argument("--machine", default="amd", choices=sorted(MACHINES))
    p.add_argument("--workload", default="WTbtree")
    p.add_argument("--goal", type=float, default=1.0)
    p.set_defaults(func=cmd_policies)

    p = sub.add_parser(
        "migrate-plan", help="price container migration", parents=[seed_parent]
    )
    p.add_argument("--workload", default=None)
    p.set_defaults(func=cmd_migrate_plan)

    p = sub.add_parser(
        "lint",
        help="run the invariant lints (repro.analysis) over the tree",
        parents=[seed_parent],
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files or directories (default: the installed repro package)",
    )
    p.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default human)",
    )
    p.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all; "
        "see --list-rules)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-file result cache",
    )
    p.add_argument(
        "--cache-file",
        default=None,
        help="cache file path (default ./.repro-lint-cache.json)",
    )
    p.set_defaults(func=cmd_lint)

    from repro.scheduler.config import add_schedule_arguments

    p = sub.add_parser(
        "schedule",
        help="place a request stream across a simulated fleet",
        parents=[seed_parent],
    )
    add_schedule_arguments(p)
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser(
        "serve",
        help="run the sharded scheduler service over a churn stream",
        parents=[seed_parent],
    )
    add_schedule_arguments(p, serve=True)
    p.set_defaults(func=cmd_serve)

    from repro.scheduler.policies import POLICIES
    from repro.topology import PRESETS

    p = sub.add_parser(
        "capacity",
        help="available-space vectors: what-if capacity queries",
        parents=[seed_parent],
    )
    p.add_argument(
        "--machine",
        default="amd",
        choices=sorted(PRESETS) + ["mixed"],
        help="host shape, or 'mixed' for a half-AMD/half-Intel fleet",
    )
    p.add_argument("--hosts", type=int, default=16)
    p.add_argument(
        "--vcpus",
        default="8,16,32",
        help="comma-separated container sizes to track (default 8,16,32)",
    )
    p.add_argument(
        "--policy",
        default="first-fit",
        choices=sorted(POLICIES),
        help="packing policy used by --fill (default first-fit)",
    )
    p.add_argument(
        "--fill",
        type=int,
        default=0,
        metavar="N",
        help="place N generated requests before reporting capacity",
    )
    p.add_argument(
        "--query",
        type=int,
        default=None,
        metavar="V",
        help="what-if: how many more V-vCPU containers fit "
        "(V need not be a tracked class)",
    )
    p.set_defaults(func=cmd_capacity)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
