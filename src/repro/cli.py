"""Command-line interface: the paper's workflow without writing Python.

Subcommands mirror the paper's steps:

* ``machines`` — list the built-in machine models;
* ``concerns`` — show a machine's scheduling concerns (Table 1);
* ``enumerate`` — list the important placements for a container size;
* ``predict`` — train the canonical model and predict a workload's
  performance vector from two probe observations;
* ``policies`` — run the Figure-5 packing comparison for one workload;
* ``migrate-plan`` — price the migration of a workload and recommend a
  mechanism (Table 2 / Section 7);
* ``schedule`` — place a stream of heterogeneous container requests across
  a simulated fleet and print the fleet report (the scheduler subsystem).
  With ``--churn``, requests also *depart*: the event-driven lifecycle
  engine replays timestamped arrivals and departures, tracks
  fragmentation, and (unless ``--no-rebalance``) recovers
  fragmentation rejects with cost-gated container migrations.
  With ``--online-learning`` (implies ``--churn``), the serving loop
  closes: graded placements feed a trace store, rolling-MAPE drift
  triggers warm-start retraining, and candidates shadow the incumbent
  until they clear the holdout gate and promote.  ``--phase-shift``
  applies the canonical mid-stream workload-mix shift that makes a
  frozen model drift.

Every subcommand accepts ``--seed``; it drives all randomness the command
uses (request streams, simulators, model fitting), so runs are
reproducible end to end from the command line.

Run ``python -m repro <subcommand> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Sequence

from repro.core import (
    AggressivePolicy,
    ConservativePolicy,
    MlPolicy,
    SmartAggressivePolicy,
    concerns_for,
    enumerate_important_placements,
    evaluate_policy,
)
from repro.experiments import fitted_model, paper_vcpus
from repro.migration import MigrationPlanner
from repro.perfsim import (
    PerformanceSimulator,
    paper_workloads,
    workload_by_name,
)
from repro.topology import (
    amd_epyc_zen,
    amd_opteron_6272,
    intel_haswell_cod,
    intel_xeon_e7_4830_v3,
)

MACHINES: Dict[str, Callable] = {
    "amd": amd_opteron_6272,
    "intel": intel_xeon_e7_4830_v3,
    "zen": amd_epyc_zen,
    "cod": intel_haswell_cod,
}


def _machine(name: str):
    try:
        return MACHINES[name]()
    except KeyError:
        raise SystemExit(
            f"unknown machine {name!r}; choose from {', '.join(MACHINES)}"
        )


def cmd_machines(_args) -> int:
    for key, factory in MACHINES.items():
        machine = factory()
        print(f"[{key}]")
        print(machine.summary())
        print()
    return 0


def cmd_concerns(args) -> int:
    machine = _machine(args.machine)
    print(concerns_for(machine).table())
    return 0


def cmd_enumerate(args) -> int:
    machine = _machine(args.machine)
    vcpus = args.vcpus or paper_vcpus(machine)
    ips = enumerate_important_placements(machine, vcpus)
    print(ips.describe())
    return 0


def cmd_predict(args) -> int:
    machine = _machine(args.machine)
    workload = workload_by_name(args.workload)
    model, training_set = fitted_model(machine, random_state=args.seed)
    placements = training_set.placements
    i, j = model.input_pair
    simulator = PerformanceSimulator(machine, seed=args.seed)
    obs_i = simulator.measured_ipc(workload, placements[i], duration_s=3.0)
    obs_j = simulator.measured_ipc(workload, placements[j], duration_s=3.0)
    vector = model.predict(obs_i, obs_j)
    print(
        f"{workload.name}: probed #{i + 1} ({obs_i:.3f} IPC) and "
        f"#{j + 1} ({obs_j:.3f} IPC)"
    )
    for placement_id, (placement, value) in enumerate(
        zip(placements, vector), start=1
    ):
        marker = " <- best" if value == vector.max() else ""
        print(f"  #{placement_id:>2} {placement.describe():55s} {value:5.2f}{marker}")
    if args.goal is not None:
        meeting = [
            (p, v)
            for p, v in zip(placements, vector)
            if v >= args.goal
        ]
        if meeting:
            placement, value = min(meeting, key=lambda c: (c[0].n_nodes, -c[1]))
            print(
                f"\ncheapest placement meeting {args.goal:.0%} of baseline: "
                f"{placement.describe()} (predicted {value:.2f})"
            )
        else:
            print(f"\nno placement is predicted to meet {args.goal:.0%}")
    return 0


def cmd_policies(args) -> int:
    machine = _machine(args.machine)
    workload = workload_by_name(args.workload)
    simulator = PerformanceSimulator(machine, seed=args.seed)
    model, training_set = fitted_model(machine, random_state=args.seed)
    placements = training_set.placements
    baseline = placements[model.input_pair[0]]
    vcpus = paper_vcpus(machine)
    print(
        f"{workload.name} on {machine.name}, goal "
        f"{args.goal:.0%} of baseline placement:"
    )
    for policy in (
        MlPolicy(model, placements, simulator),
        ConservativePolicy(),
        AggressivePolicy(),
        SmartAggressivePolicy(),
    ):
        outcome = evaluate_policy(
            policy,
            machine,
            workload,
            vcpus,
            goal_fraction=args.goal,
            baseline_placement=baseline,
            simulator=simulator,
        )
        print(
            f"  {policy.name:20s} instances={outcome.instances} "
            f"worst-violation={outcome.violations_pct:.0f}%"
        )
    return 0


def cmd_schedule(args) -> int:
    from repro.scheduler import (
        FirstFitFleetPolicy,
        Fleet,
        FleetScheduler,
        GoalAwareFleetPolicy,
        LifecycleScheduler,
        ModelRegistry,
        RebalanceConfig,
        SpreadFleetPolicy,
        drift_phase_schedule,
        generate_churn_stream,
        generate_request_stream,
    )

    if args.online_learning:
        # Online learning is a property of the event-driven engine: the
        # loop closes on *observed* placements over time.
        args.churn = True
        if args.policy != "ml":
            raise SystemExit(
                "--online-learning needs --policy ml (heuristic policies "
                "make no predictions to retrain on)"
            )
        if args.naive:
            raise SystemExit(
                "--online-learning needs the memoized registry "
                "(drop --naive)"
            )
    if args.phase_shift and not args.churn:
        raise SystemExit(
            "--phase-shift applies to churn streams; add --churn "
            "(or --online-learning)"
        )
    if args.drift_threshold is not None and args.drift_threshold <= 0:
        raise SystemExit("--drift-threshold must be positive")

    try:
        vcpus_choices = tuple(
            int(v) for v in args.vcpus.split(",") if v.strip()
        )
    except ValueError:
        raise SystemExit(f"--vcpus must be a comma-separated int list, got {args.vcpus!r}")
    if not vcpus_choices:
        raise SystemExit("--vcpus must name at least one container size")
    if any(v < 1 for v in vcpus_choices):
        raise SystemExit("--vcpus sizes must be >= 1")
    if args.hosts < 1:
        raise SystemExit("--hosts must be >= 1")
    if args.requests < 1:
        raise SystemExit("--requests must be >= 1")
    if args.batch_size is not None and args.batch_size < 1:
        raise SystemExit("--batch-size must be >= 1")
    if args.churn and args.batch_size is not None:
        raise SystemExit(
            "--batch-size applies to the one-shot scheduler; the lifecycle "
            "engine decides one event at a time"
        )
    if args.trace < 0:
        raise SystemExit("--trace must be >= 0")
    if args.arrival_rate <= 0:
        raise SystemExit("--arrival-rate must be positive")
    if args.mean_lifetime <= 0:
        raise SystemExit("--mean-lifetime must be positive")
    if args.penalty_seconds <= 0:
        raise SystemExit("--penalty-seconds must be positive")

    if args.machine == "mixed":
        half = args.hosts // 2
        fleet = Fleet.mixed(
            [(_machine("amd"), args.hosts - half), (_machine("intel"), half)]
        )
    else:
        fleet = Fleet.homogeneous(_machine(args.machine), args.hosts)

    indexed = not (args.naive or args.linear_scan)
    if args.online_learning:
        from repro.serving import (
            DriftConfig,
            ModelServer,
            OnlineLearner,
            OnlineLearningConfig,
        )

        registry = ModelServer(seed=args.seed)
        drift = (
            DriftConfig(threshold_pct=args.drift_threshold)
            if args.drift_threshold is not None
            else DriftConfig()
        )
        learner = OnlineLearner(registry, OnlineLearningConfig(drift=drift))
    else:
        registry = ModelRegistry(
            seed=args.seed,
            memoize_enumeration=not args.naive,
            memoize_ipc=not args.naive,
        )
        learner = None
    if args.policy == "ml":
        policy = GoalAwareFleetPolicy(registry, indexed=indexed)
    elif args.policy == "first-fit":
        policy = FirstFitFleetPolicy(indexed=indexed)
    else:
        policy = SpreadFleetPolicy(indexed=indexed)

    if args.churn:
        requests = generate_churn_stream(
            args.requests,
            seed=args.seed,
            vcpus_choices=vcpus_choices,
            arrival_rate=args.arrival_rate,
            mean_lifetime=args.mean_lifetime,
            heavy_tail=args.heavy_tail,
            phases=drift_phase_schedule() if args.phase_shift else None,
        )
        engine = LifecycleScheduler(
            fleet,
            policy,
            registry=registry,
            config=RebalanceConfig(
                enabled=not args.no_rebalance,
                reject_penalty_seconds=args.penalty_seconds,
            ),
            online=learner,
        )
        report = engine.run(requests)
    else:
        requests = generate_request_stream(
            args.requests, seed=args.seed, vcpus_choices=vcpus_choices
        )
        batch_size = 64 if args.batch_size is None else args.batch_size
        scheduler = FleetScheduler(
            fleet,
            policy,
            registry=registry,
            batch_size=1 if args.naive else batch_size,
        )
        report = scheduler.run(requests)
    print(report.describe())
    if args.online_learning:
        print()
        print(registry.describe_chains())
    if args.trace:
        print()
        for graded in report.decisions[: args.trace]:
            print(f"  {graded.describe()}")
        if report.churn is not None and report.churn.migrations:
            print()
            for record in report.churn.migrations[: args.trace]:
                print(f"  {record.describe()}")
    return 0


def cmd_migrate_plan(args) -> int:
    planner = MigrationPlanner()
    workloads = (
        [workload_by_name(args.workload)]
        if args.workload
        else paper_workloads()
    )
    for workload in workloads:
        advice = planner.advise(workload)
        print(f"{workload.name:15s} -> {advice.recommended:9s} {advice.reason}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    # One seed for every subcommand: any randomness a command uses
    # (streams, simulators, model fitting) derives from it, so a repeated
    # invocation with the same flags reproduces bit for bit.
    seed_parent = argparse.ArgumentParser(add_help=False)
    seed_parent.add_argument(
        "--seed",
        type=int,
        default=0,
        help="drives all randomness this command uses (default 0)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "machines", help="list machine models", parents=[seed_parent]
    ).set_defaults(func=cmd_machines)

    p = sub.add_parser(
        "concerns",
        help="show a machine's scheduling concerns",
        parents=[seed_parent],
    )
    p.add_argument("--machine", default="amd", choices=sorted(MACHINES))
    p.set_defaults(func=cmd_concerns)

    p = sub.add_parser(
        "enumerate", help="list important placements", parents=[seed_parent]
    )
    p.add_argument("--machine", default="amd", choices=sorted(MACHINES))
    p.add_argument("--vcpus", type=int, default=None)
    p.set_defaults(func=cmd_enumerate)

    p = sub.add_parser(
        "predict", help="predict a workload's vector", parents=[seed_parent]
    )
    p.add_argument("--machine", default="amd", choices=sorted(MACHINES))
    p.add_argument("--workload", default="WTbtree")
    p.add_argument("--goal", type=float, default=None)
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser(
        "policies", help="compare packing policies", parents=[seed_parent]
    )
    p.add_argument("--machine", default="amd", choices=sorted(MACHINES))
    p.add_argument("--workload", default="WTbtree")
    p.add_argument("--goal", type=float, default=1.0)
    p.set_defaults(func=cmd_policies)

    p = sub.add_parser(
        "migrate-plan", help="price container migration", parents=[seed_parent]
    )
    p.add_argument("--workload", default=None)
    p.set_defaults(func=cmd_migrate_plan)

    p = sub.add_parser(
        "schedule",
        help="place a request stream across a simulated fleet",
        parents=[seed_parent],
    )
    p.add_argument(
        "--machine",
        default="amd",
        choices=sorted(MACHINES) + ["mixed"],
        help="host shape, or 'mixed' for a half-AMD/half-Intel fleet",
    )
    p.add_argument("--hosts", type=int, default=128)
    p.add_argument("--requests", type=int, default=500)
    p.add_argument(
        "--policy", default="ml", choices=["ml", "first-fit", "spread"]
    )
    p.add_argument(
        "--vcpus",
        default="8,16",
        help="comma-separated container sizes to sample (default 8,16)",
    )
    p.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="requests decided per policy call (one-shot mode only; "
        "default 64)",
    )
    p.add_argument(
        "--naive",
        action="store_true",
        help="disable every scale optimization: enumeration memo cache, "
        "batched prediction, fleet index, block-score tables, and the "
        "grading IPC memo (the per-request baseline the benchmark "
        "compares against)",
    )
    p.add_argument(
        "--linear-scan",
        action="store_true",
        help="keep the caches but scan all hosts per request instead of "
        "querying the incremental fleet index (the pre-index baseline; "
        "decisions are identical, only slower)",
    )
    p.add_argument(
        "--trace",
        type=int,
        default=0,
        metavar="N",
        help="also print the first N per-request decision traces "
        "(and, with --churn, the first N migration traces)",
    )
    churn = p.add_argument_group(
        "churn options", "dynamic lifecycle simulation (--churn)"
    )
    churn.add_argument(
        "--churn",
        action="store_true",
        help="run the event-driven lifecycle engine: Poisson arrivals "
        "with lifetimes, departures, fragmentation tracking, and "
        "migration-driven rebalancing",
    )
    churn.add_argument(
        "--arrival-rate",
        type=float,
        default=1.0,
        help="mean container arrivals per simulated second (default 1.0)",
    )
    churn.add_argument(
        "--mean-lifetime",
        type=float,
        default=60.0,
        help="mean container lifetime in simulated seconds (default 60)",
    )
    churn.add_argument(
        "--heavy-tail",
        action="store_true",
        help="draw lifetimes from a heavy-tailed Pareto instead of an "
        "exponential (same mean; a few containers pin nodes for ages)",
    )
    churn.add_argument(
        "--no-rebalance",
        action="store_true",
        help="disable the fragmentation-triggered migration rebalancer "
        "(the no-migration baseline)",
    )
    churn.add_argument(
        "--penalty-seconds",
        type=float,
        default=120.0,
        help="migration-time budget the rebalancer may spend to recover "
        "one rejected request (default 120)",
    )
    online = p.add_argument_group(
        "online learning options",
        "closed-loop model lifecycle (--online-learning, implies --churn)",
    )
    online.add_argument(
        "--online-learning",
        action="store_true",
        help="close the serving loop: trace every graded ML placement, "
        "retrain on rolling-MAPE drift, shadow candidates against the "
        "incumbent, and promote through the holdout gate",
    )
    online.add_argument(
        "--phase-shift",
        action="store_true",
        help="apply the canonical mid-stream workload-mix shift (the "
        "drift scenario a frozen model degrades on)",
    )
    online.add_argument(
        "--drift-threshold",
        type=float,
        default=None,
        metavar="PCT",
        help="rolling MAPE (percent) above which a partition counts as "
        "drifted (default 12)",
    )
    p.set_defaults(func=cmd_schedule)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
