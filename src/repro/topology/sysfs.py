"""Sysfs-style serialization of machine models.

The paper envisions the scheduling-concern specification "being provided as
part of system BIOS", with the cache-sharing information coming from what
the OS already exports under ``/sys/devices/system``.  This module round-trips
a :class:`MachineTopology` through exactly that representation:

* standard sysfs paths describe nodes, threads, and cache sharing
  (``cpu*/topology/physical_package_id``, ``cpu*/cache/index{2,3}/...``,
  ``node*/cpulist``);
* measured quantities sysfs does not carry (DRAM bandwidth, interconnect
  link bandwidths, latencies) live under a vendor-style ``repro/`` prefix,
  playing the role of the BIOS-provided tables.

The representation is a flat ``{relative_path: text}`` mapping, plus helpers
to write/read it as a real directory tree so example scripts can show users
an actual filesystem layout.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List

from repro.topology.interconnect import Interconnect
from repro.topology.machine import MachineTopology

_NAME_PATH = "repro/name"
_DESC_PATH = "repro/description"
_DRAM_PATH = "repro/dram_bandwidth_mbps"
_LINKS_PATH = "repro/interconnect/links"
_LATENCY_PATH = "repro/interconnect/latency_ns"


def format_cpulist(cpus: Iterable[int]) -> str:
    """Render a cpu set the way sysfs does: ``"0-3,8,10-11"``."""
    sorted_cpus = sorted(set(cpus))
    if not sorted_cpus:
        return ""
    ranges: List[List[int]] = [[sorted_cpus[0], sorted_cpus[0]]]
    for cpu in sorted_cpus[1:]:
        if cpu == ranges[-1][1] + 1:
            ranges[-1][1] = cpu
        else:
            ranges.append([cpu, cpu])
    return ",".join(
        f"{lo}" if lo == hi else f"{lo}-{hi}" for lo, hi in ranges
    )


def parse_cpulist(text: str) -> List[int]:
    """Inverse of :func:`format_cpulist`."""
    text = text.strip()
    if not text:
        return []
    cpus: List[int] = []
    for part in text.split(","):
        if "-" in part:
            lo_text, hi_text = part.split("-")
            lo, hi = int(lo_text), int(hi_text)
            if hi < lo:
                raise ValueError(f"invalid cpu range {part!r}")
            cpus.extend(range(lo, hi + 1))
        else:
            cpus.append(int(part))
    return sorted(set(cpus))


def machine_to_sysfs(machine: MachineTopology) -> Dict[str, str]:
    """Serialize a machine to a flat sysfs-style mapping."""
    tree: Dict[str, str] = {}

    tree["devices/system/node/online"] = format_cpulist(machine.nodes)
    for node in machine.nodes:
        tree[f"devices/system/node/node{node}/cpulist"] = format_cpulist(
            machine.threads_of_node(node)
        )

    tree["devices/system/cpu/online"] = format_cpulist(
        range(machine.total_threads)
    )
    l2_size = f"{int(machine.l2_size_kb)}K"
    l3_size = f"{int(machine.l3_size_mb * 1024)}K"
    for thread in range(machine.total_threads):
        base = f"devices/system/cpu/cpu{thread}"
        tree[f"{base}/topology/physical_package_id"] = str(
            machine.node_of_thread(thread)
        )
        l2_group = machine.l2_group_of_thread(thread)
        tree[f"{base}/cache/index2/shared_cpu_list"] = format_cpulist(
            machine.threads_of_l2_group(l2_group)
        )
        tree[f"{base}/cache/index2/size"] = l2_size
        l3_group = machine.l3_group_of_thread(thread)
        threads_per_l3 = machine.threads_per_node // machine.l3_groups_per_node
        l3_start = l3_group * threads_per_l3
        tree[f"{base}/cache/index3/shared_cpu_list"] = format_cpulist(
            range(l3_start, l3_start + threads_per_l3)
        )
        tree[f"{base}/cache/index3/size"] = l3_size

    tree[_NAME_PATH] = machine.name
    if machine.description:
        tree[_DESC_PATH] = machine.description
    tree[_DRAM_PATH] = repr(machine.dram_bandwidth_mbps)
    link_lines = [
        f"{min(link)} {max(link)} {bandwidth!r}"
        for link, bandwidth in sorted(
            machine.interconnect.links.items(), key=lambda kv: sorted(kv[0])
        )
    ]
    tree[_LINKS_PATH] = "\n".join(link_lines)
    tree[_LATENCY_PATH] = (
        f"{machine.interconnect.local_latency_ns!r} "
        f"{machine.interconnect.hop_latency_ns!r}"
    )
    return tree


def machine_from_sysfs(tree: Dict[str, str]) -> MachineTopology:
    """Reconstruct a machine from :func:`machine_to_sysfs` output."""
    try:
        nodes = parse_cpulist(tree["devices/system/node/online"])
        threads = parse_cpulist(tree["devices/system/cpu/online"])
    except KeyError as exc:
        raise ValueError(f"sysfs tree is missing {exc.args[0]!r}") from exc
    if nodes != list(range(len(nodes))):
        raise ValueError("node ids must be contiguous from 0")
    if threads != list(range(len(threads))):
        raise ValueError("thread ids must be contiguous from 0")
    n_nodes = len(nodes)
    total_threads = len(threads)
    if n_nodes == 0 or total_threads == 0:
        raise ValueError("sysfs tree describes an empty machine")
    if total_threads % n_nodes != 0:
        raise ValueError("threads do not divide evenly across nodes")
    threads_per_node = total_threads // n_nodes

    for node in nodes:
        cpulist = parse_cpulist(tree[f"devices/system/node/node{node}/cpulist"])
        expected = list(range(node * threads_per_node, (node + 1) * threads_per_node))
        if cpulist != expected:
            raise ValueError(
                f"node {node} cpulist {cpulist} is not node-major contiguous"
            )

    l2_shared = parse_cpulist(
        tree["devices/system/cpu/cpu0/cache/index2/shared_cpu_list"]
    )
    l3_shared = parse_cpulist(
        tree["devices/system/cpu/cpu0/cache/index3/shared_cpu_list"]
    )
    threads_per_l2 = len(l2_shared)
    threads_per_l3 = len(l3_shared)
    if threads_per_node % threads_per_l2 != 0:
        raise ValueError("L2 sharing does not divide the node evenly")
    if threads_per_node % threads_per_l3 != 0:
        raise ValueError("L3 sharing does not divide the node evenly")
    l2_groups_per_node = threads_per_node // threads_per_l2
    l3_groups_per_node = threads_per_node // threads_per_l3

    l2_size_kb = _parse_cache_size_kb(
        tree["devices/system/cpu/cpu0/cache/index2/size"]
    )
    l3_size_kb = _parse_cache_size_kb(
        tree["devices/system/cpu/cpu0/cache/index3/size"]
    )

    links: Dict[tuple, float] = {}
    links_text = tree.get(_LINKS_PATH, "").strip()
    if links_text:
        for line in links_text.splitlines():
            a_text, b_text, bw_text = line.split()
            links[(int(a_text), int(b_text))] = float(bw_text)
    local_ns, hop_ns = (
        float(x) for x in tree.get(_LATENCY_PATH, "90.0 110.0").split()
    )
    interconnect = Interconnect(
        n_nodes, links, local_latency_ns=local_ns, hop_latency_ns=hop_ns
    )

    return MachineTopology(
        name=tree.get(_NAME_PATH, "from-sysfs"),
        n_nodes=n_nodes,
        l2_groups_per_node=l2_groups_per_node,
        threads_per_l2=threads_per_l2,
        interconnect=interconnect,
        dram_bandwidth_mbps=float(tree[_DRAM_PATH]),
        l3_size_mb=l3_size_kb / 1024.0,
        l2_size_kb=l2_size_kb,
        l3_groups_per_node=l3_groups_per_node,
        description=tree.get(_DESC_PATH, ""),
    )


def _parse_cache_size_kb(text: str) -> float:
    text = text.strip()
    if text.endswith("K"):
        return float(text[:-1])
    if text.endswith("M"):
        return float(text[:-1]) * 1024.0
    raise ValueError(f"unrecognized cache size {text!r}")


def write_sysfs_tree(machine: MachineTopology, root: str) -> None:
    """Materialize the sysfs representation as files under ``root``."""
    for rel_path, content in machine_to_sysfs(machine).items():
        path = os.path.join(root, rel_path)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content + "\n")


def read_sysfs_tree(root: str) -> MachineTopology:
    """Read a machine back from a directory written by
    :func:`write_sysfs_tree` (file contents are stripped of the trailing
    newline)."""
    tree: Dict[str, str] = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            path = os.path.join(dirpath, filename)
            rel_path = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, "r", encoding="utf-8") as handle:
                tree[rel_path] = handle.read().rstrip("\n")
    return machine_from_sysfs(tree)
