"""Fluent construction of :class:`MachineTopology` objects.

The paper argues (Section 8) that its methodology transfers to future
architectures "without significant retooling by an expert".  The builder is
the API surface for that claim: a user describes a new machine in a few
lines and everything downstream (concerns, enumeration, model training)
works unchanged.

Example
-------
>>> from repro.topology import TopologyBuilder
>>> machine = (
...     TopologyBuilder("toy")
...     .nodes(2)
...     .l2_groups_per_node(4, threads_per_l2=2)
...     .dram_bandwidth(20_000)
...     .cache_sizes(l3_mb=16, l2_kb=512)
...     .symmetric_interconnect(bandwidth_mbps=8_000)
...     .build()
... )
>>> machine.total_threads
16
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.topology.interconnect import Interconnect
from repro.topology.machine import MachineTopology


class TopologyBuilder:
    """Step-by-step construction of a machine model.

    All setters return ``self`` so calls can be chained.  :meth:`build`
    validates that every required piece has been supplied.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("machine name must not be empty")
        self._name = name
        self._n_nodes: int | None = None
        self._l2_groups: int | None = None
        self._threads_per_l2: int = 1
        self._l3_groups: int = 1
        self._dram_mbps: float | None = None
        self._l3_size_mb: float | None = None
        self._l2_size_kb: float | None = None
        self._links: Dict[Tuple[int, int], float] | None = None
        self._symmetric_bw: float | None = None
        self._local_latency_ns: float = 90.0
        self._hop_latency_ns: float = 110.0
        self._description: str = ""

    # ------------------------------------------------------------------

    def nodes(self, n: int) -> "TopologyBuilder":
        self._n_nodes = n
        return self

    def l2_groups_per_node(
        self, groups: int, *, threads_per_l2: int = 2
    ) -> "TopologyBuilder":
        self._l2_groups = groups
        self._threads_per_l2 = threads_per_l2
        return self

    def l3_groups_per_node(self, groups: int) -> "TopologyBuilder":
        """Model split-L3 designs (AMD Zen CCX) where several L3 caches share
        one memory controller."""
        self._l3_groups = groups
        return self

    def dram_bandwidth(self, mbps: float) -> "TopologyBuilder":
        self._dram_mbps = mbps
        return self

    def cache_sizes(self, *, l3_mb: float, l2_kb: float) -> "TopologyBuilder":
        self._l3_size_mb = l3_mb
        self._l2_size_kb = l2_kb
        return self

    def latencies(
        self, *, local_ns: float, per_hop_ns: float
    ) -> "TopologyBuilder":
        self._local_latency_ns = local_ns
        self._hop_latency_ns = per_hop_ns
        return self

    def symmetric_interconnect(self, *, bandwidth_mbps: float) -> "TopologyBuilder":
        """Full-mesh interconnect where every node pair sees the same
        bandwidth (the paper's Intel machine)."""
        if self._links is not None:
            raise ValueError("interconnect already specified as explicit links")
        self._symmetric_bw = bandwidth_mbps
        return self

    def asymmetric_interconnect(
        self, links: Dict[Tuple[int, int], float]
    ) -> "TopologyBuilder":
        """Explicit link list with per-link measured bandwidths (the paper's
        AMD machine)."""
        if self._symmetric_bw is not None:
            raise ValueError("interconnect already specified as symmetric")
        self._links = dict(links)
        return self

    def description(self, text: str) -> "TopologyBuilder":
        self._description = text
        return self

    # ------------------------------------------------------------------

    def build(self) -> MachineTopology:
        missing = [
            label
            for label, value in [
                ("nodes(..)", self._n_nodes),
                ("l2_groups_per_node(..)", self._l2_groups),
                ("dram_bandwidth(..)", self._dram_mbps),
                ("cache_sizes(..)", self._l3_size_mb),
            ]
            if value is None
        ]
        if self._symmetric_bw is None and self._links is None:
            missing.append("symmetric_interconnect(..) or asymmetric_interconnect(..)")
        if missing:
            raise ValueError(
                "TopologyBuilder is incomplete; missing: " + ", ".join(missing)
            )

        assert self._n_nodes is not None
        if self._symmetric_bw is not None:
            interconnect = Interconnect.full_mesh(
                self._n_nodes,
                self._symmetric_bw,
                local_latency_ns=self._local_latency_ns,
                hop_latency_ns=self._hop_latency_ns,
            )
        else:
            assert self._links is not None
            interconnect = Interconnect(
                self._n_nodes,
                self._links,
                local_latency_ns=self._local_latency_ns,
                hop_latency_ns=self._hop_latency_ns,
            )

        assert self._l2_groups is not None
        assert self._dram_mbps is not None
        assert self._l3_size_mb is not None
        assert self._l2_size_kb is not None
        return MachineTopology(
            name=self._name,
            n_nodes=self._n_nodes,
            l2_groups_per_node=self._l2_groups,
            threads_per_l2=self._threads_per_l2,
            interconnect=interconnect,
            dram_bandwidth_mbps=self._dram_mbps,
            l3_size_mb=self._l3_size_mb,
            l2_size_kb=self._l2_size_kb,
            l3_groups_per_node=self._l3_groups,
            description=self._description,
        )
