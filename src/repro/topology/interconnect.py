"""Cross-node interconnect model.

The interconnect is an undirected graph whose vertices are NUMA nodes and
whose edges are point-to-point links with a *measured* bandwidth (MB/s).
"Measured" follows the paper (Section 4): rather than deriving scores from
nominal link widths, the authors measure the aggregate bandwidth achievable
on every node combination with a STREAM-like benchmark.  Our link values
play the role of those measurements, and :class:`Interconnect` derives the
per-combination aggregate from them deterministically.

Two quantities matter to the rest of the system:

* ``effective_bandwidth(i, j)`` -- the bandwidth available between a pair of
  nodes.  For adjacent nodes it is the link bandwidth.  For distant nodes the
  traffic is routed over a shortest path and both shares the intermediate
  links with their owners and pays a store-and-forward penalty, so we charge
  the bottleneck bandwidth divided by the hop count (the route that maximizes
  this is chosen).
* ``aggregate_bandwidth(nodes)`` -- the interconnect *score* of a node set:
  the sum of effective bandwidths over all node pairs in the set.  This is
  the quantity the paper's Interconnect scheduling concern consumes.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

import networkx as nx

#: A link is identified by the unordered pair of node ids it connects.
Link = FrozenSet[int]


def _as_link(a: int, b: int) -> Link:
    if a == b:
        raise ValueError(f"a link must connect two distinct nodes, got ({a}, {b})")
    return frozenset((a, b))


class Interconnect:
    """An undirected link graph with per-link bandwidths.

    Parameters
    ----------
    n_nodes:
        Number of NUMA nodes; nodes are identified by ``0 .. n_nodes - 1``.
    links:
        Mapping from node pairs (2-tuples or frozensets) to link bandwidth in
        MB/s.  The graph must be connected.
    local_latency_ns:
        Latency of a memory access that stays on the node.
    hop_latency_ns:
        Additional latency per interconnect hop for remote accesses.
    """

    def __init__(
        self,
        n_nodes: int,
        links: Mapping[Tuple[int, int] | Link, float],
        *,
        local_latency_ns: float = 90.0,
        hop_latency_ns: float = 110.0,
    ) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if local_latency_ns <= 0 or hop_latency_ns < 0:
            raise ValueError("latencies must be positive")
        self._n_nodes = n_nodes
        self._local_latency_ns = float(local_latency_ns)
        self._hop_latency_ns = float(hop_latency_ns)

        self._links: Dict[Link, float] = {}
        for raw_link, bandwidth in links.items():
            link = _as_link(*sorted(raw_link))
            a, b = sorted(link)
            if not (0 <= a < n_nodes and 0 <= b < n_nodes):
                raise ValueError(f"link ({a}, {b}) references an unknown node")
            if bandwidth <= 0:
                raise ValueError(f"link ({a}, {b}) has non-positive bandwidth")
            if link in self._links:
                raise ValueError(f"duplicate link ({a}, {b})")
            self._links[link] = float(bandwidth)

        self._graph = nx.Graph()
        self._graph.add_nodes_from(range(n_nodes))
        for link, bandwidth in self._links.items():
            a, b = sorted(link)
            self._graph.add_edge(a, b, bandwidth=bandwidth)
        if n_nodes > 1 and not nx.is_connected(self._graph):
            raise ValueError("interconnect graph must be connected")

        self._hops = dict(nx.all_pairs_shortest_path_length(self._graph))
        self._effective: Dict[Link, float] = {}
        for a, b in itertools.combinations(range(n_nodes), 2):
            self._effective[_as_link(a, b)] = self._compute_effective(a, b)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def full_mesh(
        cls,
        n_nodes: int,
        bandwidth_mbps: float,
        *,
        local_latency_ns: float = 90.0,
        hop_latency_ns: float = 110.0,
    ) -> "Interconnect":
        """A symmetric all-to-all interconnect (e.g. a 4-socket QPI ring that
        behaves symmetrically, as on the paper's Intel machine)."""
        links = {
            (a, b): bandwidth_mbps
            for a, b in itertools.combinations(range(n_nodes), 2)
        }
        if n_nodes == 1:
            links = {}
        return cls(
            n_nodes,
            links,
            local_latency_ns=local_latency_ns,
            hop_latency_ns=hop_latency_ns,
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self._n_nodes

    @property
    def nodes(self) -> range:
        return range(self._n_nodes)

    @property
    def links(self) -> Dict[Link, float]:
        """A copy of the link table (unordered pair -> bandwidth MB/s)."""
        return dict(self._links)

    @property
    def local_latency_ns(self) -> float:
        return self._local_latency_ns

    @property
    def hop_latency_ns(self) -> float:
        return self._hop_latency_ns

    def signature(self) -> Tuple:
        """Hashable identity of the link graph: node count, latencies, and
        the sorted (pair, bandwidth) table.  Two interconnects with equal
        signatures produce identical scores for every node set, so results
        keyed by the signature can be shared between them."""
        return (
            self._n_nodes,
            self._local_latency_ns,
            self._hop_latency_ns,
            tuple(
                (tuple(sorted(link)), bandwidth)
                for link, bandwidth in sorted(
                    self._links.items(), key=lambda item: tuple(sorted(item[0]))
                )
            ),
        )

    def bandwidth(self, a: int, b: int) -> float | None:
        """Direct link bandwidth between ``a`` and ``b``; None if not adjacent."""
        return self._links.get(_as_link(a, b))

    def hop_distance(self, a: int, b: int) -> int:
        """Number of interconnect hops between two nodes (0 for ``a == b``)."""
        if a == b:
            return 0
        return self._hops[a][b]

    @property
    def diameter(self) -> int:
        if self._n_nodes == 1:
            return 0
        return max(
            self._hops[a][b]
            for a, b in itertools.combinations(range(self._n_nodes), 2)
        )

    def latency_ns(self, a: int, b: int) -> float:
        """Memory access latency between a thread on node ``a`` and memory on
        node ``b``."""
        hops = self.hop_distance(a, b)
        return self._local_latency_ns + hops * self._hop_latency_ns

    # ------------------------------------------------------------------
    # Bandwidth model
    # ------------------------------------------------------------------

    def _compute_effective(self, a: int, b: int) -> float:
        hops = self._hops[a][b]
        if hops == 1:
            return self._links[_as_link(a, b)]
        # Among all shortest paths, pick the one with the widest bottleneck;
        # divide by the hop count to account for store-and-forward and for
        # sharing the intermediate links.
        best_bottleneck = 0.0
        for path in nx.all_shortest_paths(self._graph, a, b):
            bottleneck = min(
                self._links[_as_link(u, v)] for u, v in zip(path, path[1:])
            )
            best_bottleneck = max(best_bottleneck, bottleneck)
        return best_bottleneck / hops

    def effective_bandwidth(self, a: int, b: int) -> float:
        """Point-to-point bandwidth between two nodes (MB/s)."""
        if a == b:
            raise ValueError("effective_bandwidth is defined for distinct nodes")
        return self._effective[_as_link(a, b)]

    def aggregate_bandwidth(self, nodes: Iterable[int]) -> float:
        """The interconnect score of a node set (MB/s).

        Sum of pairwise effective bandwidths inside the set.  Single-node sets
        score 0: they generate no cross-node traffic.
        """
        node_list = sorted(set(nodes))
        for n in node_list:
            if not 0 <= n < self._n_nodes:
                raise ValueError(f"unknown node {n}")
        return sum(
            self._effective[_as_link(a, b)]
            for a, b in itertools.combinations(node_list, 2)
        )

    @property
    def is_symmetric(self) -> bool:
        """True when every node pair sees the same effective bandwidth.

        Symmetric interconnects (the paper's Intel machine) do not need an
        interconnect scheduling concern: every node set of a given size has
        the same score, so the score adds no information.
        """
        values = set(self._effective.values())
        return len(values) <= 1

    def mean_pairwise_latency_ns(self, nodes: Sequence[int]) -> float:
        """Average latency over ordered node pairs of a placement, including
        same-node pairs.  Used by the communication model in ``perfsim``."""
        node_list = list(nodes)
        if not node_list:
            raise ValueError("node set must not be empty")
        if len(node_list) == 1:
            return self._local_latency_ns
        total = 0.0
        count = 0
        for a in node_list:
            for b in node_list:
                total += self.latency_ns(a, b)
                count += 1
        return total / count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Interconnect(n_nodes={self._n_nodes}, links={len(self._links)}, "
            f"symmetric={self.is_symmetric})"
        )
