"""Machine topology substrate.

This subpackage models the hardware that the paper's methodology consumes:
NUMA nodes, hardware threads, the cache-sharing hierarchy (L2 groups, L3
groups), and the cross-node interconnect with per-link bandwidths.

The paper ran on two physical machines (a quad AMD Opteron 6272 and a quad
Intel Xeon E7-4830 v3).  We do not have that hardware, so
:mod:`repro.topology.presets` ships faithful *models* of both machines,
calibrated so that every structural statement in Section 4 of the paper holds
(see ``DESIGN.md`` for the calibration targets).
"""

from repro.topology.interconnect import Interconnect, Link
from repro.topology.machine import MachineTopology
from repro.topology.builder import TopologyBuilder
from repro.topology.presets import (
    PRESETS,
    amd_opteron_6272,
    intel_xeon_e7_4830_v3,
    amd_epyc_zen,
    intel_haswell_cod,
)
from repro.topology.stream import StreamProbe, build_bandwidth_table
from repro.topology.sysfs import machine_to_sysfs, machine_from_sysfs

__all__ = [
    "Interconnect",
    "Link",
    "MachineTopology",
    "TopologyBuilder",
    "PRESETS",
    "amd_opteron_6272",
    "intel_xeon_e7_4830_v3",
    "amd_epyc_zen",
    "intel_haswell_cod",
    "StreamProbe",
    "build_bandwidth_table",
    "machine_to_sysfs",
    "machine_from_sysfs",
]
