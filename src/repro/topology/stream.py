"""STREAM-like bandwidth probe for the simulated machine.

Section 4 of the paper: for the interconnect concern "it is simpler and more
accurate to measure the aggregate bandwidth with a benchmark (e.g. stream)
for each possible combination of nodes" than to derive it from the topology
the OS reports.  On real hardware that measurement is a run of McCalpin's
STREAM with threads pinned to the node combination; on our simulated machine
the probe queries the interconnect model and (optionally) adds the
run-to-run noise a real measurement would have.

The probe exists as a separate layer so that the concern code consumes a
*table of measurements* exactly as the paper's tooling does — the concern
never looks at link topology directly.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Sequence

import numpy as np

from repro.topology.machine import MachineTopology


class StreamProbe:
    """Measures the aggregate cross-node bandwidth of node combinations.

    Parameters
    ----------
    machine:
        The machine to probe.
    noise:
        Relative standard deviation of measurement noise (0 disables noise;
        presets are built with 0 so scores are exact and reproducible).
    repetitions:
        Number of simulated runs to average (real STREAM practice).
    seed:
        Seed for the noise generator.
    """

    def __init__(
        self,
        machine: MachineTopology,
        *,
        noise: float = 0.0,
        repetitions: int = 3,
        seed: int = 0,
    ) -> None:
        if noise < 0:
            raise ValueError("noise must be >= 0")
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        self._machine = machine
        self._noise = noise
        self._repetitions = repetitions
        self._rng = np.random.default_rng(seed)

    def measure(self, nodes: Iterable[int]) -> float:
        """Aggregate cross-node bandwidth (MB/s) of a node combination."""
        node_set = sorted(set(nodes))
        if not node_set:
            raise ValueError("node combination must not be empty")
        true_value = self._machine.interconnect.aggregate_bandwidth(node_set)
        if self._noise == 0.0 or true_value == 0.0:
            return true_value
        samples = true_value * (
            1.0 + self._noise * self._rng.standard_normal(self._repetitions)
        )
        return float(np.mean(samples))

    def measure_all_combinations(
        self, *, min_size: int = 1, max_size: int | None = None
    ) -> Dict[FrozenSet[int], float]:
        """Measure every node combination, as the paper's tooling does.

        For the 8-node AMD machine this is 255 combinations; the paper notes
        the whole procedure takes seconds.
        """
        n = self._machine.n_nodes
        if max_size is None:
            max_size = n
        if not 1 <= min_size <= max_size <= n:
            raise ValueError(
                f"invalid combination size range [{min_size}, {max_size}] "
                f"for {n} nodes"
            )
        table: Dict[FrozenSet[int], float] = {}
        for size in range(min_size, max_size + 1):
            for combo in itertools.combinations(range(n), size):
                table[frozenset(combo)] = self.measure(combo)
        return table


def build_bandwidth_table(
    machine: MachineTopology, *, sizes: Sequence[int] | None = None
) -> Dict[FrozenSet[int], float]:
    """Noise-free bandwidth table for a machine (used by the presets'
    interconnect concern).

    Parameters
    ----------
    machine:
        Machine to measure.
    sizes:
        Node-set sizes to include; all sizes when None.
    """
    probe = StreamProbe(machine, noise=0.0)
    if sizes is None:
        return probe.measure_all_combinations()
    table: Dict[FrozenSet[int], float] = {}
    for size in sizes:
        table.update(
            probe.measure_all_combinations(min_size=size, max_size=size)
        )
    return table
