"""Models of the machines used in the paper, plus two Section-8 machines.

Substitution note (see DESIGN.md section 2)
-------------------------------------------
The paper evaluates on two physical machines.  We do not have them, so these
presets are *calibrated reconstructions*: the cache hierarchy and core counts
come straight from Figure 2 of the paper, and the AMD interconnect link
bandwidths were chosen so that every structural statement in Section 4 holds
on the model:

* nodes (0,5) and (3,6) are two interconnect hops apart;
* {2,3,4,5} is the best-connected 4-node set, and its complement {0,1,6,7}
  survives enumeration as the placement that packs with it;
* the pair {0,1,4,5} / {2,3,6,7} is Pareto-dominated by the pair
  {0,2,4,6} / {1,3,5,7};
* the aggregate interconnect score of the full 8-node placement is
  35 000 MB/s, matching the paper's example score vector [16, 8, 35000] for a
  16-vCPU container placed on 8 nodes without SMT;
* the enumeration of Section 4 yields exactly 13 important placements with
  the composition the paper reports (two 8-node, eight 4-node, three 2-node).

The AMD links fall into six bandwidth classes.  Packages (dual-die MCMs) are
{0,1}, {2,3}, {4,5}, {6,7}; the two middle packages are the best connected,
the two outer packages the worst:

=====  =====================================  ================
class  links                                  bandwidth (MB/s)
=====  =====================================  ================
A      (2,3), (4,5)    middle intra-package   3250
D      (0,2), (1,3), (4,6), (5,7)  ladder     2000
B      (2,4), (3,5)    middle cross           1750
C      (0,1), (6,7)    outer intra-package    1500
E      (0,4), (1,5), (2,6), (3,7)  long       1000
F      (0,6), (1,7)    outer-outer            750
=====  =====================================  ================

Every node has exactly four links (the HyperTransport port budget of an
Opteron die) and the graph diameter is 2.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.topology.interconnect import Interconnect
from repro.topology.machine import MachineTopology

#: Link bandwidth classes of the modelled AMD interconnect (MB/s).
AMD_LINK_CLASSES: Dict[str, float] = {
    "A": 3250.0,
    "B": 1750.0,
    "C": 1500.0,
    "D": 2000.0,
    "E": 1000.0,
    "F": 750.0,
}

#: Which links belong to which class.
AMD_LINKS_BY_CLASS: Dict[str, Tuple[Tuple[int, int], ...]] = {
    "A": ((2, 3), (4, 5)),
    "B": ((2, 4), (3, 5)),
    "C": ((0, 1), (6, 7)),
    "D": ((0, 2), (1, 3), (4, 6), (5, 7)),
    "E": ((0, 4), (1, 5), (2, 6), (3, 7)),
    "F": ((0, 6), (1, 7)),
}


def _amd_links() -> Dict[Tuple[int, int], float]:
    links: Dict[Tuple[int, int], float] = {}
    for cls, pairs in AMD_LINKS_BY_CLASS.items():
        for pair in pairs:
            links[pair] = AMD_LINK_CLASSES[cls]
    return links


def amd_opteron_6272() -> MachineTopology:
    """The paper's quad AMD Opteron 6272 ("Interlagos").

    8 NUMA nodes, 64 cores.  Pairs of cores form a Bulldozer module sharing
    the instruction front-end, a 2 MB L2 cache and the FP units, so an L2
    group holds 2 hardware threads and there are 4 modules (8 cores) per
    node.  Each node has an 8 MB L3 cache and its own memory controller.
    The interconnect is asymmetric (see module docstring).
    """
    return MachineTopology(
        name="amd-opteron-6272",
        n_nodes=8,
        l2_groups_per_node=4,
        threads_per_l2=2,
        interconnect=Interconnect(
            8,
            _amd_links(),
            local_latency_ns=90.0,
            hop_latency_ns=130.0,
        ),
        dram_bandwidth_mbps=12_000.0,
        l3_size_mb=8.0,
        l2_size_kb=2_048.0,
        description=(
            "Quad AMD Opteron 6272 model; asymmetric HyperTransport "
            "interconnect calibrated to the structural claims of Section 4 "
            "of Funston et al., ATC'18"
        ),
    )


def intel_xeon_e7_4830_v3() -> MachineTopology:
    """The paper's quad Intel Xeon E7-4830 v3 ("Haswell-EX").

    4 NUMA nodes, 12 physical cores per node, 2-way SMT: 96 hardware
    threads.  An L2 group is one physical core (2 hyperthreads, 256 KB L2);
    each node has a 30 MB L3.  The QPI interconnect is symmetric, so the
    machine needs no interconnect scheduling concern (Section 4).
    """
    return MachineTopology(
        name="intel-xeon-e7-4830-v3",
        n_nodes=4,
        l2_groups_per_node=12,
        threads_per_l2=2,
        interconnect=Interconnect.full_mesh(
            4,
            9_000.0,
            local_latency_ns=80.0,
            hop_latency_ns=150.0,
        ),
        dram_bandwidth_mbps=35_000.0,
        l3_size_mb=30.0,
        l2_size_kb=256.0,
        description=(
            "Quad Intel Xeon E7-4830 v3 model; symmetric QPI interconnect"
        ),
    )


def amd_epyc_zen() -> MachineTopology:
    """A Zen-like machine for the Section 8 portability discussion.

    AMD's Zen separates L3 sharing from memory-controller sharing: each node
    holds two core complexes (CCX) with private L3 caches in front of one
    memory controller.  The machine model expresses this with
    ``l3_groups_per_node=2``; the concern layer then scores L3 caches and
    NUMA nodes independently.
    """
    return MachineTopology(
        name="amd-epyc-zen",
        n_nodes=4,
        l2_groups_per_node=8,
        threads_per_l2=2,
        l3_groups_per_node=2,
        interconnect=Interconnect.full_mesh(
            4,
            10_000.0,
            local_latency_ns=85.0,
            hop_latency_ns=100.0,
        ),
        dram_bandwidth_mbps=30_000.0,
        l3_size_mb=8.0,
        l2_size_kb=512.0,
        description="Zen-like machine: two L3 complexes per memory controller",
    )


def intel_haswell_cod() -> MachineTopology:
    """A Haswell-E cluster-on-die-like machine for Section 8.

    Cluster-on-die splits one socket into two NUMA nodes with an asymmetric
    on-die link between them that is much faster than the socket-to-socket
    QPI links, producing an asymmetric interconnect out of a symmetric
    2-socket system.
    """
    links: Dict[Tuple[int, int], float] = {
        # on-die links between the two halves of each socket
        (0, 1): 24_000.0,
        (2, 3): 24_000.0,
        # cross-socket QPI links
        (0, 2): 8_000.0,
        (1, 3): 8_000.0,
        (0, 3): 8_000.0,
        (1, 2): 8_000.0,
    }
    return MachineTopology(
        name="intel-haswell-cod",
        n_nodes=4,
        l2_groups_per_node=6,
        threads_per_l2=2,
        interconnect=Interconnect(
            4,
            links,
            local_latency_ns=80.0,
            hop_latency_ns=85.0,
        ),
        dram_bandwidth_mbps=28_000.0,
        l3_size_mb=15.0,
        l2_size_kb=256.0,
        description=(
            "Cluster-on-die machine: fast on-die node pairs, slower QPI"
        ),
    )


#: Short preset key -> factory, the one catalog of built-in machine
#: models.  The CLI's ``--machine`` choices, :class:`ScheduleConfig`, and
#: the sharded service's worker bootstrap all resolve through this map,
#: so a new preset registered here reaches every surface at once.
PRESETS: Dict[str, Callable[[], MachineTopology]] = {
    "amd": amd_opteron_6272,
    "intel": intel_xeon_e7_4830_v3,
    "zen": amd_epyc_zen,
    "cod": intel_haswell_cod,
}
