"""The machine model: NUMA nodes, hardware threads, and cache groups.

The unit every other module works in is the *hardware thread* (what the OS
calls a logical CPU).  Threads are grouped by the resources they share:

* an **L2 group** is the set of hardware threads that share an L2 cache and
  the per-core pipeline resources.  On the paper's AMD machine an L2 group is
  a Bulldozer *module* (two cores sharing L2, instruction front-end, and FP
  units); on the Intel machine it is a physical core (two SMT hyperthreads).
  The paper's "L2/SMT" scheduling concern counts these groups.
* an **L3 group** is the set of threads sharing an L3 cache.  On both paper
  machines this is a whole NUMA node; ``l3_groups_per_node > 1`` models
  designs like AMD Zen where several L3 complexes share one memory controller
  (Section 8 of the paper).
* a **node** owns a memory controller and local DRAM.

Thread numbering is node-major and group-major: node ``n`` owns threads
``[n * threads_per_node, (n+1) * threads_per_node)``, and within a node the
threads of one L2 group are contiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.topology.interconnect import Interconnect


@dataclass(frozen=True)
class MachineTopology:
    """Immutable description of a NUMA machine.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"amd-opteron-6272"``.
    n_nodes:
        Number of NUMA nodes.
    l2_groups_per_node:
        Number of L2 cache groups (modules / physical cores) per node.
    threads_per_l2:
        Hardware threads per L2 group (the SMT / CMT arity; 2 on both paper
        machines).
    interconnect:
        Cross-node link graph.  Must have the same number of nodes.
    dram_bandwidth_mbps:
        Local DRAM bandwidth of one node, in MB/s (STREAM-like measured
        value, not the nominal channel bandwidth).
    l3_size_mb:
        Capacity of one L3 cache.
    l2_size_kb:
        Capacity of one L2 cache.
    l3_groups_per_node:
        L3 caches per node (1 on both paper machines; >1 models Zen-style
        split L3).
    description:
        Optional free-form provenance notes.
    """

    name: str
    n_nodes: int
    l2_groups_per_node: int
    threads_per_l2: int
    interconnect: Interconnect
    dram_bandwidth_mbps: float
    l3_size_mb: float
    l2_size_kb: float
    l3_groups_per_node: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("a machine needs at least one node")
        if self.l2_groups_per_node < 1 or self.threads_per_l2 < 1:
            raise ValueError("cache group shape must be positive")
        if self.l3_groups_per_node < 1:
            raise ValueError("l3_groups_per_node must be >= 1")
        if self.l2_groups_per_node % self.l3_groups_per_node != 0:
            raise ValueError(
                "L2 groups must divide evenly into L3 groups: "
                f"{self.l2_groups_per_node} L2 groups vs "
                f"{self.l3_groups_per_node} L3 groups per node"
            )
        if self.interconnect.n_nodes != self.n_nodes:
            raise ValueError(
                f"interconnect models {self.interconnect.n_nodes} nodes, "
                f"machine has {self.n_nodes}"
            )
        if self.dram_bandwidth_mbps <= 0:
            raise ValueError("dram_bandwidth_mbps must be positive")
        if self.l3_size_mb <= 0 or self.l2_size_kb <= 0:
            raise ValueError("cache sizes must be positive")

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------

    @property
    def threads_per_node(self) -> int:
        return self.l2_groups_per_node * self.threads_per_l2

    @property
    def total_threads(self) -> int:
        return self.n_nodes * self.threads_per_node

    @property
    def l2_count(self) -> int:
        """Total number of L2 groups (the paper's ``L2Count``)."""
        return self.n_nodes * self.l2_groups_per_node

    @property
    def l2_capacity(self) -> int:
        """Hardware threads per L2 group (the paper's ``L2Capacity``)."""
        return self.threads_per_l2

    @property
    def l3_count(self) -> int:
        """Total number of L3 caches (the paper's ``L3Count``)."""
        return self.n_nodes * self.l3_groups_per_node

    @property
    def l3_capacity(self) -> int:
        """Hardware threads per L3 cache (the paper's ``L3Capacity``)."""
        return self.threads_per_node // self.l3_groups_per_node

    @property
    def nodes(self) -> range:
        return range(self.n_nodes)

    # ------------------------------------------------------------------
    # Thread <-> group arithmetic
    # ------------------------------------------------------------------

    def node_of_thread(self, thread: int) -> int:
        self._check_thread(thread)
        return thread // self.threads_per_node

    def l2_group_of_thread(self, thread: int) -> int:
        """Global L2 group index of a hardware thread."""
        self._check_thread(thread)
        return thread // self.threads_per_l2

    def l3_group_of_thread(self, thread: int) -> int:
        """Global L3 group index of a hardware thread."""
        self._check_thread(thread)
        return thread // (self.threads_per_node // self.l3_groups_per_node)

    def threads_of_node(self, node: int) -> range:
        self._check_node(node)
        start = node * self.threads_per_node
        return range(start, start + self.threads_per_node)

    def threads_of_l2_group(self, group: int) -> range:
        if not 0 <= group < self.l2_count:
            raise ValueError(f"unknown L2 group {group}")
        start = group * self.threads_per_l2
        return range(start, start + self.threads_per_l2)

    def l2_groups_of_node(self, node: int) -> range:
        self._check_node(node)
        start = node * self.l2_groups_per_node
        return range(start, start + self.l2_groups_per_node)

    def l3_groups_of_node(self, node: int) -> range:
        self._check_node(node)
        start = node * self.l3_groups_per_node
        return range(start, start + self.l3_groups_per_node)

    def _check_thread(self, thread: int) -> None:
        if not 0 <= thread < self.total_threads:
            raise ValueError(
                f"thread {thread} out of range [0, {self.total_threads})"
            )

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range [0, {self.n_nodes})")

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def fingerprint(self) -> Tuple:
        """Hashable identity of everything placement enumeration depends on.

        Two machines with equal fingerprints have identical concern sets and
        therefore identical important placements for every container size,
        so enumeration results keyed by the fingerprint can be shared.  The
        name is part of the fingerprint because placements and simulators
        check machine identity by name; sharing results across differently
        named (if structurally identical) machines would let a placement
        built for one machine leak into another's simulator.

        The tuple is computed once and memoized — fleet schedulers call
        this per host per request, and every field it reads is frozen.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            cached = (
                self.name,
                self.n_nodes,
                self.l2_groups_per_node,
                self.threads_per_l2,
                self.l3_groups_per_node,
                self.dram_bandwidth_mbps,
                self.l3_size_mb,
                self.l2_size_kb,
                self.interconnect.signature(),
            )
            # object.__setattr__-free: frozen dataclasses still own a
            # plain __dict__, and writing to it does not trip the freeze.
            self.__dict__["_fingerprint"] = cached
        return cached

    def total_dram_bandwidth(self, nodes: Sequence[int] | None = None) -> float:
        """Aggregate local DRAM bandwidth over a node set (all nodes if None)."""
        count = self.n_nodes if nodes is None else len(set(nodes))
        return count * self.dram_bandwidth_mbps

    def summary(self) -> str:
        """A human-readable one-paragraph description (for example scripts)."""
        lines = [
            f"{self.name}: {self.n_nodes} NUMA nodes, "
            f"{self.total_threads} hardware threads",
            f"  per node: {self.l2_groups_per_node} L2 groups x "
            f"{self.threads_per_l2} threads, "
            f"{self.l3_groups_per_node} L3 cache(s) of {self.l3_size_mb} MB, "
            f"DRAM {self.dram_bandwidth_mbps / 1000:.1f} GB/s",
            f"  interconnect: "
            f"{'symmetric' if self.interconnect.is_symmetric else 'asymmetric'}, "
            f"{len(self.interconnect.links)} links, "
            f"diameter {self.interconnect.diameter}",
        ]
        if self.description:
            lines.append(f"  {self.description}")
        return "\n".join(lines)
