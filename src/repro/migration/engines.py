"""Migration engines and their cost models.

The constants in :class:`MigrationCostConstants` were calibrated against
Table 2 of the paper (see ``benchmarks/bench_table2_migration.py`` for the
side-by-side comparison).  The structural story they encode:

* **Default Linux** moves anonymous pages only, mostly single-threaded.
  Its base copy rate degrades with the container's task count (each task's
  cpuset must be updated and its pages unmapped/remapped), and every
  distinct process adds a fixed page-table-walk cost — which is why TPC-C
  (hundreds of server processes) takes 431 s where the same amount of
  memory in one address space would take tens of seconds.
* **Fast migration** (the paper's method) freezes the container, then
  copies with concurrent per-node worker threads — including the page
  cache, which can be most of the footprint (93% for BLAST).  Throughput
  only mildly degrades with process count (work distribution overhead).
* **Throttled migration** trades time for transparency: the container keeps
  running while a bandwidth-limited copier works in the background, costing
  roughly the bandwidth share it steals from the node's memory controller.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.migration.memory import ContainerMemory


@dataclass(frozen=True)
class MigrationCostConstants:
    """Calibrated constants of the three cost models (rates in GB/s,
    times in seconds)."""

    # Default Linux
    linux_base_rate_gbps: float = 0.40
    linux_task_slowdown: float = 1.0 / 150.0  # rate /= 1 + tasks * this
    # Every process's cpuset rebind rescans the container's mappings:
    # seconds += n_processes * anonymous_gb * this.
    linux_process_rescan_s_per_gb: float = 0.175
    linux_fixed_s: float = 0.15
    linux_freeze_base_s: float = 2.0  # "completely freezes the applications
    linux_freeze_fraction: float = 0.05  # for several seconds"
    linux_overhead_fraction: float = 0.20  # "a overhead of 20% at best"

    # Fast migration (the paper's method)
    fast_base_rate_gbps: float = 5.5
    fast_process_slowdown: float = 1.0 / 200.0
    fast_fixed_s: float = 0.08

    # Throttled migration
    throttle_default_mbps: float = 620.0

    def __post_init__(self) -> None:
        if self.linux_base_rate_gbps <= 0 or self.fast_base_rate_gbps <= 0:
            raise ValueError("copy rates must be positive")
        if self.throttle_default_mbps <= 0:
            raise ValueError("throttle bandwidth must be positive")


@dataclass(frozen=True)
class MigrationResult:
    """Outcome of one migration."""

    method: str
    seconds: float
    migrated_gb: float
    left_behind_gb: float  # page cache the method cannot move
    frozen_seconds: float  # how long the container was stopped
    overhead_fraction: float  # throughput loss while migrating (if running)

    @property
    def effective_rate_gbps(self) -> float:
        if self.seconds <= 0:
            return float("inf")
        return self.migrated_gb / self.seconds


class MigrationEngine(abc.ABC):
    """Common interface of the three migration mechanisms."""

    #: Identifier used in results and reports.
    name: str

    def __init__(
        self, constants: MigrationCostConstants | None = None
    ) -> None:
        self.constants = constants or MigrationCostConstants()

    @abc.abstractmethod
    def migrate(self, memory: ContainerMemory) -> MigrationResult:
        """Migrate a container's memory to another node set."""

    @property
    @abc.abstractmethod
    def moves_page_cache(self) -> bool:
        """Whether the mechanism migrates the page cache."""

    @property
    @abc.abstractmethod
    def freezes_container(self) -> bool:
        """Whether the container is stopped during migration."""


class DefaultLinuxMigrator(MigrationEngine):
    """The stock kernel migration path (cpuset rebind + move_pages)."""

    name = "default-linux"

    @property
    def moves_page_cache(self) -> bool:
        return False

    @property
    def freezes_container(self) -> bool:
        return False  # but it stalls the application for seconds anyway

    def migrate(self, memory: ContainerMemory) -> MigrationResult:
        c = self.constants
        rate = c.linux_base_rate_gbps / (
            1.0 + memory.n_tasks * c.linux_task_slowdown
        )
        seconds = (
            c.linux_fixed_s
            + memory.anonymous_gb / rate
            + memory.n_processes
            * memory.anonymous_gb
            * c.linux_process_rescan_s_per_gb
        )
        frozen = min(
            seconds, c.linux_freeze_base_s + c.linux_freeze_fraction * seconds
        )
        return MigrationResult(
            method=self.name,
            seconds=seconds,
            migrated_gb=memory.anonymous_gb,
            left_behind_gb=memory.page_cache_gb,
            frozen_seconds=frozen,
            overhead_fraction=c.linux_overhead_fraction,
        )


class FastMigrator(MigrationEngine):
    """The paper's method: freeze, then copy everything with concurrent
    workers (including the page cache)."""

    name = "fast"

    @property
    def moves_page_cache(self) -> bool:
        return True

    @property
    def freezes_container(self) -> bool:
        return True

    def migrate(self, memory: ContainerMemory) -> MigrationResult:
        c = self.constants
        rate = c.fast_base_rate_gbps / (
            1.0 + memory.n_processes * c.fast_process_slowdown
        )
        seconds = c.fast_fixed_s + memory.total_gb / rate
        return MigrationResult(
            method=self.name,
            seconds=seconds,
            migrated_gb=memory.total_gb,
            left_behind_gb=0.0,
            frozen_seconds=seconds,  # frozen for the whole (short) copy
            overhead_fraction=1.0,  # while frozen, no progress at all
        )


class ThrottledMigrator(MigrationEngine):
    """The non-freezing variant for latency-sensitive containers.

    The copier is limited to ``bandwidth_mbps``; the running container loses
    roughly the DRAM bandwidth share the copier consumes.  Section 7: for
    WiredTiger the overhead stays between 3% and 6% while migration takes
    about a minute.
    """

    name = "throttled"

    def __init__(
        self,
        constants: MigrationCostConstants | None = None,
        *,
        bandwidth_mbps: float | None = None,
        node_dram_bandwidth_mbps: float = 12_000.0,
    ) -> None:
        super().__init__(constants)
        self.bandwidth_mbps = (
            bandwidth_mbps
            if bandwidth_mbps is not None
            else self.constants.throttle_default_mbps
        )
        if self.bandwidth_mbps <= 0:
            raise ValueError("bandwidth_mbps must be positive")
        if node_dram_bandwidth_mbps <= 0:
            raise ValueError("node_dram_bandwidth_mbps must be positive")
        self.node_dram_bandwidth_mbps = node_dram_bandwidth_mbps

    @property
    def moves_page_cache(self) -> bool:
        return True

    @property
    def freezes_container(self) -> bool:
        return False

    def migrate(self, memory: ContainerMemory) -> MigrationResult:
        seconds = memory.total_gb * 1024.0 / self.bandwidth_mbps
        overhead = self.bandwidth_mbps / self.node_dram_bandwidth_mbps
        return MigrationResult(
            method=self.name,
            seconds=seconds,
            migrated_gb=memory.total_gb,
            left_behind_gb=0.0,
            frozen_seconds=0.0,
            overhead_fraction=min(0.5, overhead),
        )
