"""Migration planning: is online placement worth the move?

Section 7 closes with the operational guidance this module encodes: "the
migration overhead is proportional to the amount of memory used by the
container ... Using the container's memory footprint, the user can estimate
whether the migration cost warrants an online deployment of the placement
algorithm, or if it is preferable to use it offline for placement of
recurring jobs."

The fleet scheduler consumes this advice live: the lifecycle engine's
rebalancer (:class:`repro.scheduler.lifecycle.LifecycleScheduler`) calls
:meth:`MigrationPlanner.advise` for every candidate container move when a
request is rejected due to fragmentation, skips containers the planner
deems offline-only, and executes a plan only when the summed migration
time beats the configured rejection penalty
(:class:`repro.scheduler.lifecycle.RebalanceConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.migration.engines import (
    DefaultLinuxMigrator,
    FastMigrator,
    MigrationEngine,
    MigrationResult,
    ThrottledMigrator,
)
from repro.migration.memory import ContainerMemory
from repro.perfsim.workload import WorkloadProfile


@dataclass(frozen=True)
class MigrationAdvice:
    """Recommendation for one container."""

    memory: ContainerMemory
    recommended: str  # engine name, or "offline"
    results: dict  # engine name -> MigrationResult
    probe_migrations: int
    total_probe_seconds: float
    reason: str


class MigrationPlanner:
    """Chooses a migration strategy for the online placement workflow.

    The online workflow (Section 1, step 4) runs the container in two
    placements and then moves it to the chosen one, so up to
    ``probe_migrations`` migrations happen during the probing phase.

    Parameters
    ----------
    latency_sensitive_threshold:
        Containers whose ``comm_latency_sensitivity`` exceeds this are not
        frozen; they get the throttled engine.
    max_online_seconds:
        If even the best engine needs more probing time than this, advise
        computing the placement offline (for recurring jobs).
    """

    def __init__(
        self,
        *,
        engines: Sequence[MigrationEngine] | None = None,
        latency_sensitive_threshold: float = 0.7,
        max_online_seconds: float = 180.0,
    ) -> None:
        if engines is None:
            engines = (DefaultLinuxMigrator(), FastMigrator(), ThrottledMigrator())
        if not engines:
            raise ValueError("at least one engine is required")
        self.engines = list(engines)
        self.latency_sensitive_threshold = latency_sensitive_threshold
        self.max_online_seconds = max_online_seconds

    def evaluate(self, memory: ContainerMemory) -> dict:
        """Cost of every engine for this container."""
        return {engine.name: engine.migrate(memory) for engine in self.engines}

    def advise(
        self,
        profile: WorkloadProfile,
        *,
        probe_migrations: int = 2,
    ) -> MigrationAdvice:
        """Pick an engine (or recommend offline placement) for a workload.

        The lifecycle rebalancer calls this with ``probe_migrations=1``
        (a rebalancing move is a single migration, not a probe pair) and
        treats a ``"offline"`` recommendation as "this container is too
        expensive to move online — pick another victim".
        """
        if probe_migrations < 1:
            raise ValueError("probe_migrations must be >= 1")
        memory = ContainerMemory.from_profile(profile)
        results = self.evaluate(memory)

        latency_sensitive = (
            profile.comm_latency_sensitivity > self.latency_sensitive_threshold
        )
        candidates: List[str] = []
        for engine in self.engines:
            if latency_sensitive and engine.freezes_container:
                continue
            if isinstance(engine, DefaultLinuxMigrator):
                # Strictly dominated for our purposes: slower and loses the
                # page cache; kept in results for comparison only.
                continue
            candidates.append(engine.name)
        if not candidates:
            candidates = [self.engines[0].name]

        best = min(candidates, key=lambda name: results[name].seconds)
        total = probe_migrations * results[best].seconds
        if total > self.max_online_seconds:
            return MigrationAdvice(
                memory=memory,
                recommended="offline",
                results=results,
                probe_migrations=probe_migrations,
                total_probe_seconds=total,
                reason=(
                    f"probing would spend {total:.0f}s migrating "
                    f"{memory.total_gb:.1f} GB; compute the placement "
                    f"offline and reuse it for recurring runs"
                ),
            )
        label = (
            "non-freezing (latency-sensitive)"
            if latency_sensitive
            else best
        )
        reason = (
            f"{label} migration moves {memory.total_gb:.1f} GB in "
            f"{results[best].seconds:.1f}s"
        )
        return MigrationAdvice(
            memory=memory,
            recommended=best,
            results=results,
            probe_migrations=probe_migrations,
            total_probe_seconds=total,
            reason=reason,
        )
