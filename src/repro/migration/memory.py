"""Container memory description for the migration cost models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfsim.workload import WorkloadProfile


@dataclass(frozen=True)
class ContainerMemory:
    """What a container has resident when a migration starts.

    Table 2's "Memory (GB)" column "includes processes' memory and the page
    cache associated with the container" — both matter, because the paper's
    fast migrator moves the page cache while default Linux leaves it behind
    (and then pays remote-access penalties or re-reads from disk).
    """

    anonymous_gb: float
    page_cache_gb: float
    n_tasks: int
    n_processes: int

    def __post_init__(self) -> None:
        if self.anonymous_gb < 0 or self.page_cache_gb < 0:
            raise ValueError("memory sizes must be non-negative")
        if self.anonymous_gb + self.page_cache_gb <= 0:
            raise ValueError("container must have some memory")
        if self.n_tasks < 1:
            raise ValueError("n_tasks must be >= 1")
        if not 1 <= self.n_processes <= self.n_tasks:
            raise ValueError("n_processes must be in [1, n_tasks]")

    @classmethod
    def from_profile(cls, profile: WorkloadProfile) -> "ContainerMemory":
        return cls(
            anonymous_gb=profile.anonymous_gb,
            page_cache_gb=profile.page_cache_gb,
            n_tasks=profile.n_tasks,
            n_processes=profile.n_processes,
        )

    @property
    def total_gb(self) -> float:
        return self.anonymous_gb + self.page_cache_gb

    @property
    def page_cache_fraction(self) -> float:
        return self.page_cache_gb / self.total_gb
