"""Container memory migration (Section 7, Table 2).

Changing a container's placement may move it to different NUMA nodes, which
requires migrating its memory.  The paper improves on Lepers et al.'s
freeze-and-copy approach by also migrating the page cache and reducing
locking overhead, and offers a throttled non-freezing mode for
latency-sensitive containers.  This subpackage models all three mechanisms
with cost models calibrated to Table 2:

* :class:`~repro.migration.engines.DefaultLinuxMigrator` — the stock kernel
  path: anonymous memory only (the page cache stays behind!),
  single-threaded, with per-task and per-process cpuset overhead that makes
  many-process containers (TPC-C) pathologically slow;
* :class:`~repro.migration.engines.FastMigrator` — the paper's method:
  parallel copy workers, page cache included, container frozen during the
  move (not suitable for latency-sensitive services);
* :class:`~repro.migration.engines.ThrottledMigrator` — the non-freezing
  variant: bandwidth-limited background copy whose throughput overhead is
  proportional to the bandwidth it steals.

:mod:`repro.migration.planner` turns the cost models into the decision
support Section 7 ends with: is online placement worth the migration cost
for this container, or should the placement be computed offline?
"""

from repro.migration.memory import ContainerMemory
from repro.migration.engines import (
    MigrationEngine,
    MigrationResult,
    DefaultLinuxMigrator,
    FastMigrator,
    ThrottledMigrator,
    MigrationCostConstants,
)
from repro.migration.planner import MigrationPlanner, MigrationAdvice

__all__ = [
    "ContainerMemory",
    "MigrationEngine",
    "MigrationResult",
    "DefaultLinuxMigrator",
    "FastMigrator",
    "ThrottledMigrator",
    "MigrationCostConstants",
    "MigrationPlanner",
    "MigrationAdvice",
]
