"""Fleet-scale placement scheduling (the paper's Section 7 writ large).

The single-machine pipeline — concerns, important placements, the
two-observation model — becomes the decision kernel of a cluster
scheduler: a stream of heterogeneous container requests is placed across
many simulated hosts under pluggable fleet policies, with per-request
decision traces and fleet-level utilization/violation reporting.

The subsystem exists to exercise the two scale optimizations it ships
with: the topology-fingerprint memo cache around placement enumeration
(:mod:`repro.core.memo`) and the batched prediction path
(:meth:`repro.core.model.PlacementModel.predict_batch`), which together
turn a per-request cost into a per-machine-shape cost.

:mod:`repro.scheduler.lifecycle` extends the one-shot scheduler into an
online system: timestamped arrival/departure events, fleet-level release,
fragmentation tracking, and a migration-driven rebalancer that consults
:class:`repro.migration.planner.MigrationPlanner` before moving anything.
"""

from repro.scheduler.admission import (
    SHED_POLICIES,
    AdmissionController,
    AdmissionDecision,
    AdmissionStats,
)
from repro.scheduler.capacity import (
    CapacityTracker,
    CapacityVector,
    brute_force_capacity,
    initial_capacity,
)
from repro.scheduler.config import ScheduleConfig, add_schedule_arguments
from repro.scheduler.faults import (
    FAULT_KINDS,
    FaultAction,
    FaultInjectingClient,
    FaultPlan,
    ShardFaultSchedule,
)
from repro.scheduler.events import (
    EventKind,
    EventQueue,
    LifecycleEvent,
    events_from_requests,
)
from repro.scheduler.fleet import (
    Fleet,
    FleetHost,
    NodesBusyError,
    UnknownNodeError,
    minimal_l2_share,
    minimal_node_count,
    minimal_shape,
)
from repro.scheduler.index import FleetIndex
from repro.scheduler.lifecycle import (
    ChurnStats,
    FragmentationSample,
    LifecycleScheduler,
    MigrationRecord,
    RebalanceConfig,
)
from repro.scheduler.policies import (
    POLICIES,
    FirstFitFleetPolicy,
    FleetDecision,
    FleetPolicy,
    GoalAwareFleetPolicy,
    SpreadFleetPolicy,
    make_policy,
)
from repro.scheduler.registry import ModelRegistry
from repro.scheduler.requests import (
    ArrivalPhase,
    PlacementRequest,
    drift_phase_schedule,
    generate_churn_stream,
    generate_request_stream,
)
from repro.scheduler.scheduler import (
    FleetReport,
    FleetScheduler,
    GradedDecision,
    grade_decision,
)
from repro.scheduler.service import (
    SchedulerService,
    ServiceStats,
    merge_churn_stats,
)
from repro.scheduler.shard import (
    InlineShardClient,
    ProcessShardClient,
    ShardCrashError,
    ShardError,
    ShardSummary,
    ShardTimeoutError,
    ShardWorker,
)
from repro.scheduler.supervisor import (
    HEALTH_DOWN,
    HEALTH_RECOVERING,
    HEALTH_STATES,
    HEALTH_SUSPECT,
    HEALTH_UP,
    JournalEntry,
    MUTATING_OPS,
    ShardDownError,
    ShardJournal,
    ShardSupervisor,
)

__all__ = [
    "add_schedule_arguments",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStats",
    "brute_force_capacity",
    "CapacityTracker",
    "CapacityVector",
    "initial_capacity",
    "SHED_POLICIES",
    "FAULT_KINDS",
    "FaultAction",
    "FaultInjectingClient",
    "FaultPlan",
    "HEALTH_DOWN",
    "HEALTH_RECOVERING",
    "HEALTH_STATES",
    "HEALTH_SUSPECT",
    "HEALTH_UP",
    "InlineShardClient",
    "JournalEntry",
    "MUTATING_OPS",
    "ShardCrashError",
    "ShardDownError",
    "ShardError",
    "ShardFaultSchedule",
    "ShardJournal",
    "ShardSupervisor",
    "ShardTimeoutError",
    "make_policy",
    "merge_churn_stats",
    "POLICIES",
    "ProcessShardClient",
    "ScheduleConfig",
    "SchedulerService",
    "ServiceStats",
    "ShardSummary",
    "ShardWorker",
    "ArrivalPhase",
    "ChurnStats",
    "drift_phase_schedule",
    "EventKind",
    "EventQueue",
    "Fleet",
    "FleetHost",
    "FleetDecision",
    "FleetIndex",
    "FleetPolicy",
    "FirstFitFleetPolicy",
    "FragmentationSample",
    "LifecycleEvent",
    "LifecycleScheduler",
    "MigrationRecord",
    "NodesBusyError",
    "RebalanceConfig",
    "SpreadFleetPolicy",
    "GoalAwareFleetPolicy",
    "UnknownNodeError",
    "events_from_requests",
    "minimal_node_count",
    "minimal_l2_share",
    "minimal_shape",
    "ModelRegistry",
    "PlacementRequest",
    "generate_churn_stream",
    "generate_request_stream",
    "FleetReport",
    "FleetScheduler",
    "GradedDecision",
    "grade_decision",
]
