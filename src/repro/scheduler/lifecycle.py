"""The dynamic lifecycle engine: churn, fragmentation, and rebalancing.

PR 1's :class:`~repro.scheduler.scheduler.FleetScheduler` is one-shot —
containers arrive, nothing ever leaves.  Real warehouse-scale placement is
a *churn* problem: departures punch holes in the fleet's node blocks, and
over time the spare capacity fragments into per-host chunks too small for
the next container even though the fleet as a whole has plenty of free
nodes.  :class:`LifecycleScheduler` models that regime end to end:

1. A request stream with arrival times and lifetimes (see
   :func:`~repro.scheduler.requests.generate_churn_stream`) becomes a
   time-ordered event queue (:mod:`repro.scheduler.events`).
2. Arrivals go through any :class:`~repro.scheduler.policies.FleetPolicy`
   exactly as in the one-shot scheduler, and are graded with the same
   shared :func:`~repro.scheduler.scheduler.grade_decision`.
3. Departures free their node blocks through
   :meth:`~repro.scheduler.fleet.Fleet.release` (request-id -> host index,
   O(1)).
4. When an arrival is rejected for *capacity* while the fleet still has
   enough free nodes in aggregate — a fragmentation reject — the
   **rebalancer** consolidates: it picks the host closest to fitting the
   request, selects the cheapest-to-move containers on it
   (migration cost is proportional to memory footprint, Section 7 of the
   paper), prices each move through
   :class:`~repro.migration.planner.MigrationPlanner`, and executes the
   plan only if the total migration time beats the configured rejection
   penalty.  Every executed move is recorded as a
   :class:`MigrationRecord` decision trace, and the arrival is retried.

The engine samples a :class:`FragmentationSample` after every event, so
reports can plot largest-free-block and fit-failure trajectories over
simulated time — the observable the rebalancer exists to improve (see
``benchmarks/bench_churn.py`` for the with/without comparison).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

from repro.core.blockscores import block_score_table
from repro.core.placements import Placement
from repro.migration.memory import ContainerMemory
from repro.migration.planner import MigrationPlanner
from repro.scheduler.events import EventKind, LifecycleEvent, events_from_requests
from repro.scheduler.fleet import Fleet, FleetHost, scores_match
from repro.scheduler.policies import FleetPolicy, GoalAwareFleetPolicy
from repro.scheduler.registry import ModelRegistry
from repro.scheduler.requests import PlacementRequest
from repro.scheduler.scheduler import (
    FleetReport,
    GradedDecision,
    grade_decision,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.serving.online import OnlineLearner


@dataclass(frozen=True)
class FragmentationSample:
    """Fleet capacity state right after one lifecycle event."""

    time: float
    free_nodes_total: int
    largest_free_block: int
    active_containers: int
    #: Cumulative capacity rejections (after any rebalance retry) so far.
    fit_failures: int

    def to_dict(self) -> Dict:
        return {
            "time": self.time,
            "free_nodes_total": self.free_nodes_total,
            "largest_free_block": self.largest_free_block,
            "active_containers": self.active_containers,
            "fit_failures": self.fit_failures,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FragmentationSample":
        return cls(**data)


@dataclass(frozen=True)
class MigrationRecord:
    """One executed container move, with its priced cost — the decision
    trace of the rebalancer."""

    time: float
    request_id: int
    workload: str
    source_host: int
    dest_host: int
    engine: str
    seconds: float
    moved_gb: float
    #: The arriving request whose fragmentation reject triggered the move.
    triggered_by: int

    def describe(self) -> str:
        return (
            f"t={self.time:9.2f}s migrate req#{self.request_id} "
            f"({self.workload}) host {self.source_host} -> {self.dest_host} "
            f"via {self.engine}: {self.moved_gb:.1f} GB in "
            f"{self.seconds:.1f}s (for req#{self.triggered_by})"
        )

    def to_dict(self) -> Dict:
        return {
            "time": self.time,
            "request_id": self.request_id,
            "workload": self.workload,
            "source_host": self.source_host,
            "dest_host": self.dest_host,
            "engine": self.engine,
            "seconds": self.seconds,
            "moved_gb": self.moved_gb,
            "triggered_by": self.triggered_by,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "MigrationRecord":
        return cls(**data)


@dataclass
class ChurnStats:
    """Lifecycle-specific counters carried inside a FleetReport."""

    arrivals: int = 0
    departures: int = 0
    migrations: List[MigrationRecord] = field(default_factory=list)
    #: Fragmentation rejects where the rebalancer assembled a plan.
    rebalance_attempts: int = 0
    #: Rejected arrivals that placed successfully after migrations.
    rebalance_recovered: int = 0
    fragmentation_timeline: List[FragmentationSample] = field(
        default_factory=list
    )

    @property
    def n_migrations(self) -> int:
        return len(self.migrations)

    @property
    def migrated_gb(self) -> float:
        """Total bytes moved by the rebalancer, in GB."""
        return sum(record.moved_gb for record in self.migrations)

    @property
    def migration_seconds(self) -> float:
        return sum(record.seconds for record in self.migrations)

    @property
    def fit_failures(self) -> int:
        if not self.fragmentation_timeline:
            return 0
        return self.fragmentation_timeline[-1].fit_failures

    @property
    def fit_failure_rate(self) -> float:
        """Capacity rejections per arrival over the whole run."""
        if not self.arrivals:
            return 0.0
        return self.fit_failures / self.arrivals

    def describe(self) -> str:
        lines = [
            f"  churn: {self.arrivals} arrivals, {self.departures} "
            f"departures, fit-failure rate {self.fit_failure_rate:.1%}",
            f"  rebalancer: {self.n_migrations} migrations "
            f"({self.migrated_gb:.1f} GB, {self.migration_seconds:.1f}s "
            f"simulated) recovered {self.rebalance_recovered} of "
            f"{self.rebalance_attempts} fragmentation rejects",
        ]
        if self.fragmentation_timeline:
            last = self.fragmentation_timeline[-1]
            lines.append(
                f"  final fragmentation: largest free block "
                f"{last.largest_free_block} of {last.free_nodes_total} free "
                f"nodes, {last.active_containers} containers active"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "arrivals": self.arrivals,
            "departures": self.departures,
            "migrations": [m.to_dict() for m in self.migrations],
            "rebalance_attempts": self.rebalance_attempts,
            "rebalance_recovered": self.rebalance_recovered,
            "fragmentation_timeline": [
                s.to_dict() for s in self.fragmentation_timeline
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ChurnStats":
        return cls(
            arrivals=data["arrivals"],
            departures=data["departures"],
            migrations=[
                MigrationRecord.from_dict(m) for m in data["migrations"]
            ],
            rebalance_attempts=data["rebalance_attempts"],
            rebalance_recovered=data["rebalance_recovered"],
            fragmentation_timeline=[
                FragmentationSample.from_dict(s)
                for s in data["fragmentation_timeline"]
            ],
        )


@dataclass(frozen=True)
class RebalanceConfig:
    """Knobs of the fragmentation-triggered rebalancer.

    The cost gate follows the paper's Section 7 guidance: migration
    overhead is proportional to the container's memory footprint, so a
    move is only worth it when the time spent migrating stays under what
    the operator is willing to pay to avoid rejecting (or violating) a
    request — ``reject_penalty_seconds``, the expected violation penalty
    expressed in the same seconds currency the
    :class:`~repro.migration.planner.MigrationPlanner` prices moves in.
    """

    enabled: bool = True
    #: Total migration seconds a single recovery plan may spend.
    reject_penalty_seconds: float = 120.0
    #: Hard cap on moves per rejected arrival (keeps plans local).
    max_migrations_per_reject: int = 4

    def __post_init__(self) -> None:
        if self.reject_penalty_seconds <= 0:
            raise ValueError("reject_penalty_seconds must be positive")
        if self.max_migrations_per_reject < 1:
            raise ValueError("max_migrations_per_reject must be >= 1")


#: A planned (not yet executed) move: victim id, its current placement,
#: destination host, destination block, engine name, priced seconds.
_PlannedMove = Tuple[int, Placement, FleetHost, Tuple[int, ...], str, float]


class LifecycleScheduler:
    """Event-driven fleet scheduler: arrivals, departures, rebalancing.

    Parameters
    ----------
    fleet:
        The hosts (shared bookkeeping with the policies).
    policy:
        Any fleet policy; defaults to the goal-aware ML policy.  Arrivals
        are decided one event at a time (batching across *time* would let
        the policy see the future).
    registry:
        Grading artifacts, defaulting to the policy's registry.
    planner:
        Prices candidate migrations; see
        :class:`~repro.migration.planner.MigrationPlanner`.
    config:
        Rebalancer gate; ``RebalanceConfig(enabled=False)`` gives the
        no-migration baseline.
    online:
        Optional :class:`~repro.serving.online.OnlineLearner` closing the
        model-lifecycle loop: every graded ML placement is fed back as a
        :class:`~repro.serving.traces.PlacementObservation`, and the
        learner may retrain/promote the registry's models mid-stream.
        ``None`` (the default) reproduces the frozen-model pipeline
        bit for bit.
    """

    def __init__(
        self,
        fleet: Fleet,
        policy: FleetPolicy | None = None,
        *,
        registry: ModelRegistry | None = None,
        planner: MigrationPlanner | None = None,
        config: RebalanceConfig | None = None,
        online: "OnlineLearner | None" = None,
    ) -> None:
        self.fleet = fleet
        self.policy = policy or GoalAwareFleetPolicy()
        if registry is None:
            registry = getattr(self.policy, "registry", None) or ModelRegistry()
        self.registry = registry
        self.planner = planner or MigrationPlanner()
        self.config = config or RebalanceConfig()
        self.online = online
        if online is not None:
            if online.server is not registry:
                raise ValueError(
                    "the online learner must drive the scheduler's own "
                    "registry (its ModelServer), or promotions would "
                    "retrain a model the policies never consult"
                )
            policy_probe = getattr(self.policy, "probe_duration_s", None)
            if (
                policy_probe is not None
                and policy_probe != online.config.probe_duration_s
            ):
                # The learner re-reads each decision's probe IPCs through
                # the registry memo; a different probe duration draws a
                # different noise multiplier, so the observations would
                # not be the inputs the prediction actually consumed.
                raise ValueError(
                    f"online learner probe_duration_s "
                    f"({online.config.probe_duration_s}) must match the "
                    f"policy's ({policy_probe})"
                )
        #: Requests currently running (id -> request), the profile source
        #: for migration pricing and the departure filter.  Deliberately
        #: *not* reset by :meth:`begin`: containers placed by an earlier
        #: run stay live on the fleet, and the rebalancer needs their
        #: profiles to price moving them.
        self._active: Dict[int, PlacementRequest] = {}
        self.begin()

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def begin(self) -> None:
        """Reset the per-run accumulators (stats, graded decisions).

        :meth:`run` calls this itself; incremental drivers — the sharded
        service's workers feed events one batch at a time — call it once,
        then :meth:`step` / :meth:`step_batch` per event, then
        :meth:`collect_report`.
        """
        self.stats = ChurnStats()
        self.graded: List[GradedDecision] = []
        self._graded_by_id: Dict[int, GradedDecision] = {}
        # Every value the per-event fragmentation sample needs is an O(1)
        # counter on the fleet index (kept fresh by host allocate/release
        # bookkeeping, migrations included) — the sample never pays a
        # full-fleet sum per event.  Fit failures are counted on the index
        # too; the snapshot keeps a re-used fleet's timeline starting at 0.
        self._fit_failures_before = self.fleet.index.fit_failures

    def step(self, event: LifecycleEvent) -> GradedDecision | None:
        """Process one event; returns the graded decision for arrivals
        (appended to :attr:`graded`), None for departures."""
        entry = None
        if event.kind is EventKind.ARRIVAL:
            entry = self._handle_arrival(event, self.stats)
            self.graded.append(entry)
            if not entry.decision.placed and (
                entry.decision.reject_reason == "capacity"
            ):
                self.fleet.index.record_fit_failure()
        else:
            self._handle_departure(event, self.stats)
        self._sample(event.time)
        return entry

    def depart(self, request_id: int, event_time: float) -> None:
        """Process a departure by request id — :meth:`step`'s departure
        arm without the event envelope.  A departure needs nothing but
        the id (releasing an unknown or rejected id is a no-op), so the
        sharded service's wire format ships ``[id, time]`` pairs instead
        of full request payloads."""
        if self._active.pop(request_id, None) is not None:
            self.fleet.release(request_id)
            self.stats.departures += 1
        self._sample(event_time)

    def step_batch(
        self, events: Sequence[LifecycleEvent]
    ) -> List[GradedDecision]:
        """Decide a window of consecutive arrivals in one policy batch.

        The sharded service batches arrivals per shard so the goal-aware
        policy's fused prediction amortizes across the window.  A window
        of one is bit-identical to :meth:`step`; larger windows trade
        strict time order *inside the window* for batching (all window
        decisions allocate before any rebalance retry runs), exactly like
        the one-shot scheduler's batches.
        """
        if any(e.kind is not EventKind.ARRIVAL for e in events):
            raise ValueError("step_batch handles arrival events only")
        if len(events) == 1:
            return [self.step(events[0])]
        stats = self.stats
        stats.arrivals += len(events)
        requests = [event.request for event in events]
        decide_start = time.perf_counter()
        decisions = self.policy.decide_batch(requests, self.fleet)
        per_request = (time.perf_counter() - decide_start) / len(events)
        entries: List[GradedDecision] = []
        for event, decision in zip(events, decisions):
            retry_start = time.perf_counter()
            if (
                not decision.placed
                and decision.reject_reason == "capacity"
                and self.config.enabled
            ):
                plan = self._plan_rebalance(event.request)
                if plan:
                    stats.rebalance_attempts += 1
                    stats.migrations.extend(self._execute_plan(plan, event))
                    retry = self.policy.decide(event.request, self.fleet)
                    if retry.placed:
                        stats.rebalance_recovered += 1
                        decision = retry
            decide_seconds = per_request + (
                time.perf_counter() - retry_start
            )
            entry = grade_decision(decision, self.fleet, self.registry)
            entry.decision_seconds = decide_seconds
            if decision.placed:
                self._active[event.request.request_id] = event.request
                self._graded_by_id[event.request.request_id] = entry
                if self.online is not None:
                    self.online.observe(
                        self.fleet.hosts[decision.host_id].machine,
                        entry,
                        event.time,
                    )
            self.graded.append(entry)
            if not entry.decision.placed and (
                entry.decision.reject_reason == "capacity"
            ):
                self.fleet.index.record_fit_failure()
            self._sample(event.time)
            entries.append(entry)
        return entries

    def _sample(self, event_time: float) -> None:
        index = self.fleet.index
        self.stats.fragmentation_timeline.append(
            FragmentationSample(
                time=event_time,
                free_nodes_total=index.free_nodes_total,
                largest_free_block=index.largest_free_block,
                active_containers=len(self._active),
                fit_failures=index.fit_failures - self._fit_failures_before,
            )
        )

    def collect_report(
        self, n_requests: int, elapsed_seconds: float
    ) -> FleetReport:
        """Fold the accumulated decisions and stats into a FleetReport."""
        return FleetReport.collect(
            policy=self.policy,
            fleet=self.fleet,
            registry=self.registry,
            n_requests=n_requests,
            decisions=self.graded,
            elapsed_seconds=elapsed_seconds,
            churn=self.stats,
            online=self.online.stats if self.online is not None else None,
        )

    def run(self, requests: Sequence[PlacementRequest]) -> FleetReport:
        """Replay the stream's events in time order; report with churn
        statistics attached."""
        start = time.perf_counter()
        self.begin()
        for event in events_from_requests(requests).drain():
            self.step(event)
        elapsed = time.perf_counter() - start
        return self.collect_report(len(requests), elapsed)

    def _handle_arrival(
        self, event: LifecycleEvent, stats: ChurnStats
    ) -> GradedDecision:
        stats.arrivals += 1
        request = event.request
        decide_start = time.perf_counter()
        decision = self.policy.decide(request, self.fleet)
        if (
            not decision.placed
            and decision.reject_reason == "capacity"
            and self.config.enabled
        ):
            plan = self._plan_rebalance(request)
            if plan:
                stats.rebalance_attempts += 1
                stats.migrations.extend(self._execute_plan(plan, event))
                retry = self.policy.decide(request, self.fleet)
                if retry.placed:
                    stats.rebalance_recovered += 1
                    decision = retry
        # Stop the clock before grading: the one-shot scheduler's
        # decision_seconds also excludes grading, keeping the two modes'
        # latency stats comparable.
        decide_seconds = time.perf_counter() - decide_start
        entry = grade_decision(decision, self.fleet, self.registry)
        entry.decision_seconds = decide_seconds
        if decision.placed:
            self._active[request.request_id] = request
            self._graded_by_id[request.request_id] = entry
            if self.online is not None:
                # Close the prediction loop: the learner may detect drift,
                # retrain, shadow-score, or promote — all before the next
                # event is decided.
                self.online.observe(
                    self.fleet.hosts[decision.host_id].machine,
                    entry,
                    event.time,
                )
        return entry

    def _handle_departure(
        self, event: LifecycleEvent, stats: ChurnStats
    ) -> None:
        # A departure for a request that was rejected (or already released)
        # is a no-op, not an error: the event pair was scheduled before the
        # placement outcome was known.
        if self._active.pop(event.request.request_id, None) is None:
            return
        self.fleet.release(event.request.request_id)
        stats.departures += 1

    # ------------------------------------------------------------------
    # Rebalancing
    # ------------------------------------------------------------------

    def _plan_rebalance(
        self, request: PlacementRequest
    ) -> List[_PlannedMove]:
        """A priced migration plan that frees a block for the request, or
        ``[]`` when no plan fits the cost gate.

        Strategy: consolidate onto the compatible host already closest to
        fitting — move its cheapest containers (by memory footprint, the
        paper's migration cost driver) to same-shape hosts elsewhere until
        the policy's smallest usable block for the request
        (:meth:`~repro.scheduler.policies.FleetPolicy.min_block_nodes`)
        fits.  Planning is all-or-nothing: migrations only execute if
        together they free enough nodes within ``reject_penalty_seconds``.
        """
        # Distinct shapes come from the fleet index (O(#shapes), not a
        # host scan); a shape's compatible hosts from its id buckets.
        index = self.fleet.index
        shapes: Dict[Tuple, int | None] = {}
        compatible: List[FleetHost] = []
        for key, machine in index.machines():
            shapes[key] = self.policy.min_block_nodes(machine, request.vcpus)
            if shapes[key] is not None:
                compatible.extend(
                    self.fleet.hosts[host_id]
                    for host_id in index.host_ids(key)
                )
        if not compatible:
            return []

        target = max(compatible, key=lambda h: (h.n_free_nodes, -h.host_id))
        needed = shapes[target.machine.fingerprint()]
        deficit = needed - target.n_free_nodes
        if deficit <= 0:
            # Not a fragmentation reject: a big-enough block already
            # exists, so the policy failed for some other reason and
            # moving containers around will not help.
            return []

        victims = sorted(
            target.placements.items(),
            key=lambda item: self._footprint_gb(item[0]),
        )
        plan: List[_PlannedMove] = []
        claimed: Dict[int, set] = {}
        freed = 0
        spent = 0.0
        for victim_id, placement in victims:
            if freed >= deficit:
                break
            if len(plan) >= self.config.max_migrations_per_reject:
                break
            victim = self._active.get(victim_id)
            if victim is None:
                continue
            advice = self.planner.advise(victim.profile, probe_migrations=1)
            if advice.recommended == "offline":
                continue  # footprint too large to move online at all
            seconds = advice.results[advice.recommended].seconds
            if spent + seconds > self.config.reject_penalty_seconds:
                continue
            destination = self._find_destination(target, placement, claimed)
            if destination is None:
                continue
            dest, block = destination
            claimed.setdefault(dest.host_id, set()).update(block)
            plan.append(
                (victim_id, placement, dest, block, advice.recommended, seconds)
            )
            spent += seconds
            freed += placement.n_nodes
        if freed < deficit:
            return []  # cannot free a big enough block within the gate
        return plan

    def _footprint_gb(self, request_id: int) -> float:
        request = self._active.get(request_id)
        if request is None:  # placed outside the engine; move it last
            return float("inf")
        return ContainerMemory.from_profile(request.profile).total_gb

    def _find_destination(
        self,
        source: FleetHost,
        placement: Placement,
        claimed: Dict[int, set],
    ) -> Tuple[FleetHost, Tuple[int, ...]] | None:
        """A same-shape host (never the source) with room for the victim.

        Fullest-first order: parking victims on already-busy hosts keeps
        the emptier hosts' blocks large, so the rebalancer does not trade
        one fragmentation problem for another.  A block matching the
        victim's current interconnect score is preferred (its graded
        performance transfers); any block of the right size is the
        fallback.

        Candidates come from the fleet index's same-shape buckets —
        fullest-first is ascending free-count bucket order, and hosts
        whose free count cannot cover the victim's block are never
        visited.  Block search goes through the shared per-shape score
        table.
        """
        index = self.fleet.index
        buckets = index.buckets(source.machine.fingerprint())
        candidates = [
            self.fleet.hosts[host_id]
            for size in sorted(buckets)
            if size >= placement.n_nodes
            for host_id in sorted(buckets[size])
            if host_id != source.host_id
        ]
        machine = source.machine
        scorer = lambda nodes: machine.interconnect.aggregate_bandwidth(nodes)  # noqa: E731
        table = block_score_table(machine, "interconnect")
        target_score = scorer(frozenset(placement.nodes))
        for exact in (target_score, None):
            for host in candidates:
                block = host.find_block(
                    placement.n_nodes,
                    scorer,
                    target_score=exact,
                    exclude=claimed.get(host.host_id, ()),
                    table=table,
                )
                if block is not None:
                    return host, block
        return None

    def _execute_plan(
        self, plan: List[_PlannedMove], event: LifecycleEvent
    ) -> List[MigrationRecord]:
        records: List[MigrationRecord] = []
        for victim_id, placement, dest, block, engine, seconds in plan:
            source_host, _ = self.fleet.release(victim_id)
            realized = Placement(
                dest.machine,
                block,
                placement.vcpus,
                l2_share=placement.l2_share,
                l3_groups_per_node=placement.l3_score // placement.n_nodes,
            )
            dest.allocate(victim_id, realized)
            self._regrade_migrated(victim_id, placement, realized, dest)
            victim = self._active[victim_id]
            records.append(
                MigrationRecord(
                    time=event.time,
                    request_id=victim_id,
                    workload=victim.workload_name,
                    source_host=source_host,
                    dest_host=dest.host_id,
                    engine=engine,
                    seconds=seconds,
                    moved_gb=ContainerMemory.from_profile(
                        victim.profile
                    ).total_gb,
                    triggered_by=event.request.request_id,
                )
            )
        return records

    def _regrade_migrated(
        self,
        victim_id: int,
        old: Placement,
        realized: Placement,
        dest: FleetHost,
    ) -> None:
        """Point the victim's graded decision at its post-migration
        placement and re-grade it, so the report describes the fleet the
        engine actually produced (a move to a lower-scored block can turn
        a met goal into a violation — that must be visible)."""
        entry = self._graded_by_id.get(victim_id)
        if entry is None:
            return
        decision = entry.decision
        decision.host_id = dest.host_id
        decision.placement = realized
        scorer = lambda nodes: dest.machine.interconnect.aggregate_bandwidth(nodes)  # noqa: E731
        decision.block_exact = decision.block_exact and scores_match(
            scorer(frozenset(realized.nodes)), scorer(frozenset(old.nodes))
        )
        regraded = grade_decision(decision, self.fleet, self.registry)
        entry.achieved_relative = regraded.achieved_relative
        entry.violated = regraded.violated
