"""One config object for every scheduling surface.

``repro schedule`` grew ~20 flags (machine, policy, churn shape, online
learning, scale-optimization toggles), and the sharded service adds more
(shards, window, worker transport).  :class:`ScheduleConfig` folds them
all into one dataclass shared by the CLI (``repro schedule`` *and*
``repro serve``), the benchmarks, and the examples: a new knob is added
here once, and ``from_args`` / ``add_schedule_arguments`` keep the
command-line surface in sync with it.

The config also owns the *builders*: fleet, registry, policy, and
request stream construction from the same fields, so two surfaces
configured equally are guaranteed to build bit-for-bit the same world
(same preset objects, same stream seeds, same policy knobs) — the
property the single-shard-equals-monolith tests lean on.
"""

from __future__ import annotations

import argparse
import itertools
from dataclasses import asdict, dataclass, field, fields
from typing import Dict, List, Tuple

from repro.scheduler.fleet import Fleet
from repro.scheduler.policies import POLICIES, FleetPolicy, make_policy
from repro.scheduler.registry import ModelRegistry
from repro.scheduler.requests import (
    PlacementRequest,
    drift_phase_schedule,
    generate_churn_stream,
    generate_request_stream,
)
from repro.scheduler.admission import SHED_POLICIES
from repro.topology import PRESETS
from repro.topology.machine import MachineTopology

#: Worker transports the sharded service supports.
WORKER_MODES = ("inline", "process")


@dataclass
class ScheduleConfig:
    """Everything ``repro schedule`` / ``repro serve`` can be told.

    Field defaults are the CLI defaults; :meth:`validate` enforces the
    same constraints the CLI used to check inline (raising ``ValueError``
    — CLI entry points convert to ``SystemExit``).
    """

    # Fleet shape
    machine: str = "amd"
    hosts: int = 128
    # Stream
    requests: int = 500
    vcpus: Tuple[int, ...] = (8, 16)
    seed: int = 0
    # Policy
    policy: str = "ml"
    batch_size: int | None = None
    naive: bool = False
    linear_scan: bool = False
    # Churn
    churn: bool = False
    arrival_rate: float = 1.0
    mean_lifetime: float = 60.0
    heavy_tail: bool = False
    no_rebalance: bool = False
    penalty_seconds: float = 120.0
    # Online learning
    online_learning: bool = False
    phase_shift: bool = False
    drift_threshold: float | None = None
    # Sharded service (repro serve)
    shards: int = 1
    window: int = 8
    workers: str = "inline"
    max_events: int | None = None
    #: Overlapped dispatch: fire every shard's message for a routing
    #: phase, then gather replies in shard order.  Results are
    #: bit-for-bit identical either way; False (--no-overlap) keeps the
    #: serial one-request-at-a-time baseline for A/B timing.
    overlap: bool = True
    # Fault tolerance (repro serve; also forced on by a FaultPlan)
    supervised: bool = False
    request_timeout_s: float | None = 30.0
    fault_retries: int = 2
    backoff_base_s: float = 0.05
    recovery_rounds: int = 0
    # Overload robustness (repro serve --admission)
    #: Screen arrivals through the front-end admission controller:
    #: feasibility/saturation gates, bounded brown-out queue, and
    #: per-shard capacity vectors in every ShardSummary.
    admission: bool = False
    #: Bound on the brown-out held queue (None: unbounded).
    queue_limit: int | None = None
    #: How the held queue sheds on overflow (see SHED_POLICIES).
    shed_policy: str = "drop-newest"
    #: Deadline policy only: holds older than this are shed.
    deadline_budget_s: float = 30.0
    #: Enter brown-out when the fleet-wide capacity fraction drops
    #: below this (0 disables the capacity trigger; DOWN shards always
    #: trigger); exit at 1.5x the watermark (hysteresis).
    brownout_watermark: float = 0.0

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> "ScheduleConfig":
        """Check cross-field constraints; returns self for chaining."""
        if self.machine != "mixed" and self.machine not in PRESETS:
            raise ValueError(
                f"unknown machine {self.machine!r}; choose from "
                f"{', '.join(sorted(PRESETS))} or 'mixed'"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; registered: "
                f"{', '.join(sorted(POLICIES))}"
            )
        if not self.vcpus:
            raise ValueError("vcpus must name at least one container size")
        if any(v < 1 for v in self.vcpus):
            raise ValueError("vcpus sizes must be >= 1")
        if self.hosts < 1:
            raise ValueError("hosts must be >= 1")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.churn and self.batch_size is not None:
            raise ValueError(
                "batch_size applies to the one-shot scheduler; the "
                "lifecycle engine decides one event at a time"
            )
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.mean_lifetime <= 0:
            raise ValueError("mean_lifetime must be positive")
        if self.penalty_seconds <= 0:
            raise ValueError("penalty_seconds must be positive")
        if self.online_learning and self.policy != "ml":
            raise ValueError(
                "online learning needs policy 'ml' (heuristic policies "
                "make no predictions to retrain on)"
            )
        if self.online_learning and self.naive:
            raise ValueError(
                "online learning needs the memoized registry (drop naive)"
            )
        if self.phase_shift and not self.churn:
            raise ValueError(
                "phase_shift applies to churn streams; enable churn "
                "(or online_learning)"
            )
        if self.drift_threshold is not None and self.drift_threshold <= 0:
            raise ValueError("drift_threshold must be positive")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shards > self.hosts:
            raise ValueError(
                f"cannot split {self.hosts} host(s) into {self.shards} "
                f"shard(s): every shard needs at least one host"
            )
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.workers not in WORKER_MODES:
            raise ValueError(
                f"unknown worker mode {self.workers!r}; choose from "
                f"{', '.join(WORKER_MODES)}"
            )
        if self.max_events is not None and self.max_events < 1:
            raise ValueError("max_events must be >= 1")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive (or None)")
        if self.fault_retries < 0:
            raise ValueError("fault_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.recovery_rounds < 0:
            raise ValueError("recovery_rounds must be >= 0")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.shed_policy!r}; choose from "
                f"{', '.join(SHED_POLICIES)}"
            )
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1 (or None: unbounded)")
        if self.deadline_budget_s <= 0:
            raise ValueError("deadline_budget_s must be positive")
        if not 0.0 <= self.brownout_watermark <= 1.0:
            raise ValueError("brownout_watermark must be in [0, 1]")
        if not self.admission and (
            self.queue_limit is not None or self.brownout_watermark > 0.0
        ):
            raise ValueError(
                "queue_limit/brownout_watermark require --admission "
                "(without the controller they would silently do nothing)"
            )
        return self

    # ------------------------------------------------------------------
    # CLI binding
    # ------------------------------------------------------------------

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "ScheduleConfig":
        """Build (and validate) a config from parsed CLI arguments.

        Only attributes present on the namespace are read — the
        ``schedule`` and ``serve`` subcommands expose different subsets
        of the surface, and missing flags keep their field defaults.
        """
        values: Dict = {}
        for spec in fields(cls):
            if hasattr(args, spec.name):
                values[spec.name] = getattr(args, spec.name)
        if isinstance(values.get("vcpus"), str):
            values["vcpus"] = cls.parse_vcpus(values["vcpus"])
        config = cls(**values)
        if config.online_learning:
            # Online learning is a property of the event-driven engine:
            # the loop closes on *observed* placements over time.
            config.churn = True
        return config.validate()

    @staticmethod
    def parse_vcpus(text: str) -> Tuple[int, ...]:
        """Parse the CLI's comma-separated container-size list."""
        try:
            return tuple(int(v) for v in text.split(",") if v.strip())
        except ValueError:
            raise ValueError(
                f"vcpus must be a comma-separated int list, got {text!r}"
            )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        data = asdict(self)
        data["vcpus"] = list(self.vcpus)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "ScheduleConfig":
        values = dict(data)
        values["vcpus"] = tuple(values["vcpus"])
        return cls(**values)

    # ------------------------------------------------------------------
    # Derived values and builders
    # ------------------------------------------------------------------

    @property
    def indexed(self) -> bool:
        """Whether policies may consult the incremental fleet index."""
        return not (self.naive or self.linear_scan)

    @property
    def effective_batch_size(self) -> int:
        """The one-shot scheduler's batch size after the naive override."""
        if self.naive:
            return 1
        return 64 if self.batch_size is None else self.batch_size

    @property
    def rebalance_enabled(self) -> bool:
        return not self.no_rebalance

    def machine_list(self) -> List[MachineTopology]:
        """One topology per host, in host-id order.

        Built directly instead of via :meth:`build_fleet`: every
        process-transport worker calls this at startup to find its
        slice, and at 100k hosts materializing a full Fleet per worker
        would dominate spawn time.  The 'mixed' fleet interleaves half
        AMD / half Intel exactly like
        :meth:`~repro.scheduler.fleet.Fleet.mixed`, so a fleet built
        from this list equals the fleet :meth:`build_fleet` returns —
        the sharded service partitions this list across shards.
        """
        if self.machine == "mixed":
            half = self.hosts // 2
            rows = [
                row
                for row in (
                    [PRESETS["amd"]()] * (self.hosts - half),
                    [PRESETS["intel"]()] * half,
                )
                if row
            ]
            return [
                machine
                for batch in itertools.zip_longest(*rows)
                for machine in batch
                if machine is not None
            ]
        return [PRESETS[self.machine]()] * self.hosts

    def build_fleet(self) -> Fleet:
        if self.machine == "mixed":
            half = self.hosts // 2
            return Fleet.mixed(
                [
                    (PRESETS["amd"](), self.hosts - half),
                    (PRESETS["intel"](), half),
                ]
            )
        return Fleet.homogeneous(PRESETS[self.machine](), self.hosts)

    def build_registry(self) -> ModelRegistry:
        return ModelRegistry(
            seed=self.seed,
            memoize_enumeration=not self.naive,
            memoize_ipc=not self.naive,
        )

    def build_policy(
        self, registry: ModelRegistry | None = None
    ) -> FleetPolicy:
        return make_policy(
            self.policy,
            registry=registry if registry is not None else self.build_registry(),
            indexed=self.indexed,
        )

    def build_stream(self) -> List[PlacementRequest]:
        if self.churn:
            return generate_churn_stream(
                self.requests,
                seed=self.seed,
                vcpus_choices=self.vcpus,
                arrival_rate=self.arrival_rate,
                mean_lifetime=self.mean_lifetime,
                heavy_tail=self.heavy_tail,
                phases=drift_phase_schedule() if self.phase_shift else None,
            )
        return generate_request_stream(
            self.requests, seed=self.seed, vcpus_choices=self.vcpus
        )


def add_schedule_arguments(
    parser: argparse.ArgumentParser, *, serve: bool = False
) -> None:
    """Attach the shared scheduling flags to a subcommand parser.

    ``repro schedule`` and ``repro serve`` expose the same fleet, stream,
    policy, and churn knobs; ``serve=True`` adds the service group
    (shards, window, worker transport) and drops the flags that only
    make sense for the monolithic command (one-shot batching, online
    learning, decision tracing).
    """
    defaults = ScheduleConfig()
    parser.add_argument(
        "--machine",
        default=defaults.machine,
        choices=sorted(PRESETS) + ["mixed"],
        help="host shape, or 'mixed' for a half-AMD/half-Intel fleet",
    )
    parser.add_argument("--hosts", type=int, default=defaults.hosts)
    parser.add_argument("--requests", type=int, default=defaults.requests)
    parser.add_argument(
        "--policy", default=defaults.policy, choices=sorted(POLICIES)
    )
    parser.add_argument(
        "--vcpus",
        default=",".join(str(v) for v in defaults.vcpus),
        help="comma-separated container sizes to sample (default 8,16)",
    )
    if not serve:
        parser.add_argument(
            "--batch-size",
            type=int,
            default=None,
            help="requests decided per policy call (one-shot mode only; "
            "default 64)",
        )
    parser.add_argument(
        "--naive",
        action="store_true",
        help="disable every scale optimization: enumeration memo cache, "
        "batched prediction, fleet index, block-score tables, and the "
        "grading IPC memo (the per-request baseline the benchmark "
        "compares against)",
    )
    parser.add_argument(
        "--linear-scan",
        action="store_true",
        help="keep the caches but scan all hosts per request instead of "
        "querying the incremental fleet index (the pre-index baseline; "
        "decisions are identical, only slower)",
    )
    if not serve:
        parser.add_argument(
            "--trace",
            type=int,
            default=0,
            metavar="N",
            help="also print the first N per-request decision traces "
            "(and, with --churn, the first N migration traces)",
        )
    churn = parser.add_argument_group(
        "churn options",
        "dynamic lifecycle simulation"
        + (" (always on in serve mode)" if serve else " (--churn)"),
    )
    if not serve:
        churn.add_argument(
            "--churn",
            action="store_true",
            help="run the event-driven lifecycle engine: Poisson arrivals "
            "with lifetimes, departures, fragmentation tracking, and "
            "migration-driven rebalancing",
        )
    churn.add_argument(
        "--arrival-rate",
        type=float,
        default=defaults.arrival_rate,
        help="mean container arrivals per simulated second (default 1.0)",
    )
    churn.add_argument(
        "--mean-lifetime",
        type=float,
        default=defaults.mean_lifetime,
        help="mean container lifetime in simulated seconds (default 60)",
    )
    churn.add_argument(
        "--heavy-tail",
        action="store_true",
        help="draw lifetimes from a heavy-tailed Pareto instead of an "
        "exponential (same mean; a few containers pin nodes for ages)",
    )
    churn.add_argument(
        "--no-rebalance",
        action="store_true",
        help="disable the fragmentation-triggered migration rebalancer "
        "(the no-migration baseline)",
    )
    churn.add_argument(
        "--penalty-seconds",
        type=float,
        default=defaults.penalty_seconds,
        help="migration-time budget the rebalancer may spend to recover "
        "one rejected request (default 120)",
    )
    if serve:
        # The service ingests a lifecycle event stream: serve mode is
        # always churn mode (there is no one-shot serve).
        parser.set_defaults(churn=True)
        service = parser.add_argument_group(
            "service options", "sharded scheduler service"
        )
        service.add_argument(
            "--shards",
            type=int,
            default=defaults.shards,
            help="worker shards the fleet is partitioned into (default 1)",
        )
        service.add_argument(
            "--window",
            type=int,
            default=defaults.window,
            help="consecutive arrivals batched per routing round "
            "(default 8; 1 reproduces the monolithic engine's "
            "event-at-a-time decisions)",
        )
        service.add_argument(
            "--workers",
            default=defaults.workers,
            choices=sorted(WORKER_MODES),
            help="shard transport: 'inline' runs workers in-process, "
            "'process' forks one worker process per shard",
        )
        service.add_argument(
            "--max-events",
            type=int,
            default=None,
            metavar="N",
            help="stop after ingesting N lifecycle events (bounds smoke "
            "runs; default: drain the whole stream)",
        )
        service.add_argument(
            "--no-overlap",
            dest="overlap",
            action="store_false",
            help="dispatch shard round trips one at a time instead of "
            "firing every shard's message and gathering the replies "
            "(the serial A/B baseline; decisions and reports are "
            "bit-for-bit identical either way)",
        )
        service.add_argument(
            "--emit-json",
            action="store_true",
            help="print the report as machine-readable JSON (the wire "
            "to_dict() payload, without per-decision traces) instead "
            "of the human summary",
        )
        ft = parser.add_argument_group(
            "fault tolerance options",
            "shard supervision, journaling, and crash recovery",
        )
        ft.add_argument(
            "--supervised",
            action="store_true",
            help="journal every state-mutating shard message, track "
            "shard health (up/suspect/down/recovering), retry timeouts "
            "with seeded backoff, and recover crashed shards by respawn "
            "+ journal replay",
        )
        ft.add_argument(
            "--request-timeout",
            dest="request_timeout_s",
            type=float,
            default=defaults.request_timeout_s,
            metavar="S",
            help="per-request reply deadline in seconds on the process "
            "transport, stamped when the message is sent; overlapped "
            "dispatch runs every in-flight shard's deadline "
            "concurrently (default 30)",
        )
        ft.add_argument(
            "--fault-retries",
            type=int,
            default=defaults.fault_retries,
            help="timeout retries (same sequence number; the worker "
            "dedups) before a shard is marked down (default 2)",
        )
        ft.add_argument(
            "--backoff-base-s",
            dest="backoff_base_s",
            type=float,
            default=defaults.backoff_base_s,
            metavar="S",
            help="base of the seeded exponential retry backoff "
            "(default 0.05)",
        )
        ft.add_argument(
            "--recovery-rounds",
            type=int,
            default=defaults.recovery_rounds,
            metavar="K",
            help="0 recovers a dead shard immediately inside the failed "
            "send; K>0 leaves it down for K routing rounds, failing "
            "arrivals over to surviving shards (default 0)",
        )
        ft.add_argument(
            "--chaos",
            action="store_true",
            help="wrap every shard in a seeded fault plan that crashes "
            "it once (FaultPlan.kill_each_shard_once with the stream "
            "seed) — a self-test of the recovery path; implies "
            "supervision",
        )
        adm = parser.add_argument_group(
            "admission control options",
            "overload robustness: feasibility/saturation gates, bounded "
            "brown-out queue, capacity-vector summaries",
        )
        adm.add_argument(
            "--admission",
            action="store_true",
            help="screen arrivals through the front-end admission "
            "controller: reject infeasible and provably-unplaceable "
            "requests before any shard round trip, and hold "
            "best-effort traffic in a bounded queue during brown-out",
        )
        adm.add_argument(
            "--queue-limit",
            dest="queue_limit",
            type=int,
            default=defaults.queue_limit,
            metavar="N",
            help="bound on the brown-out held queue (default: unbounded)",
        )
        adm.add_argument(
            "--shed-policy",
            dest="shed_policy",
            choices=SHED_POLICIES,
            default=defaults.shed_policy,
            help="how a full held queue sheds: drop-newest rejects the "
            "arrival, drop-oldest evicts the head, deadline sheds "
            "holds whose budget is spent first (default drop-newest)",
        )
        adm.add_argument(
            "--deadline-budget-s",
            dest="deadline_budget_s",
            type=float,
            default=defaults.deadline_budget_s,
            metavar="S",
            help="deadline policy only: event-time seconds a request may "
            "wait in the held queue before it is shed (default 30)",
        )
        adm.add_argument(
            "--brownout-watermark",
            dest="brownout_watermark",
            type=float,
            default=defaults.brownout_watermark,
            metavar="F",
            help="enter brown-out when the fleet-wide capacity fraction "
            "drops below F (exit at 1.5x F — hysteresis); 0 disables "
            "the capacity trigger, DOWN shards always trigger "
            "(default 0)",
        )
    else:
        online = parser.add_argument_group(
            "online learning options",
            "closed-loop model lifecycle (--online-learning, implies "
            "--churn)",
        )
        online.add_argument(
            "--online-learning",
            action="store_true",
            help="close the serving loop: trace every graded ML placement, "
            "retrain on rolling-MAPE drift, shadow candidates against the "
            "incumbent, and promote through the holdout gate",
        )
        online.add_argument(
            "--phase-shift",
            action="store_true",
            help="apply the canonical mid-stream workload-mix shift (the "
            "drift scenario a frozen model degrades on)",
        )
        online.add_argument(
            "--drift-threshold",
            type=float,
            default=None,
            metavar="PCT",
            help="rolling MAPE (percent) above which a partition counts "
            "as drifted (default 12)",
        )
