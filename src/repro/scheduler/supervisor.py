"""Shard supervision: health states, write-ahead journal, seeded backoff.

The :class:`~repro.scheduler.service.SchedulerService` owns the shard
clients; this module owns the bookkeeping that decides when a shard is
trusted, retried, or rebuilt:

* **Health states** per shard — ``up`` (serving), ``suspect`` (timed out,
  being retried with backoff), ``down`` (crashed or retries exhausted;
  excluded from routing), ``recovering`` (respawned worker replaying its
  journal).  A ``down`` shard's client has been killed; it must be
  respawned before reuse.
* **Write-ahead journal** per shard — every state-mutating message
  (``arrive`` / ``depart`` / ``decide``) is appended *before* the send,
  stamped with a monotonic sequence number that is embedded in the wire
  message itself.  Replay after a respawn re-sends the journal in order
  and rebuilds the shard's exact pre-crash state; the worker dedups on
  the sequence number, so a message applied before the crash is never
  applied twice and no placement is lost or duplicated.
* **Seeded exponential backoff** — retry sleeps are
  ``base * 2^(attempt-1)`` with jitter drawn from ``random.Random(seed)``,
  so a fault-injection run's timing profile is reproducible.

The journal holds the message dicts the wire already uses — nothing new
crosses the pipe except the ``seq`` key, and only in supervised mode, so
an unsupervised service's wire bytes are untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List

from repro.scheduler.shard import ShardError

#: Shard health states.
HEALTH_UP = "up"
HEALTH_SUSPECT = "suspect"
HEALTH_DOWN = "down"
HEALTH_RECOVERING = "recovering"
HEALTH_STATES = (HEALTH_UP, HEALTH_SUSPECT, HEALTH_DOWN, HEALTH_RECOVERING)

#: Ops that mutate shard state and therefore must be journaled; reads
#: ("summary" / "report") and the stop handshake are replay-free.
MUTATING_OPS = frozenset({"arrive", "depart", "decide"})


class ShardDownError(ShardError):
    """The shard is (or just went) DOWN and recovery is deferred: the
    caller must fail the work over to a surviving shard.  The journal
    entry of the failed message has been rolled back — nothing was
    applied, so the eventual replay will not resurrect it."""


@dataclass(frozen=True)
class JournalEntry:
    """One journaled wire message; ``message`` already carries ``seq``."""

    seq: int
    message: Dict

    def to_dict(self) -> Dict:
        return {"seq": self.seq, "message": dict(self.message)}

    @classmethod
    def from_dict(cls, data: Dict) -> "JournalEntry":
        return cls(seq=data["seq"], message=dict(data["message"]))


class ShardJournal:
    """Write-ahead journal of one shard's state-mutating messages.

    ``append`` assigns the next sequence number and embeds it in the
    stored message, so the journaled form *is* the wire form — replay
    re-sends entries verbatim.  Sequence numbers are monotonic and never
    reused, even across ``rollback``; gaps are harmless (the worker
    dedups on ``seq <= applied``), reuse would not be.
    """

    def __init__(self) -> None:
        self.entries: List[JournalEntry] = []
        self.next_seq = 0

    def append(self, message: Dict) -> JournalEntry:
        entry = JournalEntry(
            seq=self.next_seq, message={**message, "seq": self.next_seq}
        )
        self.next_seq += 1
        self.entries.append(entry)
        return entry

    def rollback(self, entry: JournalEntry) -> None:
        """Remove a never-applied entry whose send terminally failed and
        whose work was re-routed.  Sends are sequential, so only the most
        recent entry can ever need rolling back."""
        if not self.entries or self.entries[-1].seq != entry.seq:
            raise ValueError(
                f"can only roll back the newest journal entry, not seq "
                f"{entry.seq}"
            )
        self.entries.pop()

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[JournalEntry]:
        return iter(self.entries)

    def to_dict(self) -> Dict:
        return {
            "next_seq": self.next_seq,
            "entries": [entry.to_dict() for entry in self.entries],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ShardJournal":
        journal = cls()
        journal.next_seq = data["next_seq"]
        journal.entries = [
            JournalEntry.from_dict(entry) for entry in data["entries"]
        ]
        return journal


class ShardSupervisor:
    """Front-end-side supervision state for every shard.

    Parameters
    ----------
    n_shards:
        Number of shards supervised.
    retries:
        Bounded timeout retries per message before the shard is marked
        DOWN.
    backoff_base_s:
        Base of the exponential backoff sleep between retries.
    recovery_rounds:
        0 — recover a dead shard *immediately* (respawn + full journal
        replay inside the failed send; the caller never sees the fault).
        k > 0 — defer recovery for k routing rounds: the shard stays
        DOWN, arrivals fail over to survivors (degraded windows), and
        the respawn+replay happens k rounds later.
    seed:
        Seeds the backoff jitter stream.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        retries: int = 2,
        backoff_base_s: float = 0.05,
        recovery_rounds: int = 0,
        seed: int = 0,
    ) -> None:
        self.n_shards = n_shards
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.recovery_rounds = recovery_rounds
        self.health: List[str] = [HEALTH_UP] * n_shards
        self.journals: List[ShardJournal] = [
            ShardJournal() for _ in range(n_shards)
        ]
        self._rng = random.Random(seed)
        self._down_round: Dict[int, int] = {}
        #: shard -> monotonic reply deadline (or None) of its in-flight
        #: send.  Overlapped dispatch keeps one entry per shard it has
        #: fired and not yet gathered; sequential dispatch keeps at most
        #: one entry total.
        self._in_flight: Dict[int, float | None] = {}
        #: High-water mark of concurrently in-flight sends (observability
        #: for the overlapped dispatcher; 1 under sequential dispatch).
        self.max_in_flight = 0

    # -- journal -------------------------------------------------------

    def journal(self, shard: int, message: Dict) -> JournalEntry:
        return self.journals[shard].append(message)

    def rollback(self, shard: int, entry: JournalEntry) -> None:
        self.journals[shard].rollback(entry)

    # -- in-flight sends -----------------------------------------------

    def track_send(self, shard: int, deadline: float | None) -> None:
        """Account one fired send: the shard's reply is now owed by
        ``deadline`` (monotonic; None means no deadline).  Overlapped
        dispatch tracks every shard of a round at once."""
        self._in_flight[shard] = deadline
        self.max_in_flight = max(self.max_in_flight, len(self._in_flight))

    def settle_send(self, shard: int) -> None:
        """The shard's in-flight send resolved (reply, timeout, or
        crash): it no longer owes a reply."""
        self._in_flight.pop(shard, None)

    def in_flight(self) -> Dict[int, float | None]:
        """Shard -> reply deadline for every unresolved send."""
        return dict(self._in_flight)

    def overdue(self, shard: int, now: float) -> bool:
        """The shard's in-flight reply deadline has passed."""
        deadline = self._in_flight.get(shard)
        return deadline is not None and now >= deadline

    # -- health --------------------------------------------------------

    def mark_suspect(self, shard: int) -> None:
        if self.health[shard] == HEALTH_UP:
            self.health[shard] = HEALTH_SUSPECT

    def mark_down(self, shard: int, round_index: int) -> None:
        self.health[shard] = HEALTH_DOWN
        self._down_round[shard] = round_index

    def mark_recovering(self, shard: int) -> None:
        self.health[shard] = HEALTH_RECOVERING

    def mark_up(self, shard: int) -> None:
        self.health[shard] = HEALTH_UP
        self._down_round.pop(shard, None)

    def down_shards(self) -> FrozenSet[int]:
        return frozenset(
            shard
            for shard in range(self.n_shards)
            if self.health[shard] == HEALTH_DOWN
        )

    def due_for_recovery(self, shard: int, current_round: int) -> bool:
        if self.health[shard] != HEALTH_DOWN:
            return False
        down_round = self._down_round.get(shard, current_round)
        return current_round - down_round >= self.recovery_rounds

    # -- backoff -------------------------------------------------------

    def backoff_seconds(self, attempt: int) -> float:
        """Exponential backoff with seeded jitter: attempt 1 sleeps about
        ``base``, attempt 2 about ``2*base``, ... (jitter in [0.5, 1.5))."""
        return (
            self.backoff_base_s
            * (2 ** (attempt - 1))
            * (0.5 + self._rng.random())
        )

    def describe_health(self) -> str:
        return " ".join(
            f"{shard}:{self.health[shard]}" for shard in range(self.n_shards)
        )


__all__ = [
    "HEALTH_DOWN",
    "HEALTH_RECOVERING",
    "HEALTH_STATES",
    "HEALTH_SUSPECT",
    "HEALTH_UP",
    "JournalEntry",
    "MUTATING_OPS",
    "ShardDownError",
    "ShardJournal",
    "ShardSupervisor",
]
