"""Front-end admission control: shed load deliberately, not by collapse.

Without admission control the sharded service accepts unbounded
traffic: a request that can never fit still burns a full route/retry
fan-out, a saturated fleet queues everything, and a DOWN shard lets
tail latency explode.  The :class:`AdmissionController` sits in front
of the routing window and applies three screens, in order:

1. **Feasibility** (``admission:infeasible``) — no machine shape in the
   fleet can *ever* host the request's vcpus class (by
   :func:`~repro.scheduler.fleet.minimal_shape`); reject before any
   shard round trip.  Note the bound is structural: a class whose
   minimal shape fits but that a specific policy cannot place (e.g. no
   important placement in the ML policy's tables) passes this screen
   and is rejected shard-side exactly as without admission.
2. **Saturation** (``admission:capacity``) — every live shard's
   capacity vector *and* per-shape free-node totals prove the request
   cannot be placed (the caller computes that predicate; see
   ``SchedulerService._fleet_saturated``); reject up front instead of
   fanning out to collect the same answer per shard.
3. **Brown-out** — when shard health or the fleet-wide capacity
   fraction degrades, best-effort arrivals (``goal_fraction is None``)
   are *held* in a bounded queue while strict-goal traffic keeps
   flowing.  The queue sheds according to ``shed_policy``:

   * ``drop-newest`` — an arrival that finds the queue full is shed
     (``admission:queue-full``);
   * ``drop-oldest`` — the head of the queue is evicted to make room
     (``admission:evicted``);
   * ``deadline`` — holds whose per-request deadline budget is already
     spent are shed first (``admission:deadline``); if nothing has
     expired the overflow falls back to drop-newest.

   Brown-out uses hysteresis: it is entered when any shard is
   DOWN/RECOVERING or the capacity fraction drops below
   ``brownout_watermark``, but only exits once every shard is healthy
   *and* the fraction recovers to ``1.5 x watermark`` (capped at 1.0),
   so a fleet oscillating around the watermark does not flap.  On exit
   the held queue drains back into the routing window; a request that
   departs while held is cancelled (``admission:expired``), and holds
   still queued when the stream ends are shed (``admission:brownout``).

Every screen outcome is a typed :class:`AdmissionDecision` and every
counter lives in :class:`AdmissionStats` — both JSON-wire round-trip
via ``to_dict``/``from_dict`` and stats merge with ``+`` so per-service
counters aggregate across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.scheduler.fleet import minimal_shape
from repro.scheduler.requests import PlacementRequest
from repro.topology.machine import MachineTopology

#: Queue shed policies accepted by ``ScheduleConfig.shed_policy``.
SHED_POLICIES = ("drop-newest", "drop-oldest", "deadline")

#: Typed reject reasons (the ``admission:`` prefix distinguishes a
#: front-end shed from a shard-side ``capacity``/``infeasible`` reject).
REASON_INFEASIBLE = "admission:infeasible"
REASON_CAPACITY = "admission:capacity"
REASON_QUEUE_FULL = "admission:queue-full"
REASON_EVICTED = "admission:evicted"
REASON_DEADLINE = "admission:deadline"
REASON_EXPIRED = "admission:expired"
REASON_BROWNOUT = "admission:brownout"

_OUTCOMES = ("admit", "hold", "reject")

#: A shed record: (request, the event time it was offered/held at, reason).
Shed = Tuple[PlacementRequest, float, str]

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionStats",
    "REASON_BROWNOUT",
    "REASON_CAPACITY",
    "REASON_DEADLINE",
    "REASON_EVICTED",
    "REASON_EXPIRED",
    "REASON_INFEASIBLE",
    "REASON_QUEUE_FULL",
    "SHED_POLICIES",
]


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of screening one arrival through the admission controller."""

    request_id: int
    #: ``admit`` (feed the routing window), ``hold`` (queued during
    #: brown-out), or ``reject`` (shed with a typed ``reason``).
    outcome: str
    reason: str | None = None

    def __post_init__(self) -> None:
        if self.outcome not in _OUTCOMES:
            raise ValueError(
                f"outcome must be one of {_OUTCOMES}, got {self.outcome!r}"
            )
        if self.outcome == "reject" and self.reason is None:
            raise ValueError("a reject decision must carry a reason")

    def describe(self) -> str:
        text = f"request {self.request_id} -> {self.outcome.upper()}"
        if self.reason is not None:
            text += f" ({self.reason})"
        return text

    def to_dict(self) -> Dict:
        return {
            "request_id": self.request_id,
            "outcome": self.outcome,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "AdmissionDecision":
        return cls(
            request_id=data["request_id"],
            outcome=data["outcome"],
            reason=data["reason"],
        )


@dataclass
class AdmissionStats:
    """Admission-controller counters; wire round-trippable and mergeable."""

    #: Arrivals screened (one per offered request).
    offered: int = 0
    #: Screened straight into the routing window.
    admitted: int = 0
    #: Rejected up front: no machine shape can ever host the class.
    rejected_infeasible: int = 0
    #: Rejected up front: every live shard provably cannot place it.
    rejected_capacity: int = 0
    #: Best-effort arrivals ever held in the brown-out queue.
    held: int = 0
    #: High-water mark of the held queue (merge takes the max).
    held_peak: int = 0
    #: Holds drained back into the routing window on brown-out exit.
    drained: int = 0
    #: Sheds, by cause.
    shed_queue_full: int = 0
    shed_evicted: int = 0
    shed_deadline: int = 0
    #: Holds cancelled because the request departed while queued.
    shed_expired: int = 0
    #: Holds still queued when the stream ended.
    shed_brownout: int = 0
    brownout_entries: int = 0
    brownout_exits: int = 0

    @property
    def shed_total(self) -> int:
        return (
            self.shed_queue_full
            + self.shed_evicted
            + self.shed_deadline
            + self.shed_expired
            + self.shed_brownout
        )

    @property
    def rejected_total(self) -> int:
        return self.rejected_infeasible + self.rejected_capacity

    def __add__(self, other: "AdmissionStats") -> "AdmissionStats":
        if not isinstance(other, AdmissionStats):
            return NotImplemented
        return AdmissionStats(
            offered=self.offered + other.offered,
            admitted=self.admitted + other.admitted,
            rejected_infeasible=(
                self.rejected_infeasible + other.rejected_infeasible
            ),
            rejected_capacity=(
                self.rejected_capacity + other.rejected_capacity
            ),
            held=self.held + other.held,
            held_peak=max(self.held_peak, other.held_peak),
            drained=self.drained + other.drained,
            shed_queue_full=self.shed_queue_full + other.shed_queue_full,
            shed_evicted=self.shed_evicted + other.shed_evicted,
            shed_deadline=self.shed_deadline + other.shed_deadline,
            shed_expired=self.shed_expired + other.shed_expired,
            shed_brownout=self.shed_brownout + other.shed_brownout,
            brownout_entries=self.brownout_entries + other.brownout_entries,
            brownout_exits=self.brownout_exits + other.brownout_exits,
        )

    def to_dict(self) -> Dict:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected_infeasible": self.rejected_infeasible,
            "rejected_capacity": self.rejected_capacity,
            "held": self.held,
            "held_peak": self.held_peak,
            "drained": self.drained,
            "shed_queue_full": self.shed_queue_full,
            "shed_evicted": self.shed_evicted,
            "shed_deadline": self.shed_deadline,
            "shed_expired": self.shed_expired,
            "shed_brownout": self.shed_brownout,
            "brownout_entries": self.brownout_entries,
            "brownout_exits": self.brownout_exits,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "AdmissionStats":
        return cls(**data)


class AdmissionController:
    """Screen arrivals: feasibility gate, saturation gate, brown-out queue.

    The controller is transport-agnostic — it never talks to a shard.
    The service feeds it health/capacity observations
    (:meth:`observe`), asks it to :meth:`screen` each arrival, and emits
    the shed records it returns as typed front-end rejects.
    """

    def __init__(
        self,
        *,
        machines: Sequence[MachineTopology],
        classes: Sequence[int] = (),
        queue_limit: int | None = None,
        shed_policy: str = "drop-newest",
        deadline_budget_s: float = 30.0,
        brownout_watermark: float = 0.0,
    ) -> None:
        if shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"shed_policy must be one of {SHED_POLICIES}, "
                f"got {shed_policy!r}"
            )
        if queue_limit is not None and queue_limit < 1:
            raise ValueError("queue_limit must be >= 1 (or None: unbounded)")
        if deadline_budget_s <= 0:
            raise ValueError("deadline_budget_s must be positive")
        if not 0.0 <= brownout_watermark <= 1.0:
            raise ValueError("brownout_watermark must be in [0, 1]")
        #: Distinct machine shapes, for the structural feasibility gate.
        seen: Set[Tuple] = set()
        self._machines: List[MachineTopology] = []
        for machine in machines:
            fingerprint = machine.fingerprint()
            if fingerprint not in seen:
                seen.add(fingerprint)
                self._machines.append(machine)
        self._feasible: Dict[int, bool] = {}
        self.queue_limit = queue_limit
        self.shed_policy = shed_policy
        self.deadline_budget_s = deadline_budget_s
        self.brownout_watermark = brownout_watermark
        #: Exit threshold: 1.5x the entry watermark, capped at full
        #: capacity — the hysteresis band.
        self.exit_watermark = min(1.0, 1.5 * brownout_watermark)
        self.in_brownout = False
        self._held: List[Tuple[PlacementRequest, float]] = []
        self._held_ids: Set[int] = set()
        self.stats = AdmissionStats()
        # `classes` is advisory (pre-warms the feasibility memo).
        for vcpus in classes:
            self.feasible(int(vcpus))

    # ------------------------------------------------------------------
    # Screens
    # ------------------------------------------------------------------
    def feasible(self, vcpus: int) -> bool:
        """True when some machine shape can ever host ``vcpus``."""
        if vcpus not in self._feasible:
            feasible = False
            for machine in self._machines:
                try:
                    minimal_shape(machine, vcpus)
                except ValueError:
                    continue
                feasible = True
                break
            self._feasible[vcpus] = feasible
        return self._feasible[vcpus]

    def observe(
        self, down_shards: int, capacity_fraction: float | None
    ) -> str | None:
        """Feed a health/capacity observation; returns ``"entered"`` /
        ``"exited"`` on a brown-out transition, else None."""
        if not self.in_brownout:
            degraded = down_shards > 0 or (
                self.brownout_watermark > 0.0
                and capacity_fraction is not None
                and capacity_fraction < self.brownout_watermark
            )
            if degraded:
                self.in_brownout = True
                self.stats.brownout_entries += 1
                return "entered"
            return None
        recovered = down_shards == 0 and (
            self.brownout_watermark <= 0.0
            or capacity_fraction is None
            or capacity_fraction >= self.exit_watermark
        )
        if recovered:
            self.in_brownout = False
            self.stats.brownout_exits += 1
            return "exited"
        return None

    def screen(
        self,
        request: PlacementRequest,
        event_time: float,
        *,
        saturated: bool = False,
    ) -> Tuple[AdmissionDecision, List[Shed]]:
        """Screen one arrival.

        Returns the decision for ``request`` plus any *other* holds shed
        to make room (drop-oldest eviction).  ``saturated`` is the
        caller's fleet-wide guaranteed-reject predicate.
        """
        self.stats.offered += 1
        if not self.feasible(request.vcpus):
            self.stats.rejected_infeasible += 1
            return (
                AdmissionDecision(
                    request.request_id, "reject", REASON_INFEASIBLE
                ),
                [],
            )
        if saturated:
            self.stats.rejected_capacity += 1
            return (
                AdmissionDecision(
                    request.request_id, "reject", REASON_CAPACITY
                ),
                [],
            )
        if self.in_brownout and request.goal_fraction is None:
            return self._hold(request, event_time)
        self.stats.admitted += 1
        return AdmissionDecision(request.request_id, "admit"), []

    def _hold(
        self, request: PlacementRequest, event_time: float
    ) -> Tuple[AdmissionDecision, List[Shed]]:
        sheds: List[Shed] = []
        if (
            self.queue_limit is not None
            and len(self._held) >= self.queue_limit
        ):
            if self.shed_policy == "drop-oldest":
                victim, held_at = self._held.pop(0)
                self._held_ids.discard(victim.request_id)
                self.stats.shed_evicted += 1
                sheds.append((victim, held_at, REASON_EVICTED))
            else:
                # drop-newest, and the deadline policy's overflow
                # fallback once nothing has expired this tick.
                self.stats.shed_queue_full += 1
                return (
                    AdmissionDecision(
                        request.request_id, "reject", REASON_QUEUE_FULL
                    ),
                    sheds,
                )
        self._held.append((request, event_time))
        self._held_ids.add(request.request_id)
        self.stats.held += 1
        self.stats.held_peak = max(self.stats.held_peak, len(self._held))
        return AdmissionDecision(request.request_id, "hold"), sheds

    # ------------------------------------------------------------------
    # Held-queue lifecycle
    # ------------------------------------------------------------------
    @property
    def held_count(self) -> int:
        return len(self._held)

    def is_held(self, request_id: int) -> bool:
        return request_id in self._held_ids

    def expire(self, now: float) -> List[Shed]:
        """Shed holds whose deadline budget is spent (deadline policy).

        Holds are appended in event-time order, so expiry pops from the
        front until the head is still within budget.
        """
        sheds: List[Shed] = []
        while (
            self._held
            and now - self._held[0][1] > self.deadline_budget_s
        ):
            request, held_at = self._held.pop(0)
            self._held_ids.discard(request.request_id)
            self.stats.shed_deadline += 1
            sheds.append((request, held_at, REASON_DEADLINE))
        return sheds

    def cancel(self, request_id: int) -> Shed | None:
        """Drop a hold whose request departed before it was ever placed."""
        if request_id not in self._held_ids:
            return None
        self._held_ids.discard(request_id)
        for position, (request, held_at) in enumerate(self._held):
            if request.request_id == request_id:
                self._held.pop(position)
                self.stats.shed_expired += 1
                return (request, held_at, REASON_EXPIRED)
        return None

    def drain(self) -> List[Tuple[PlacementRequest, float]]:
        """Release every hold back to the caller (brown-out exited)."""
        drained = self._held
        self._held = []
        self._held_ids.clear()
        self.stats.drained += len(drained)
        return drained

    def flush(self) -> List[Shed]:
        """Shed every remaining hold (the stream ended mid-brown-out)."""
        sheds: List[Shed] = []
        for request, held_at in self._held:
            self.stats.shed_brownout += 1
            sheds.append((request, held_at, REASON_BROWNOUT))
        self._held = []
        self._held_ids.clear()
        return sheds
