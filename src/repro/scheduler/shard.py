"""Worker shards: each owns a fleet slice behind a message protocol.

The sharded service (:mod:`repro.scheduler.service`) is two-level
scheduling in the Borg/Omega mold: a front-end routes requests across
*shards*, and each shard runs the existing engines — the policies'
``decide_batch``, the lifecycle engine's churn handling, the rebalancer —
unchanged against its own :class:`~repro.scheduler.fleet.Fleet`,
:class:`~repro.scheduler.registry.ModelRegistry`, and (through them) its
own fleet index and block-score tables.  A shard never sees another
shard's hosts, so its candidate scans are ``1/n_shards`` the size, and a
window of routed arrivals is decided in one policy batch so the fused
forest call amortizes per shard.

Everything crossing the shard boundary is a JSON-safe dict built from
the wire surface (``to_dict`` / ``from_dict``): requests in, graded
decision traces out, with a :class:`ShardSummary` piggybacked on every
response so the router's view refreshes for free.  The
:class:`InlineShardClient` runs the worker in-process but still pushes
every message through ``json.dumps``/``loads`` — the wire format is
exercised on every transport, not just the multiprocess one — while
:class:`ProcessShardClient` runs the same worker loop in a separate
process connected by a pipe.

Worker message protocol (all payloads JSON-safe dicts):

========= ==========================================================
op        meaning
========= ==========================================================
arrive    lifecycle arrivals: ``events=[[request_dict, time], ...]``
          decided in one ``step_batch`` window; returns graded traces
depart    lifecycle departures: ``events=[[request_id, time], ...]``
          (a departure needs nothing but the id); frees placements
decide    one-shot batch (no churn): ``requests=[request_dict, ...]``
summary   just the shard's routing summary
report    the shard's full FleetReport payload (without decisions)
stop      shut the worker down (process transport exits its loop)
========= ==========================================================

Both clients expose the protocol twice: the classic blocking
``request(message)`` round trip, and the split ``send(message)`` /
``recv(timeout)`` pair (plus a pipelined ``request_many``) the service's
overlapped dispatcher uses to fire every shard's message before waiting
on any reply.  ``send`` stamps the reply deadline, ``recv`` polls only
the remaining budget, and ``reply_ready`` / ``gather_connection`` /
``recv_deadline`` are the gather surface
``multiprocessing.connection.wait`` selects over.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.scheduler.events import EventKind, LifecycleEvent
from repro.scheduler.lifecycle import LifecycleScheduler, RebalanceConfig
from repro.scheduler.requests import PlacementRequest
from repro.scheduler.capacity import CapacityTracker, CapacityVector
from repro.scheduler.scheduler import FleetReport, GradedDecision, grade_decision
from repro.topology.machine import MachineTopology


class ShardError(RuntimeError):
    """A shard transport failure the front-end can reason about."""

    def __init__(self, shard_id: int, detail: str) -> None:
        super().__init__(f"shard {shard_id}: {detail}")
        self.shard_id = shard_id
        self.detail = detail


class ShardCrashError(ShardError):
    """The worker died: its pipe closed, its process exited, or a fault
    plan killed it.  Whatever state it held is gone — recovery means a
    respawn plus a journal replay, never a plain retry."""


class ShardTimeoutError(ShardError):
    """The worker did not answer within the request timeout.  The message
    may or may not have been applied (a lost reply looks identical to a
    wedged worker), which is exactly why retries carry the same sequence
    number: an applied message is answered from the worker's dedup cache
    instead of being applied twice."""


@dataclass(frozen=True)
class ShardSummary:
    """The cheap per-shard state the front-end routes on.

    Deliberately tiny — a few counters plus one entry per machine
    *shape* (not per host), so refreshing it costs O(#shapes) reads of
    the shard's incremental index, and shipping it costs a few hundred
    bytes however many hosts the shard owns.  The router treats it as
    *advisory*: between refreshes it goes stale, and a placement routed
    on stale numbers is recovered by the service's optimistic retry.
    """

    shard_id: int
    n_hosts: int
    free_nodes_total: int
    total_nodes: int
    used_threads: int
    total_threads: int
    active_containers: int
    #: machine name -> {"n_hosts", "free_nodes", "largest_free_block"}.
    shapes: Dict[str, Dict[str, int]]
    #: Available-space vector (admission mode only; None keeps the
    #: pre-admission wire payload byte-identical).
    capacity: "CapacityVector | None" = None

    def to_dict(self) -> Dict:
        data = {
            "shard_id": self.shard_id,
            "n_hosts": self.n_hosts,
            "free_nodes_total": self.free_nodes_total,
            "total_nodes": self.total_nodes,
            "used_threads": self.used_threads,
            "total_threads": self.total_threads,
            "active_containers": self.active_containers,
            "shapes": {
                name: dict(entry) for name, entry in self.shapes.items()
            },
        }
        if self.capacity is not None:
            data["capacity"] = self.capacity.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "ShardSummary":
        capacity = data.get("capacity")
        return cls(
            shard_id=data["shard_id"],
            n_hosts=data["n_hosts"],
            free_nodes_total=data["free_nodes_total"],
            total_nodes=data["total_nodes"],
            used_threads=data["used_threads"],
            total_threads=data["total_threads"],
            active_containers=data["active_containers"],
            shapes={
                name: dict(entry)
                for name, entry in data["shapes"].items()
            },
            capacity=(
                None
                if capacity is None
                else CapacityVector.from_dict(capacity)
            ),
        )

    @classmethod
    def initial(
        cls,
        shard_id: int,
        machines: Sequence[MachineTopology],
        *,
        capacity: "CapacityVector | None" = None,
    ) -> "ShardSummary":
        """The summary of a freshly built (empty) shard — what the router
        knows before the shard's first response arrives."""
        shapes: Dict[str, Dict[str, int]] = {}
        for machine in machines:
            entry = shapes.setdefault(
                machine.name,
                {"n_hosts": 0, "free_nodes": 0, "largest_free_block": 0},
            )
            entry["n_hosts"] += 1
            entry["free_nodes"] += machine.n_nodes
            entry["largest_free_block"] = max(
                entry["largest_free_block"], machine.n_nodes
            )
        return cls(
            shard_id=shard_id,
            n_hosts=len(machines),
            free_nodes_total=sum(m.n_nodes for m in machines),
            total_nodes=sum(m.n_nodes for m in machines),
            used_threads=0,
            total_threads=sum(m.total_threads for m in machines),
            active_containers=0,
            shapes=shapes,
            capacity=capacity,
        )


class ShardWorker:
    """One shard: a fleet slice plus the engines that schedule on it.

    Parameters
    ----------
    shard_id:
        This shard's index; also selects the fleet slice (host ``g`` of
        the global fleet belongs to shard ``g % shards``).
    config:
        The service-wide :class:`~repro.scheduler.config.ScheduleConfig`.
        The worker builds its own registry and policy from it, so a
        process-transport worker reconstructs bit-for-bit the same
        artifacts as an inline one (everything derives from the seed and
        the preset names).
    machines:
        Optional explicit fleet slice (one topology per local host).
        Defaults to ``config.machine_list()[shard_id::config.shards]``.
    """

    def __init__(
        self,
        shard_id: int,
        config,
        *,
        machines: Sequence[MachineTopology] | None = None,
    ) -> None:
        from repro.scheduler.fleet import Fleet

        self.shard_id = shard_id
        self.config = config
        if machines is None:
            machines = config.machine_list()[shard_id :: config.shards]
        if not machines:
            raise ValueError(
                f"shard {shard_id} of {config.shards} owns no hosts "
                f"({config.hosts} total)"
            )
        self.machines = list(machines)
        self.fleet = Fleet(self.machines)
        self.registry = config.build_registry()
        self.policy = config.build_policy(self.registry)
        self.engine = LifecycleScheduler(
            self.fleet,
            self.policy,
            registry=self.registry,
            config=RebalanceConfig(
                enabled=config.rebalance_enabled,
                reject_penalty_seconds=config.penalty_seconds,
            ),
        )
        #: Incremental available-space tracker (admission mode only —
        #: built *after* the fleet so the hosts are already indexed, and
        #: only then so the admission-off wire bytes carry no capacity
        #: key).
        self.capacity: CapacityTracker | None = None
        if getattr(config, "admission", False):
            self.capacity = CapacityTracker(self.fleet.index, config.vcpus)
        self._next_seq = 0
        #: One-shot ("decide") accounting, separate from the lifecycle
        #: engine's graded list.
        self._one_shot_graded: List[GradedDecision] = []
        #: Wall-clock seconds spent inside handle() — the shard's own
        #: busy time, reported alongside the front-end's elapsed time.
        self.busy_seconds = 0.0
        #: Highest supervised sequence number applied, and its response.
        #: A retried message whose reply was lost is answered from here
        #: instead of being applied twice (see ShardTimeoutError).
        self._applied_seq = -1
        self._last_response: Dict | None = None

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def handle(self, message: Dict) -> Dict:
        """Process one protocol message; returns the JSON-safe response."""
        seq = message.get("seq")
        if seq is not None and seq <= self._applied_seq:
            if seq == self._applied_seq and self._last_response is not None:
                return self._last_response
            return {
                "deduped": True,
                "seq": seq,
                "summary": self.summary().to_dict(),
            }
        start = time.perf_counter()
        op = message["op"]
        if op == "arrive":
            response = self._handle_arrive(message["events"])
        elif op == "depart":
            response = self._handle_depart(message["events"])
        elif op == "decide":
            response = self._handle_decide(message["requests"])
        elif op == "summary":
            response = {}
        elif op == "report":
            response = {
                "report": self.report().to_dict(include_decisions=False)
            }
        elif op == "stop":
            response = {"stopped": True}
        else:
            raise ValueError(f"unknown shard op {op!r}")
        response["summary"] = self.summary().to_dict()
        self.busy_seconds += time.perf_counter() - start
        if seq is not None:
            # Echo the sequence number so a client that timed out and
            # retried can discard the stale reply of an earlier attempt
            # (only supervised messages carry seq, so the unsupervised
            # wire bytes are untouched).
            response["seq"] = seq
            self._applied_seq = seq
            self._last_response = response
        return response

    def _event(
        self, kind: EventKind, request_data: Dict, event_time: float
    ) -> LifecycleEvent:
        event = LifecycleEvent(
            event_time,
            self._next_seq,
            kind,
            PlacementRequest.from_dict(request_data),
        )
        self._next_seq += 1
        return event

    def _handle_arrive(self, events: Sequence) -> Dict:
        window = self.engine.step_batch(
            [
                self._event(EventKind.ARRIVAL, request_data, event_time)
                for request_data, event_time in events
            ]
        )
        return {"graded": [entry.to_dict() for entry in window]}

    def _handle_depart(self, events: Sequence) -> Dict:
        for request_id, event_time in events:
            self.engine.depart(request_id, event_time)
        return {"departed": len(events)}

    def _handle_decide(self, requests: Sequence[Dict]) -> Dict:
        """One-shot batch: decide + grade, no lifecycle bookkeeping —
        exactly what :class:`~repro.scheduler.scheduler.FleetScheduler`
        does with one of its batches."""
        batch = [PlacementRequest.from_dict(data) for data in requests]
        start = time.perf_counter()
        decisions = self.policy.decide_batch(batch, self.fleet)
        per_request = (time.perf_counter() - start) / max(len(batch), 1)
        graded = []
        for decision in decisions:
            entry = grade_decision(decision, self.fleet, self.registry)
            entry.decision_seconds = per_request
            graded.append(entry)
        self._one_shot_graded.extend(graded)
        return {"graded": [entry.to_dict() for entry in graded]}

    # ------------------------------------------------------------------
    # State views
    # ------------------------------------------------------------------

    def summary(self) -> ShardSummary:
        """The shard's routing summary, from the index's O(1) state."""
        index = self.fleet.index
        shapes: Dict[str, Dict[str, int]] = {}
        for fingerprint, machine in index.machines():
            buckets = index.buckets(fingerprint)
            sizes = [size for size, ids in buckets.items() if ids]
            shapes[machine.name] = {
                "n_hosts": len(index.host_ids(fingerprint)),
                "free_nodes": sum(
                    size * len(ids) for size, ids in buckets.items()
                ),
                "largest_free_block": max(sizes, default=0),
            }
        return ShardSummary(
            shard_id=self.shard_id,
            n_hosts=len(self.fleet),
            free_nodes_total=index.free_nodes_total,
            total_nodes=index.total_nodes,
            used_threads=index.used_threads,
            total_threads=index.total_threads,
            active_containers=len(self.engine._active),
            shapes=shapes,
            capacity=(
                None if self.capacity is None else self.capacity.vector()
            ),
        )

    def report(self) -> FleetReport:
        """This shard's own FleetReport (local host ids, local counters)."""
        if self._one_shot_graded and not self.engine.graded:
            return FleetReport.collect(
                policy=self.policy,
                fleet=self.fleet,
                registry=self.registry,
                n_requests=len(self._one_shot_graded),
                decisions=self._one_shot_graded,
                elapsed_seconds=self.busy_seconds,
            )
        return self.engine.collect_report(
            self.engine.stats.arrivals, self.busy_seconds
        )


# ----------------------------------------------------------------------
# Transports
# ----------------------------------------------------------------------


class InlineShardClient:
    """In-process shard: the worker lives in the caller's process.

    Every message and response still round-trips through JSON, so the
    inline transport exercises the identical wire surface the process
    transport ships over its pipe — a payload that only works inline is
    a bug this client catches immediately.

    The client speaks the split protocol (:meth:`send` then
    :meth:`recv`) the overlapped dispatcher uses; because the worker is
    in-process, the work happens synchronously inside ``send`` and the
    response waits in a FIFO buffer until ``recv`` collects it.
    """

    transport = "inline"

    def __init__(
        self,
        shard_id: int,
        config,
        *,
        machines: Sequence[MachineTopology] | None = None,
    ) -> None:
        self.shard_id = shard_id
        self.worker: ShardWorker | None = ShardWorker(
            shard_id, config, machines=machines
        )
        #: Responses produced at send time, awaiting recv, oldest first.
        self._pending: List[Dict] = []

    def send(self, message: Dict, timeout_s: float | None = None) -> None:
        """Deliver one message; the response buffers until :meth:`recv`."""
        if self.worker is None:
            raise ShardCrashError(self.shard_id, "worker was killed")
        payload = json.loads(json.dumps(message))
        self._pending.append(
            json.loads(json.dumps(self.worker.handle(payload)))
        )

    def recv(self, timeout_s: float | None = None) -> Dict:
        if not self._pending:
            raise ShardError(
                self.shard_id, "recv() without a pending send()"
            )
        return self._pending.pop(0)

    def request(self, message: Dict, timeout_s: float | None = None) -> Dict:
        self.send(message, timeout_s)
        return self.recv(timeout_s)

    def request_many(
        self,
        messages: Sequence[Dict],
        timeout_s: float | None = None,
        on_response=None,
    ) -> List[Dict]:
        """Round-trip a message batch in order (inline: sequentially)."""
        responses = []
        for message in messages:
            response = self.request(message, timeout_s)
            if on_response is not None:
                on_response(response)
            responses.append(response)
        return responses

    # -- gather surface (overlapped dispatch) ---------------------------

    def reply_ready(self) -> bool:
        """A response is buffered: recv() will not block."""
        return bool(self._pending)

    def gather_connection(self):
        """No pipe to wait on: inline replies are ready at send time."""
        return None

    def recv_deadline(self) -> float | None:
        return None

    def kill(self) -> None:
        """Simulate a crash: the worker and all its state are dropped, and
        every later request raises :class:`ShardCrashError` — the same
        contract a dead process presents to the front-end."""
        self.worker = None
        self._pending = []

    def close(self) -> None:  # symmetric with ProcessShardClient
        pass


def _shard_worker_main(
    connection, shard_id: int, config_data: Dict, parent_connection=None
) -> None:
    """Entry point of one shard worker process: rebuild the shard from
    the serialized config, then serve the message loop until ``stop``."""
    from repro.scheduler.config import ScheduleConfig

    if parent_connection is not None:
        # Drop the fork-inherited copy of the parent's pipe end: while
        # the child holds it open, the parent closing its end would
        # never EOF this worker's recv().
        parent_connection.close()
    worker = ShardWorker(shard_id, ScheduleConfig.from_dict(config_data))
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError):
            return  # parent hung up (crashed or closed): exit cleanly
        try:
            connection.send(worker.handle(message))
        except (BrokenPipeError, OSError):
            return  # reply pipe gone mid-send: nothing left to serve
        if message.get("op") == "stop":
            return


class ProcessShardClient:
    """One worker process per shard, connected by a pipe.

    The child rebuilds its fleet, registry, and policy from the
    serialized :class:`~repro.scheduler.config.ScheduleConfig` — nothing
    but JSON-safe dicts crosses the pipe, so the child's artifacts are
    reconstructed deterministically from the same seed and preset names
    the parent used.

    The split protocol is where the parallelism lives: :meth:`send`
    writes the message and stamps its reply deadline (monotonic clock,
    measured **from the send**), and :meth:`recv` polls only for the
    *remaining* budget — so a front-end that fires every shard's message
    first and gathers afterwards runs all workers' deadlines
    concurrently, and a slow shard cannot inflate the budget of the
    shards gathered after it.
    """

    transport = "process"

    def __init__(
        self, shard_id: int, config, *, timeout_s: float | None = None
    ) -> None:
        self.shard_id = shard_id
        #: Default reply deadline for request(); None blocks forever.
        self.timeout_s = timeout_s
        #: In-flight sends, oldest first: (reply deadline or None,
        #: expected response seq or None).
        self._in_flight: List[List] = []
        #: Replies drained off the pipe (to keep its buffers empty during
        #: pipelined batches) but not yet returned by recv().
        self._drained: List[Dict] = []
        parent, child = multiprocessing.Pipe()
        self._connection = parent
        self._process = multiprocessing.Process(
            target=_shard_worker_main,
            args=(child, shard_id, config.to_dict(), parent),
            daemon=True,
        )
        try:
            self._process.start()
        finally:
            # The parent must not hold the child's pipe end: while it
            # does, a dead worker never EOFs the parent's reads and the
            # descriptor itself leaks.
            child.close()

    def send(self, message: Dict, timeout_s: float | None = None) -> None:
        """Write one message to the worker and stamp its reply deadline."""
        timeout = self.timeout_s if timeout_s is None else timeout_s
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            self._connection.send(message)
        except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as error:
            raise ShardCrashError(
                self.shard_id,
                f"worker pipe closed ({type(error).__name__})",
            ) from error
        self._in_flight.append([deadline, message.get("seq")])

    def recv(self, timeout_s: float | None = None) -> Dict:
        """Collect the oldest in-flight reply.

        Polls with the budget *remaining* from the matching send (or the
        explicit ``timeout_s`` override, measured from now); a reply that
        is already buffered is returned even if the deadline has passed.
        Replies carrying a stale sequence number — a late answer to an
        attempt that already timed out — are discarded, so a retried
        message can never be paired with its predecessor's reply.
        """
        if not self._in_flight:
            raise ShardError(
                self.shard_id, "recv() without a pending send()"
            )
        deadline, expected = self._in_flight.pop(0)
        if timeout_s is not None:
            deadline = time.monotonic() + timeout_s
        try:
            while True:
                if self._drained:
                    reply = self._drained.pop(0)
                else:
                    remaining = (
                        None
                        if deadline is None
                        else deadline - time.monotonic()
                    )
                    if not self._connection.poll(
                        remaining if remaining is None else max(remaining, 0.0)
                    ):
                        raise ShardTimeoutError(
                            self.shard_id,
                            "no reply within the deadline stamped at send",
                        )
                    reply = self._connection.recv()
                if (
                    expected is not None
                    and isinstance(reply, dict)
                    and reply.get("seq") is not None
                    and reply["seq"] < expected
                ):
                    continue  # stale reply from a timed-out earlier attempt
                return reply
        except (EOFError, BrokenPipeError, ConnectionResetError) as error:
            raise ShardCrashError(
                self.shard_id,
                f"worker pipe closed ({type(error).__name__})",
            ) from error

    def request(self, message: Dict, timeout_s: float | None = None) -> Dict:
        self.send(message, timeout_s)
        return self.recv()

    def request_many(
        self,
        messages: Sequence[Dict],
        timeout_s: float | None = None,
        on_response=None,
    ) -> List[Dict]:
        """Pipeline a message batch over the pipe.

        All messages are written up front (the worker applies them in
        order); replies already available are drained between writes so
        neither side ever blocks on a full pipe buffer, then collected in
        order.  Used by journal replay, where the batch can span a whole
        stream's worth of windows.
        """
        responses = []
        for message in messages:
            self.send(message, timeout_s)
            try:
                while self._connection.poll(0):
                    self._drained.append(self._connection.recv())
            except (EOFError, BrokenPipeError, ConnectionResetError) as error:
                raise ShardCrashError(
                    self.shard_id,
                    f"worker pipe closed ({type(error).__name__})",
                ) from error
        for _ in messages:
            response = self.recv()
            if on_response is not None:
                on_response(response)
            responses.append(response)
        return responses

    # -- gather surface (overlapped dispatch) ---------------------------

    def reply_ready(self) -> bool:
        """A reply can be read without blocking (buffered, pending on the
        pipe, or the pipe has hit EOF — recv() resolves which)."""
        if self._drained:
            return True
        try:
            return self._connection.poll(0)
        except (OSError, EOFError, BrokenPipeError):
            return True  # dead pipe: recv() will raise ShardCrashError

    def gather_connection(self):
        """The pipe end ``multiprocessing.connection.wait`` can select on."""
        return self._connection

    def recv_deadline(self) -> float | None:
        """Monotonic deadline of the oldest in-flight reply (None: no
        deadline, or the reply is already buffered)."""
        if self._drained or not self._in_flight:
            return None
        return self._in_flight[0][0]

    def kill(self) -> None:
        """Hard-kill the worker (no stop handshake) and release the pipe —
        what a crash fault does, and close()'s last resort."""
        self._in_flight = []
        self._drained = []
        try:
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(timeout=5.0)
                if self._process.is_alive():  # pragma: no cover - defensive
                    self._process.kill()
                    self._process.join(timeout=5.0)
        finally:
            try:
                self._connection.close()
            except OSError:  # pragma: no cover - defensive
                pass

    def close(self) -> None:
        try:
            if self._process.is_alive():
                try:
                    self.request(
                        {"op": "stop"},
                        timeout_s=5.0 if self.timeout_s is None else None,
                    )
                except (ShardError, OSError):
                    pass
            self._process.join(timeout=5.0)
        finally:
            # The parent connection is closed (and a stuck worker is
            # terminated) even when the handshake or join above fails.
            self.kill()
