"""The fleet: many simulated hosts with node-granular capacity accounting.

A :class:`FleetHost` wraps one machine shape and tracks which NUMA nodes
are still free.  Placements claim whole nodes — the packing discipline the
paper's ML policy establishes on a single machine (disjoint node blocks, so
co-located containers never share caches or memory controllers) lifted to
the fleet.  Utilization is therefore reported two ways: *threads in use by
vCPUs* (what the customer pays for) and *nodes reserved* (what the operator
gave up).

Hosts of the same shape share one :class:`MachineTopology` instance, which
is what makes the topology-fingerprint memo cache effective: a thousand
hosts of two shapes cost two enumerations.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.placements import Placement
from repro.topology.machine import MachineTopology

#: Scores a candidate node block (higher = better interconnect bandwidth).
BlockScorer = Callable[[FrozenSet[int]], float]


def minimal_l2_share(machine: MachineTopology, per_node_vcpus: int) -> int:
    """Smallest L2 sharing degree that fits ``per_node_vcpus`` in a node."""
    for share in range(1, machine.threads_per_l2 + 1):
        if per_node_vcpus % share:
            continue
        if per_node_vcpus // share <= machine.l2_groups_per_node:
            return share
    raise ValueError(
        f"{per_node_vcpus} vCPUs per node do not fit {machine.name}'s "
        f"L2 groups in any balanced way"
    )


def minimal_shape(machine: MachineTopology, vcpus: int) -> Tuple[int, int]:
    """The cheapest realizable balanced shape: ``(node count, l2_share)``
    with the fewest nodes.

    A node count that divides the vCPUs evenly is not enough on its own —
    the per-node share must also split evenly over L2 groups (e.g. 10 vCPUs
    on a 4-L2-group node cannot balance on 2 nodes but can on 5), so the
    search advances to the next node count when the L2 constraint fails.
    """
    for n in range(1, machine.n_nodes + 1):
        if vcpus % n or vcpus // n > machine.threads_per_node:
            continue
        try:
            return n, minimal_l2_share(machine, vcpus // n)
        except ValueError:
            continue
    raise ValueError(f"{vcpus} vCPUs cannot be balanced on {machine.name}")


def minimal_node_count(machine: MachineTopology, vcpus: int) -> int:
    """Fewest nodes a balanced placement of ``vcpus`` can use."""
    return minimal_shape(machine, vcpus)[0]


class FleetHost:
    """One machine in the fleet, with free-node bookkeeping."""

    def __init__(self, host_id: int, machine: MachineTopology) -> None:
        self.host_id = host_id
        self.machine = machine
        self._free_nodes: set = set(machine.nodes)
        self._placements: Dict[int, Placement] = {}

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def free_nodes(self) -> FrozenSet[int]:
        return frozenset(self._free_nodes)

    @property
    def n_free_nodes(self) -> int:
        return len(self._free_nodes)

    @property
    def placements(self) -> Dict[int, Placement]:
        """Request id -> placement for every container on this host."""
        return dict(self._placements)

    @property
    def used_threads(self) -> int:
        return sum(p.vcpus for p in self._placements.values())

    @property
    def thread_utilization(self) -> float:
        return self.used_threads / self.machine.total_threads

    @property
    def node_utilization(self) -> float:
        return 1.0 - len(self._free_nodes) / self.machine.n_nodes

    # ------------------------------------------------------------------
    # Block search and allocation
    # ------------------------------------------------------------------

    def find_block(
        self,
        size: int,
        scorer: BlockScorer,
        *,
        target_score: float | None = None,
    ) -> Tuple[int, ...] | None:
        """A free node block of ``size`` nodes.

        With a ``target_score`` the block must match that interconnect
        score (rounded, as everywhere in the enumeration) — that is how a
        concrete block is found for an important placement chosen on score
        alone.  Without one, the best-scoring free block wins (the
        Smart-Aggressive rule: highest interconnect bandwidth).
        """
        if size < 1:
            raise ValueError("block size must be >= 1")
        if size > len(self._free_nodes):
            return None
        free = sorted(self._free_nodes)
        best: Tuple[int, ...] | None = None
        best_score = float("-inf")
        for combo in itertools.combinations(free, size):
            score = scorer(frozenset(combo))
            if target_score is not None:
                if round(score, 3) == round(target_score, 3):
                    return combo
                continue
            if score > best_score:
                best_score = score
                best = combo
        return best

    def allocate(self, request_id: int, placement: Placement) -> None:
        """Claim the placement's nodes for a request."""
        if request_id in self._placements:
            raise ValueError(f"request {request_id} is already on host")
        nodes = set(placement.nodes)
        if not nodes <= self._free_nodes:
            taken = sorted(nodes - self._free_nodes)
            raise ValueError(f"nodes {taken} are not free on host {self.host_id}")
        self._free_nodes -= nodes
        self._placements[request_id] = placement

    def release(self, request_id: int) -> Placement:
        """Return a departed container's nodes to the free pool."""
        placement = self._placements.pop(request_id, None)
        if placement is None:
            raise KeyError(f"request {request_id} is not on host {self.host_id}")
        self._free_nodes |= set(placement.nodes)
        return placement


class Fleet:
    """An ordered collection of hosts, possibly of mixed machine shapes.

    Parameters
    ----------
    machines:
        One entry per host.  Pass the *same* topology object for same-shape
        hosts (see :meth:`homogeneous` / :meth:`mixed`); structurally equal
        but distinct objects still work — the enumeration cache keys on the
        fingerprint, not the object.
    """

    def __init__(self, machines: Sequence[MachineTopology]) -> None:
        if not machines:
            raise ValueError("a fleet needs at least one host")
        self.hosts: List[FleetHost] = [
            FleetHost(host_id, machine)
            for host_id, machine in enumerate(machines)
        ]

    @classmethod
    def homogeneous(cls, machine: MachineTopology, n_hosts: int) -> "Fleet":
        if n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        return cls([machine] * n_hosts)

    @classmethod
    def mixed(
        cls, shapes: Sequence[Tuple[MachineTopology, int]]
    ) -> "Fleet":
        """A fleet from (machine shape, host count) pairs, interleaved so
        every scan order sees all shapes early."""
        rows = [
            [machine] * count
            for machine, count in shapes
            if count > 0
        ]
        if not rows:
            raise ValueError("a fleet needs at least one host")
        machines = [
            machine
            for batch in itertools.zip_longest(*rows)
            for machine in batch
            if machine is not None
        ]
        return cls(machines)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.hosts)

    def __iter__(self) -> Iterable[FleetHost]:
        return iter(self.hosts)

    @property
    def shapes(self) -> List[MachineTopology]:
        """The distinct machine shapes present, in first-seen order."""
        seen: Dict[Tuple, MachineTopology] = {}
        for host in self.hosts:
            seen.setdefault(host.machine.fingerprint(), host.machine)
        return list(seen.values())

    def hosts_by_load(self) -> List[FleetHost]:
        """Hosts sorted emptiest-first (the spread policy's scan order)."""
        return sorted(
            self.hosts,
            key=lambda h: (h.node_utilization, h.thread_utilization, h.host_id),
        )

    @property
    def total_threads(self) -> int:
        return sum(host.machine.total_threads for host in self.hosts)

    @property
    def used_threads(self) -> int:
        return sum(host.used_threads for host in self.hosts)

    @property
    def thread_utilization(self) -> float:
        return self.used_threads / self.total_threads

    @property
    def node_utilization(self) -> float:
        total = sum(host.machine.n_nodes for host in self.hosts)
        free = sum(host.n_free_nodes for host in self.hosts)
        return 1.0 - free / total

    def utilization_summary(self) -> str:
        per_host = [host.thread_utilization for host in self.hosts]
        return (
            f"threads {self.thread_utilization:.1%} "
            f"(busiest host {max(per_host):.1%}, idlest {min(per_host):.1%}), "
            f"nodes reserved {self.node_utilization:.1%}"
        )
