"""The fleet: many simulated hosts with node-granular capacity accounting.

A :class:`FleetHost` wraps one machine shape and tracks which NUMA nodes
are still free.  Placements claim whole nodes — the packing discipline the
paper's ML policy establishes on a single machine (disjoint node blocks, so
co-located containers never share caches or memory controllers) lifted to
the fleet.  Utilization is therefore reported two ways: *threads in use by
vCPUs* (what the customer pays for) and *nodes reserved* (what the operator
gave up).

Hosts of the same shape share one :class:`MachineTopology` instance, which
is what makes the topology-fingerprint memo cache effective: a thousand
hosts of two shapes cost two enumerations.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.core.blockscores import (  # noqa: F401  (re-exported API)
    SCORE_TOLERANCE,
    BlockScoreTable,
    scores_match,
)
from repro.core.placements import Placement
from repro.scheduler.index import FleetIndex
from repro.topology.machine import MachineTopology

#: Scores a candidate node block (higher = better interconnect bandwidth).
BlockScorer = Callable[[FrozenSet[int]], float]


class UnknownNodeError(ValueError):
    """A placement names node ids the host's machine does not have."""


class NodesBusyError(ValueError):
    """A placement names nodes that exist but are already claimed."""


def minimal_l2_share(machine: MachineTopology, per_node_vcpus: int) -> int:
    """Smallest L2 sharing degree that fits ``per_node_vcpus`` in a node."""
    if per_node_vcpus < 1:
        raise ValueError(f"per_node_vcpus must be >= 1, got {per_node_vcpus}")
    for share in range(1, machine.threads_per_l2 + 1):
        if per_node_vcpus % share:
            continue
        if per_node_vcpus // share <= machine.l2_groups_per_node:
            return share
    raise ValueError(
        f"{per_node_vcpus} vCPUs per node do not fit {machine.name}'s "
        f"L2 groups in any balanced way"
    )


def minimal_shape(machine: MachineTopology, vcpus: int) -> Tuple[int, int]:
    """The cheapest realizable balanced shape: ``(node count, l2_share)``
    with the fewest nodes.

    A node count that divides the vCPUs evenly is not enough on its own —
    the per-node share must also split evenly over L2 groups (e.g. 10 vCPUs
    on a 4-L2-group node cannot balance on 2 nodes but can on 5), so the
    search advances to the next node count when the L2 constraint fails.
    """
    if vcpus < 1:
        raise ValueError(f"vcpus must be >= 1, got {vcpus}")
    for n in range(1, machine.n_nodes + 1):
        if vcpus % n or vcpus // n > machine.threads_per_node:
            continue
        try:
            return n, minimal_l2_share(machine, vcpus // n)
        except ValueError:
            continue
    raise ValueError(f"{vcpus} vCPUs cannot be balanced on {machine.name}")


def minimal_node_count(machine: MachineTopology, vcpus: int) -> int:
    """Fewest nodes a balanced placement of ``vcpus`` can use."""
    return minimal_shape(machine, vcpus)[0]


class FleetHost:
    """One machine in the fleet, with free-node bookkeeping.

    Parameters
    ----------
    host_id:
        Position in the fleet's host list.
    machine:
        The host's machine shape.
    location_index:
        Optional shared ``request_id -> host_id`` mapping kept in sync by
        :meth:`allocate` / :meth:`release`.  :class:`Fleet` passes its own
        index so fleet-level release is an O(1) lookup; standalone hosts
        leave it ``None``.
    fleet_index:
        Optional :class:`~repro.scheduler.index.FleetIndex` notified on
        every allocate/release, keeping the fleet's bucketed host index
        and aggregate counters O(1)-fresh.  :class:`Fleet` wires its own;
        standalone hosts leave it ``None``.
    """

    def __init__(
        self,
        host_id: int,
        machine: MachineTopology,
        *,
        location_index: Dict[int, int] | None = None,
        fleet_index: FleetIndex | None = None,
    ) -> None:
        self.host_id = host_id
        self.machine = machine
        self._free_nodes: set = set(machine.nodes)
        self._placements: Dict[int, Placement] = {}
        self._used_threads = 0
        self._location_index = location_index
        self._fleet_index = fleet_index

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------

    @property
    def free_nodes(self) -> FrozenSet[int]:
        return frozenset(self._free_nodes)

    @property
    def n_free_nodes(self) -> int:
        return len(self._free_nodes)

    @property
    def placements(self) -> Dict[int, Placement]:
        """Request id -> placement for every container on this host."""
        return dict(self._placements)

    @property
    def used_threads(self) -> int:
        """Threads claimed by vCPUs — tracked incrementally, not summed
        per query (reports and the spread policy read it per host)."""
        return self._used_threads

    @property
    def thread_utilization(self) -> float:
        return self.used_threads / self.machine.total_threads

    @property
    def node_utilization(self) -> float:
        return 1.0 - len(self._free_nodes) / self.machine.n_nodes

    @property
    def largest_free_block(self) -> int:
        """Largest node block this host can still grant.

        Placements claim whole nodes and a block may be *any* subset of
        free nodes, so within one host the largest grantable block is
        simply the free-node count — fragmentation in this model lives
        *across* hosts (free capacity scattered in per-host chunks too
        small for the next container), which is what the lifecycle
        engine's fragmentation timeline tracks.
        """
        return len(self._free_nodes)

    # ------------------------------------------------------------------
    # Block search and allocation
    # ------------------------------------------------------------------

    def find_block(
        self,
        size: int,
        scorer: BlockScorer,
        *,
        target_score: float | None = None,
        exclude: Iterable[int] = (),
        table: BlockScoreTable | None = None,
    ) -> Tuple[int, ...] | None:
        """A free node block of ``size`` nodes.

        ``exclude`` removes free nodes from consideration — the rebalancer
        plans several migrations before executing any, so nodes already
        promised to an earlier migration in the same plan must not be
        offered twice.

        With a ``target_score`` the block must match that interconnect
        score per :func:`scores_match` — that is how a concrete block is
        found for an important placement chosen on score alone.  (A pure
        rounded-bucket comparison would reject scores a hair's width apart
        that happen to straddle a rounding boundary, silently losing the
        block and rejecting the request despite capacity.)  Without one,
        the best-scoring free block wins (the Smart-Aggressive rule:
        highest interconnect bandwidth).

        With a ``table`` (a shared per-shape
        :class:`~repro.core.blockscores.BlockScoreTable` built from the
        same scorer), both answers come from precomputed lookups instead
        of re-scoring combinations — bit-for-bit the same block.
        """
        if size < 1:
            raise ValueError("block size must be >= 1")
        if table is not None:
            return table.find(
                self._free_nodes,
                size,
                target_score=target_score,
                exclude=exclude,
            )
        free = sorted(self._free_nodes - set(exclude))
        if size > len(free):
            return None
        best: Tuple[int, ...] | None = None
        best_score = float("-inf")
        for combo in itertools.combinations(free, size):
            score = scorer(frozenset(combo))
            if target_score is not None:
                if scores_match(score, target_score):
                    return combo
                continue
            if score > best_score:
                best_score = score
                best = combo
        return best

    def allocate(self, request_id: int, placement: Placement) -> None:
        """Claim the placement's nodes for a request.

        Raises :class:`UnknownNodeError` when the placement names node ids
        the machine does not have (a placement built for the wrong shape —
        a lifecycle release/re-allocate bug) and :class:`NodesBusyError`
        when the nodes exist but are already claimed (a genuine capacity
        conflict).  Both are ``ValueError`` subclasses, but they surface
        very different bugs.
        """
        if request_id in self._placements:
            raise ValueError(f"request {request_id} is already on host")
        if (
            self._location_index is not None
            and request_id in self._location_index
        ):
            # Without this check a same-id allocation on a second host
            # would overwrite the fleet's location index and orphan the
            # first host's nodes forever.
            raise ValueError(
                f"request {request_id} is already placed on host "
                f"{self._location_index[request_id]} in this fleet"
            )
        nodes = set(placement.nodes)
        unknown = sorted(nodes - set(self.machine.nodes))
        if unknown:
            raise UnknownNodeError(
                f"nodes {unknown} do not exist on host {self.host_id} "
                f"({self.machine.name} has nodes 0..{self.machine.n_nodes - 1})"
            )
        if not nodes <= self._free_nodes:
            taken = sorted(nodes - self._free_nodes)
            raise NodesBusyError(
                f"nodes {taken} are not free on host {self.host_id}"
            )
        self._free_nodes -= nodes
        self._placements[request_id] = placement
        self._used_threads += placement.vcpus
        if self._location_index is not None:
            self._location_index[request_id] = self.host_id
        if self._fleet_index is not None:
            self._fleet_index.on_allocate(self, placement)

    def release(self, request_id: int) -> Placement:
        """Return a departed container's nodes to the free pool."""
        placement = self._placements.pop(request_id, None)
        if placement is None:
            raise KeyError(f"request {request_id} is not on host {self.host_id}")
        self._free_nodes |= set(placement.nodes)
        self._used_threads -= placement.vcpus
        if self._location_index is not None:
            self._location_index.pop(request_id, None)
        if self._fleet_index is not None:
            self._fleet_index.on_release(self, placement)
        return placement


class Fleet:
    """An ordered collection of hosts, possibly of mixed machine shapes.

    Parameters
    ----------
    machines:
        One entry per host.  Pass the *same* topology object for same-shape
        hosts (see :meth:`homogeneous` / :meth:`mixed`); structurally equal
        but distinct objects still work — the enumeration cache keys on the
        fingerprint, not the object.
    """

    def __init__(self, machines: Sequence[MachineTopology]) -> None:
        if not machines:
            raise ValueError("a fleet needs at least one host")
        self._locations: Dict[int, int] = {}
        self._index = FleetIndex()
        self.hosts: List[FleetHost] = [
            FleetHost(
                host_id,
                machine,
                location_index=self._locations,
                fleet_index=self._index,
            )
            for host_id, machine in enumerate(machines)
        ]
        for host in self.hosts:
            self._index.register(host)

    @classmethod
    def homogeneous(cls, machine: MachineTopology, n_hosts: int) -> "Fleet":
        if n_hosts < 1:
            raise ValueError("n_hosts must be >= 1")
        return cls([machine] * n_hosts)

    @classmethod
    def mixed(
        cls, shapes: Sequence[Tuple[MachineTopology, int]]
    ) -> "Fleet":
        """A fleet from (machine shape, host count) pairs, interleaved so
        every scan order sees all shapes early."""
        rows = [
            [machine] * count
            for machine, count in shapes
            if count > 0
        ]
        if not rows:
            raise ValueError("a fleet needs at least one host")
        machines = [
            machine
            for batch in itertools.zip_longest(*rows)
            for machine in batch
            if machine is not None
        ]
        return cls(machines)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.hosts)

    def __iter__(self) -> Iterable[FleetHost]:
        return iter(self.hosts)

    @property
    def index(self) -> FleetIndex:
        """The fleet's incremental host index (buckets + O(1) counters)."""
        return self._index

    @property
    def shapes(self) -> List[MachineTopology]:
        """The distinct machine shapes present, in first-seen order."""
        return self._index.shapes()

    def locate(self, request_id: int) -> int | None:
        """Host id currently running a request, or None if not placed."""
        return self._locations.get(request_id)

    def release(self, request_id: int) -> Tuple[int, Placement]:
        """Free a departed request's node block, wherever it landed.

        The request-id -> host-index mapping is maintained by the hosts'
        allocate/release bookkeeping, so this is an O(1) lookup rather
        than a fleet scan.  Returns ``(host_id, placement)``; raises
        ``KeyError`` for unknown (or already released) request ids.
        """
        host_id = self._locations.get(request_id)
        if host_id is None:
            raise KeyError(f"request {request_id} is not placed in the fleet")
        return host_id, self.hosts[host_id].release(request_id)

    def hosts_by_load(self) -> List[FleetHost]:
        """Hosts sorted emptiest-first (the spread policy's scan order)."""
        return sorted(
            self.hosts,
            key=lambda h: (h.node_utilization, h.thread_utilization, h.host_id),
        )

    @property
    def total_threads(self) -> int:
        return self._index.total_threads

    @property
    def used_threads(self) -> int:
        return self._index.used_threads

    @property
    def thread_utilization(self) -> float:
        if self._index.total_threads == 0:
            return 0.0
        return self._index.used_threads / self._index.total_threads

    @property
    def node_utilization(self) -> float:
        if self._index.total_nodes == 0:
            return 0.0
        return 1.0 - self._index.free_nodes_total / self._index.total_nodes

    @property
    def free_nodes_total(self) -> int:
        """Free nodes summed over all hosts (raw spare capacity) — an
        index counter, not a fleet scan."""
        return self._index.free_nodes_total

    @property
    def largest_free_block(self) -> int:
        """The biggest node block any single host can still grant.

        The gap between this and :attr:`free_nodes_total` is the fleet's
        fragmentation: plenty of spare nodes overall, none of them
        together on one host.  An empty host list reports 0 (``max()``
        over no hosts used to raise ``ValueError``); all counters come
        from the incremental :class:`~repro.scheduler.index.FleetIndex`,
        so this is O(1) however large the fleet.
        """
        if not self.hosts:
            return 0
        return self._index.largest_free_block

    def utilization_summary(self) -> str:
        per_host = [host.thread_utilization for host in self.hosts]
        return (
            f"threads {self.thread_utilization:.1%} "
            f"(busiest host {max(per_host):.1%}, idlest {min(per_host):.1%}), "
            f"nodes reserved {self.node_utilization:.1%}"
        )
