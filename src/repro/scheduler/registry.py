"""Per-shape artifacts the fleet scheduler needs: placements, models,
simulators.

Everything the paper trains or enumerates is keyed by ``(machine shape,
vCPU count)``, and a fleet sees only a handful of distinct keys across
thousands of requests.  The registry memoizes all of it:

* **important placements** through an :class:`~repro.core.memo.EnumerationCache`
  (the memoization can be disabled to reproduce the naive per-request
  pipeline — the benchmark's baseline);
* **prediction models** — one fitted :class:`~repro.core.model.PlacementModel`
  per key.  The canonical input pair from :mod:`repro.experiments` is used
  when the key matches the paper's evaluation; other keys fall back to a
  fixed (first, last) pair rather than paying the minutes-long automatic
  search per shape;
* **simulators** — one :class:`~repro.perfsim.simulator.PerformanceSimulator`
  per shape, standing in for the fleet's measurement plane;
* **noise-free IPC evaluations** — the grader's inputs.  The baseline
  (denominator) IPC depends only on ``(shape, vcpus, workload profile)``
  and the achieved (numerator) IPC only on ``(shape, profile, realized
  placement)``, both deterministic, so repeated shapes/profiles never
  re-simulate (:meth:`ModelRegistry.baseline_ipc` /
  :meth:`ModelRegistry.solo_ipc`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.enumeration import (
    ImportantPlacementSet,
    enumerate_important_placements,
)
from repro.core.memo import CacheInfo, EnumerationCache
from repro.core.model import PlacementModel
from repro.core.placements import Placement
from repro.core.training import TrainingSet, build_training_set
from repro.experiments import CANONICAL_PAIRS, paper_vcpus, training_corpus
from repro.perfsim.simulator import PerformanceSimulator
from repro.perfsim.workload import WorkloadProfile
from repro.scheduler.fleet import minimal_shape
from repro.topology.machine import MachineTopology


class ModelRegistry:
    """Lazily built, memoized per-(shape, vcpus) scheduler artifacts.

    Parameters
    ----------
    memoize_enumeration:
        When False, every :meth:`placements` call re-runs the Algorithm 1-3
        pipeline — the naive baseline the benchmark compares against.
    n_estimators:
        Forest size for fleet models.  Smaller than the paper's 100: the
        fleet scheduler calls the model thousands of times and Section 6's
        accuracy is not the experiment here.
    n_synthetic:
        Synthetic workloads added to the 18 paper applications in each
        training corpus.
    seed:
        Seeds the training corpus, the simulators, and the forests.
    memoize_ipc:
        When False, every :meth:`baseline_ipc` / :meth:`solo_ipc` call
        re-runs the (deterministic) noise-free simulation — the
        per-request grading cost the benchmark's baseline pays.
    """

    def __init__(
        self,
        *,
        memoize_enumeration: bool = True,
        n_estimators: int = 40,
        n_synthetic: int = 32,
        seed: int = 0,
        memoize_ipc: bool = True,
    ) -> None:
        self.memoize_enumeration = memoize_enumeration
        self.n_estimators = n_estimators
        self.n_synthetic = n_synthetic
        self.seed = seed
        self.memoize_ipc = memoize_ipc
        self.enumeration_cache = EnumerationCache()
        #: Enumeration pipeline runs that bypassed the cache (naive mode).
        self.uncached_enumerations = 0
        self._models: Dict[Tuple, PlacementModel] = {}
        #: (fingerprint, vcpus) -> the TrainingSet the key's model was
        #: fitted on, retained so online retraining can warm-start (append
        #: rows) instead of re-simulating the whole corpus.
        self._training_sets: Dict[Tuple, TrainingSet] = {}
        self._simulators: Dict[Tuple, PerformanceSimulator] = {}
        self._corpus: List[WorkloadProfile] | None = None
        #: (fingerprint, vcpus, profile, model-version token) -> baseline
        #: (denominator) IPC.
        self._baseline_ipc: Dict[Tuple, float] = {}
        #: (fingerprint, profile, placement) -> noise-free solo IPC.
        self._solo_ipc: Dict[Tuple, float] = {}
        self._ipc_hits = 0
        self._ipc_misses = 0

    # ------------------------------------------------------------------

    def placements(
        self, machine: MachineTopology, vcpus: int
    ) -> ImportantPlacementSet:
        """Important placements for the key — memoized unless the registry
        was built with ``memoize_enumeration=False``."""
        if self.memoize_enumeration:
            return self.enumeration_cache.get(machine, vcpus)
        self.uncached_enumerations += 1
        return enumerate_important_placements(machine, vcpus)

    def simulator(self, machine: MachineTopology) -> PerformanceSimulator:
        key = machine.fingerprint()
        simulator = self._simulators.get(key)
        if simulator is None:
            simulator = PerformanceSimulator(machine, seed=self.seed)
            self._simulators[key] = simulator
        return simulator

    def input_pair(
        self, machine: MachineTopology, vcpus: int
    ) -> Tuple[int, int]:
        """The model input pair for a key: the canonical searched pair when
        this is a paper configuration, else (first, last) — maximally far
        apart in the enumeration order, a serviceable stand-in for the
        cross-validated search."""
        if vcpus == paper_vcpus(machine) and machine.name in CANONICAL_PAIRS:
            return CANONICAL_PAIRS[machine.name]
        n = len(self.placements(machine, vcpus))
        if n < 2:
            raise ValueError(
                f"{machine.name} has only {n} important placement(s) for "
                f"{vcpus} vCPUs; the model needs two"
            )
        return (0, n - 1)

    def baseline_placement(
        self, machine: MachineTopology, vcpus: int
    ) -> Placement:
        """The placement performance goals are measured against: the
        model's baseline (first input-pair element).

        Some realizable container sizes have *no* important placement —
        the paper's Algorithm 2 only keeps blocks that tile the whole
        machine (e.g. 10 vCPUs on the 8-node AMD machine needs a 5-node
        block, which no whole-machine packing contains).  The heuristic
        policies still place such containers, so grading falls back to the
        minimal balanced shape on the machine's first nodes.
        """
        try:
            return self.placements(machine, vcpus)[
                self.input_pair(machine, vcpus)[0]
            ]
        except ValueError:
            n_nodes, l2_share = minimal_shape(machine, vcpus)
            return Placement(
                machine, range(n_nodes), vcpus, l2_share=l2_share
            )

    def model(self, machine: MachineTopology, vcpus: int) -> PlacementModel:
        """A fitted model for the key, trained once and reused.

        Model fitting is always memoized, even in naive mode: refitting per
        request would swamp the enumeration/prediction costs the naive
        baseline is meant to isolate.
        """
        key = (machine.fingerprint(), int(vcpus))
        model = self._models.get(key)
        if model is not None:
            return model
        if self._corpus is None:
            self._corpus = training_corpus(
                seed=self.seed + 42, n_synthetic=self.n_synthetic
            )
        pair = self.input_pair(machine, vcpus)
        training_set = build_training_set(
            machine,
            vcpus,
            self._corpus,
            simulator=self.simulator(machine),
            baseline_index=pair[0],
        )
        model = PlacementModel(
            input_pair=pair,
            n_estimators=self.n_estimators,
            random_state=self.seed,
        )
        model.fit(training_set)
        self._models[key] = model
        self._training_sets[key] = training_set
        return model

    def training_set(
        self, machine: MachineTopology, vcpus: int
    ) -> TrainingSet:
        """The corpus the key's model was fitted on (fitting it first if
        needed) — the warm-start base for online retraining."""
        key = (machine.fingerprint(), int(vcpus))
        if key not in self._training_sets:
            self.model(machine, vcpus)
        return self._training_sets[key]

    def model_version_token(
        self, machine: MachineTopology, vcpus: int
    ) -> int:
        """Cache-key component tying model-derived memo entries to the
        model version that produced them.

        The plain registry serves exactly one (frozen) model per key, so
        the token is constant; :class:`~repro.serving.server.ModelServer`
        overrides it with the key's active version id, which is what makes
        promotion invalidate exactly the stale ``baseline_ipc`` entries —
        same floats, different cache identity.
        """
        return 0

    def _current_version_token(self, fingerprint: Tuple, vcpus: int) -> int:
        """Fingerprint-keyed twin of :meth:`model_version_token` for the
        consistency hook (memo keys store fingerprints, not machines)."""
        return 0

    def assert_version_consistency(self) -> None:
        """Debug hook: every ``baseline_ipc`` memo entry is keyed with
        its key's *current* model version token.

        Promotion purges the retiring version's entries in the same call
        that flips the active version, so a surviving entry with a stale
        token means a promotion path skipped the purge.  This is the
        runtime counterpart of the memo-invalidation lint's
        ``model-promotion-memos`` surface
        (``repro.analysis.invalidation``).
        """
        for fingerprint, vcpus, _profile, token in self._baseline_ipc:
            current = self._current_version_token(fingerprint, vcpus)
            if token != current:
                raise AssertionError(
                    f"baseline_ipc memo keyed at version token {token} "
                    f"but the key serves token {current}; a promotion "
                    "skipped its cache purge"
                )

    # ------------------------------------------------------------------
    # Noise-free IPC memoization (the grader's hot path)
    # ------------------------------------------------------------------

    def solo_ipc(
        self,
        machine: MachineTopology,
        profile: WorkloadProfile,
        placement: Placement,
    ) -> float:
        """Noise-free measured IPC of a workload alone in a placement.

        Deterministic in its inputs (profiles and placements are frozen
        and hashable), so it is memoized unless the registry was built
        with ``memoize_ipc=False``; a cache hit returns the exact float
        the simulation produced, keeping grading bit-for-bit stable.
        """
        if not self.memoize_ipc:
            self._ipc_misses += 1
            return self.simulator(machine).measured_ipc(
                profile, placement, noise=False
            )
        key = (machine.fingerprint(), profile, placement)
        value = self._solo_ipc.get(key)
        if value is None:
            self._ipc_misses += 1
            value = self.simulator(machine).measured_ipc(
                profile, placement, noise=False
            )
            self._solo_ipc[key] = value
        else:
            self._ipc_hits += 1
        return value

    def probe_ipc(
        self,
        machine: MachineTopology,
        profile: WorkloadProfile,
        placement: Placement,
        *,
        duration_s: float,
        repetition: int,
    ) -> float:
        """A noisy probe observation, with the deterministic part memoized.

        The simulator's measured IPC factors as (noise-free IPC) x (noise
        multiplier); only the multiplier depends on the repetition, so the
        expensive deterministic part is served from :meth:`solo_ipc` and
        the per-probe cost is one noise draw.  Bit-for-bit equal to
        calling ``measured_ipc(noise=True)`` directly.
        """
        simulator = self.simulator(machine)
        if not self.memoize_ipc:
            self._ipc_misses += 1
            return simulator.measured_ipc(
                profile,
                placement,
                duration_s=duration_s,
                repetition=repetition,
            )
        return self.solo_ipc(machine, profile, placement) * (
            simulator.measured_ipc_noise(
                profile,
                placement,
                duration_s=duration_s,
                repetition=repetition,
            )
        )

    def probe_ipc_batch(
        self,
        machine: MachineTopology,
        profiles: Sequence[WorkloadProfile],
        placement: Placement,
        *,
        duration_s: float,
        repetitions: Sequence[int],
    ) -> np.ndarray:
        """Probe observations for a whole request group in one placement.

        The assembly half of the goal-aware hot path: all memoized
        deterministic parts are gathered first (misses — distinct profiles
        the memo has never seen — are simulated together through the
        vectorized :meth:`~repro.perfsim.simulator.PerformanceSimulator.
        measured_ipc_batch` kernel), then each probe gets its own fresh
        noise draw.  Entry ``k`` is bit-for-bit what ``probe_ipc(machine,
        profiles[k], placement, duration_s=..., repetition=
        repetitions[k])`` returns, including the hit/miss accounting.
        """
        if len(profiles) != len(repetitions):
            raise ValueError("profiles and repetitions must align")
        simulator = self.simulator(machine)
        if not self.memoize_ipc:
            self._ipc_misses += len(profiles)
            return np.array(
                [
                    simulator.measured_ipc(
                        profile,
                        placement,
                        duration_s=duration_s,
                        repetition=repetition,
                    )
                    for profile, repetition in zip(profiles, repetitions)
                ]
            )
        fingerprint = machine.fingerprint()
        deterministic = np.empty(len(profiles))
        missing: Dict[WorkloadProfile, List[int]] = {}
        for row, profile in enumerate(profiles):
            value = self._solo_ipc.get((fingerprint, profile, placement))
            if value is None:
                missing.setdefault(profile, []).append(row)
            else:
                self._ipc_hits += 1
                deterministic[row] = value
        if missing:
            fresh_profiles = list(missing)
            fresh_values = simulator.measured_ipc_batch(
                fresh_profiles, [placement], noise=False
            )[:, 0]
            for profile, value in zip(fresh_profiles, fresh_values):
                rows = missing[profile]
                # Sequential accounting: first occurrence missed, any
                # repeats in the same group would have hit the just-filled
                # memo.
                self._ipc_misses += 1
                self._ipc_hits += len(rows) - 1
                self._solo_ipc[(fingerprint, profile, placement)] = float(value)
                for row in rows:
                    deterministic[row] = value
        noise = np.array(
            [
                simulator.measured_ipc_noise(
                    profile,
                    placement,
                    duration_s=duration_s,
                    repetition=repetition,
                )
                for profile, repetition in zip(profiles, repetitions)
            ]
        )
        return deterministic * noise

    def baseline_ipc(
        self, machine: MachineTopology, vcpus: int, profile: WorkloadProfile
    ) -> float:
        """The grading denominator: the profile's noise-free IPC in the
        shape's baseline placement, cached per ``(fingerprint, vcpus,
        profile)`` so repeated shapes/profiles never re-simulate it."""
        if not self.memoize_ipc:
            return self.solo_ipc(
                machine, profile, self.baseline_placement(machine, vcpus)
            )
        # Version-keyed: the denominator depends on the *model's* baseline
        # placement (its input pair's first element), so a promoted model
        # version with a different pair must not be served another
        # version's entries.  solo_ipc stays unversioned — it is keyed by
        # the concrete placement, which no model version can change.
        key = (
            machine.fingerprint(),
            int(vcpus),
            profile,
            self.model_version_token(machine, vcpus),
        )
        value = self._baseline_ipc.get(key)
        if value is None:
            value = self.solo_ipc(
                machine, profile, self.baseline_placement(machine, vcpus)
            )
            self._baseline_ipc[key] = value
        return value

    def ipc_cache_info(self) -> CacheInfo:
        """Hit/miss accounting of the noise-free IPC memo."""
        return CacheInfo(self._ipc_hits, self._ipc_misses, len(self._solo_ipc))

    # ------------------------------------------------------------------

    def enumeration_runs(self) -> int:
        """Total times the Algorithm 1-3 pipeline actually executed."""
        return self.enumeration_cache.info().misses + self.uncached_enumerations
