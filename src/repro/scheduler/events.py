"""Timestamped lifecycle events and the queue that orders them.

The lifecycle engine (:mod:`repro.scheduler.lifecycle`) is event-driven:
every container produces an ARRIVAL event at its ``arrival_time`` and, when
it has a finite lifetime, a DEPARTURE event at ``arrival_time + lifetime``.
The queue replays them in global time order, with a deterministic
tie-break — same-instant events run in insertion order, and a departure
scheduled for the same instant as an arrival frees its nodes first (the
sequence number of a departure is assigned when the pair is built, before
later arrivals).

Nothing here knows about hosts or placements; the queue is pure event
plumbing so tests can drive the engine with hand-built event lists.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Sequence

from repro.scheduler.requests import PlacementRequest


class EventKind(enum.Enum):
    """What happens to a container at an event's timestamp."""

    ARRIVAL = "arrival"
    DEPARTURE = "departure"


@dataclass(order=True, frozen=True)
class LifecycleEvent:
    """One timestamped thing happening to one container.

    Ordering is ``(time, seq)`` — ``kind`` and ``request`` are excluded
    from comparisons, so the queue never compares requests and equal-time
    events keep their insertion order.
    """

    time: float
    seq: int
    kind: EventKind = field(compare=False)
    request: PlacementRequest = field(compare=False)

    def describe(self) -> str:
        return f"t={self.time:9.2f}s {self.kind.value:9s} {self.request.describe()}"


class EventQueue:
    """A min-heap of lifecycle events, popped in time order."""

    def __init__(self, events: Iterable[LifecycleEvent] = ()) -> None:
        self._heap: List[LifecycleEvent] = list(events)
        heapq.heapify(self._heap)
        self._next_seq = (
            max((event.seq for event in self._heap), default=-1) + 1
        )

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(
        self, time: float, kind: EventKind, request: PlacementRequest
    ) -> LifecycleEvent:
        event = LifecycleEvent(time, self._next_seq, kind, request)
        self._next_seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> LifecycleEvent:
        return heapq.heappop(self._heap)

    def drain(self) -> Iterator[LifecycleEvent]:
        while self._heap:
            yield heapq.heappop(self._heap)


def events_from_requests(
    requests: Sequence[PlacementRequest],
) -> EventQueue:
    """Build the event queue for a request stream.

    Each request contributes an arrival and — when its lifetime is finite
    — a departure.  The departure's sequence number is assigned right
    after its arrival's, so a departure coinciding with a *later*
    request's arrival sorts first and the freed nodes are visible to that
    arrival (the optimistic tie-break; real control planes race here).
    """
    queue = EventQueue()
    for request in requests:
        queue.push(request.arrival_time, EventKind.ARRIVAL, request)
        departure = request.departure_time
        if departure is not None:
            queue.push(departure, EventKind.DEPARTURE, request)
    return queue
