"""The fleet scheduler's input: a stream of container placement requests.

A request is everything the cluster control plane knows when a container
arrives: the workload (its profile — in a real deployment this would be the
image plus whatever the operator declared), the vCPU count the customer
bought, and an optional performance goal expressed the paper's way, as a
fraction of the baseline placement's performance (Section 7 uses 0.9, 1.0,
and 1.1).

:func:`generate_request_stream` builds a deterministic heterogeneous stream
for experiments and benchmarks: workloads drawn from the paper's 18
applications (optionally jittered into synthetic variants), mixed vCPU
sizes, and a mix of goal-bearing and best-effort requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.perfsim.generator import WorkloadGenerator
from repro.perfsim.library import paper_workloads
from repro.perfsim.workload import WorkloadProfile


@dataclass(frozen=True)
class PlacementRequest:
    """One container arriving at the fleet scheduler."""

    request_id: int
    profile: WorkloadProfile
    vcpus: int
    goal_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValueError("vcpus must be >= 1")
        if self.goal_fraction is not None and self.goal_fraction <= 0:
            raise ValueError("goal_fraction must be positive")

    @property
    def workload_name(self) -> str:
        return self.profile.name

    def describe(self) -> str:
        goal = (
            f"goal {self.goal_fraction:.0%}"
            if self.goal_fraction is not None
            else "best-effort"
        )
        return f"req#{self.request_id} {self.profile.name} x{self.vcpus} ({goal})"


def generate_request_stream(
    n_requests: int,
    *,
    seed: int = 0,
    vcpus_choices: Sequence[int] = (8, 16),
    goal_choices: Sequence[float | None] = (None, 0.9, 1.0),
    jitter: float = 0.0,
) -> List[PlacementRequest]:
    """A deterministic stream of heterogeneous placement requests.

    Parameters
    ----------
    n_requests:
        Stream length.
    seed:
        Drives every draw; equal seeds give equal streams.
    vcpus_choices:
        Container sizes to sample uniformly.
    goal_choices:
        Performance goals to sample uniformly (``None`` = best effort).
    jitter:
        When positive, each request's workload is a jittered synthetic
        variant instead of a verbatim paper profile, so no two requests are
        exactly alike.
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if not vcpus_choices:
        raise ValueError("vcpus_choices must not be empty")
    if not goal_choices:
        raise ValueError("goal_choices must not be empty")
    rng = np.random.default_rng(seed)
    base = paper_workloads()
    generator = (
        WorkloadGenerator(seed=seed, jitter=jitter) if jitter > 0 else None
    )
    requests: List[PlacementRequest] = []
    for request_id in range(1, n_requests + 1):
        if generator is not None:
            profile = generator.sample_one()
        else:
            profile = base[int(rng.integers(0, len(base)))]
        vcpus = int(vcpus_choices[int(rng.integers(0, len(vcpus_choices)))])
        goal = goal_choices[int(rng.integers(0, len(goal_choices)))]
        requests.append(
            PlacementRequest(
                request_id=request_id,
                profile=profile,
                vcpus=vcpus,
                goal_fraction=goal,
            )
        )
    return requests
