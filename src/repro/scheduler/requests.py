"""The fleet scheduler's input: a stream of container placement requests.

A request is everything the cluster control plane knows when a container
arrives: the workload (its profile — in a real deployment this would be the
image plus whatever the operator declared), the vCPU count the customer
bought, and an optional performance goal expressed the paper's way, as a
fraction of the baseline placement's performance (Section 7 uses 0.9, 1.0,
and 1.1).

:func:`generate_request_stream` builds a deterministic heterogeneous stream
for experiments and benchmarks: workloads drawn from the paper's 18
applications (optionally jittered into synthetic variants), mixed vCPU
sizes, and a mix of goal-bearing and best-effort requests.

For the dynamic lifecycle engine (:mod:`repro.scheduler.lifecycle`), a
request additionally carries an ``arrival_time`` and an optional
``lifetime``; :func:`generate_churn_stream` draws Poisson arrivals and
exponential or heavy-tailed (Pareto) lifetimes, the churn regime where
containers arrive *and* leave and free capacity fragments across hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

import numpy as np

from repro.perfsim.generator import WorkloadGenerator
from repro.perfsim.library import paper_workloads
from repro.perfsim.workload import WorkloadProfile


@dataclass(frozen=True)
class PlacementRequest:
    """One container arriving at the fleet scheduler.

    ``arrival_time`` and ``lifetime`` (both in simulated seconds) only
    matter to the event-driven lifecycle engine; the one-shot scheduler
    ignores them.  ``lifetime=None`` means the container never departs.
    """

    request_id: int
    profile: WorkloadProfile
    vcpus: int
    goal_fraction: float | None = None
    arrival_time: float = 0.0
    lifetime: float | None = None

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValueError("vcpus must be >= 1")
        if self.goal_fraction is not None and self.goal_fraction <= 0:
            raise ValueError("goal_fraction must be positive")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be >= 0")
        if self.lifetime is not None and self.lifetime <= 0:
            raise ValueError("lifetime must be positive")

    @property
    def workload_name(self) -> str:
        return self.profile.name

    @property
    def departure_time(self) -> float | None:
        """When the container leaves, or None if it stays forever."""
        if self.lifetime is None:
            return None
        return self.arrival_time + self.lifetime

    def describe(self) -> str:
        goal = (
            f"goal {self.goal_fraction:.0%}"
            if self.goal_fraction is not None
            else "best-effort"
        )
        return f"req#{self.request_id} {self.profile.name} x{self.vcpus} ({goal})"

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe payload; :meth:`from_dict` reconstructs an equal
        request (floats survive json round-trips exactly)."""
        return {
            "request_id": self.request_id,
            "profile": self.profile.as_dict(),
            "vcpus": self.vcpus,
            "goal_fraction": self.goal_fraction,
            "arrival_time": self.arrival_time,
            "lifetime": self.lifetime,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "PlacementRequest":
        return cls(
            request_id=data["request_id"],
            profile=WorkloadProfile.from_dict(data["profile"]),
            vcpus=data["vcpus"],
            goal_fraction=data["goal_fraction"],
            arrival_time=data["arrival_time"],
            lifetime=data["lifetime"],
        )


def generate_request_stream(
    n_requests: int,
    *,
    seed: int = 0,
    vcpus_choices: Sequence[int] = (8, 16),
    goal_choices: Sequence[float | None] = (None, 0.9, 1.0),
    jitter: float = 0.0,
) -> List[PlacementRequest]:
    """A deterministic stream of heterogeneous placement requests.

    Parameters
    ----------
    n_requests:
        Stream length.
    seed:
        Drives every draw; equal seeds give equal streams.
    vcpus_choices:
        Container sizes to sample uniformly.
    goal_choices:
        Performance goals to sample uniformly (``None`` = best effort).
    jitter:
        When positive, each request's workload is a jittered synthetic
        variant instead of a verbatim paper profile, so no two requests are
        exactly alike.
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if not vcpus_choices:
        raise ValueError("vcpus_choices must not be empty")
    if not goal_choices:
        raise ValueError("goal_choices must not be empty")
    rng = np.random.default_rng(seed)
    base = paper_workloads()
    # Namespaced: synthetic names are only unique per generator, and an
    # online-learning run deduplicates observed workloads against its
    # training corpus *by name* — an un-namespaced stream would collide
    # with the corpus's own synthetic names and silently mask novel
    # workloads from retraining.
    generator = (
        WorkloadGenerator(seed=seed, jitter=jitter, namespace="stream")
        if jitter > 0
        else None
    )
    requests: List[PlacementRequest] = []
    for request_id in range(1, n_requests + 1):
        if generator is not None:
            profile = generator.sample_one()
        else:
            profile = base[int(rng.integers(0, len(base)))]
        vcpus = int(vcpus_choices[int(rng.integers(0, len(vcpus_choices)))])
        goal = goal_choices[int(rng.integers(0, len(goal_choices)))]
        requests.append(
            PlacementRequest(
                request_id=request_id,
                profile=profile,
                vcpus=vcpus,
                goal_fraction=goal,
            )
        )
    return requests


@dataclass(frozen=True)
class ArrivalPhase:
    """One segment of a phase-shift schedule: from ``start_fraction`` of
    the stream onward, arrivals draw their workloads from this mix.

    ``archetype_weights`` changes *which* behaviour categories arrive
    (the mix shift); ``template_scale`` moves the categories' centres so
    the post-shift population is out of the training distribution (the
    concept shift).  ``None`` weights sample all archetypes uniformly.
    """

    start_fraction: float
    archetype_weights: Dict[str, float] | None = None
    template_scale: Dict[str, float] | None = None
    jitter: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction < 1.0:
            raise ValueError("start_fraction must be in [0, 1)")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")


def drift_phase_schedule() -> List[ArrivalPhase]:
    """The canonical two-phase drift scenario used by the CLI, the
    online-learning example, and ``benchmarks/bench_online.py``.

    Phase 1 is a tame, in-distribution mix (the training corpus covers
    these archetypes at these centres).  Phase 2 shifts the arrival mix to
    communication- and bandwidth-heavy archetypes *and* rescales their
    templates — bigger working sets, far chattier threads — a population
    the offline corpus never sampled.  A frozen model's rolling MAPE
    degrades across the shift; the online loop retrains on the observed
    arrivals and recovers.
    """
    return [
        ArrivalPhase(
            start_fraction=0.0,
            archetype_weights={
                "cpu-bound": 2.0,
                "cache-capacity": 2.0,
                "oltp": 1.0,
            },
            jitter=0.2,
        ),
        ArrivalPhase(
            start_fraction=0.5,
            archetype_weights={
                "latency-bound": 2.0,
                "bandwidth-bound": 1.0,
                "analytics": 1.0,
            },
            template_scale={
                "working_set_mb": 4.0,
                "membw_per_vcpu": 2.0,
                "comm_bytes_per_vcpu": 3.0,
            },
            jitter=0.45,
        ),
    ]


def _phase_profiles(
    n_requests: int, phases: Sequence[ArrivalPhase], seed: int
) -> List[WorkloadProfile]:
    """One workload profile per request position, following the schedule.

    Each phase gets its own deterministically derived generator, so
    inserting or tuning a later phase never perturbs an earlier phase's
    draws.  Positions before the first phase's start keep the base
    stream's profiles (signalled here as None-free by construction:
    callers only replace positions this function covers).
    """
    ordered = sorted(phases, key=lambda p: p.start_fraction)
    starts = [int(p.start_fraction * n_requests) for p in ordered]
    profiles: List[WorkloadProfile | None] = [None] * n_requests
    for index, phase in enumerate(ordered):
        begin = starts[index]
        end = starts[index + 1] if index + 1 < len(ordered) else n_requests
        # Namespaced: phase profiles must never collide by name with each
        # other or with a training corpus (dedup-by-name downstream).
        generator = WorkloadGenerator(
            seed=seed + 7919 * (index + 1),
            jitter=phase.jitter,
            namespace=f"phase{index + 1}",
        )
        for position in range(begin, end):
            profiles[position] = generator.sample_one(
                weights=phase.archetype_weights,
                template_scale=phase.template_scale,
            )
    return profiles


def generate_churn_stream(
    n_requests: int,
    *,
    seed: int = 0,
    arrival_rate: float = 1.0,
    mean_lifetime: float = 60.0,
    heavy_tail: bool = False,
    pareto_shape: float = 1.5,
    immortal_fraction: float = 0.0,
    vcpus_choices: Sequence[int] = (8, 16),
    goal_choices: Sequence[float | None] = (None, 0.9, 1.0),
    jitter: float = 0.0,
    phases: Sequence[ArrivalPhase] | None = None,
) -> List[PlacementRequest]:
    """A deterministic churn stream: timestamped arrivals with lifetimes.

    Arrivals form a Poisson process of intensity ``arrival_rate``
    (exponential inter-arrival gaps).  Lifetimes are exponential with mean
    ``mean_lifetime``, or — with ``heavy_tail=True`` — Lomax/Pareto-II
    with shape ``pareto_shape`` rescaled to the same mean, the
    "most containers are short-lived, a few pin their nodes for ages"
    distribution that fragments a fleet fastest.  A ``pareto_shape`` of at
    most 1 has no finite mean, so it must be > 1.

    ``immortal_fraction`` of requests get ``lifetime=None`` (they never
    depart — long-running services between which the churning batch jobs
    must fit).

    ``phases`` applies a phase-shift schedule (see :class:`ArrivalPhase`):
    the arrival-mix archetype distribution changes mid-stream, the drift
    scenario the online model lifecycle exists for.  Only the workload
    profiles change — request ids, vCPU sizes, goals, arrival times, and
    lifetimes are drawn exactly as in the unphased stream, so a phased and
    an unphased run are comparable event for event (and ``phases=None``
    is bit-for-bit today's stream).
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    if mean_lifetime <= 0:
        raise ValueError("mean_lifetime must be positive")
    if heavy_tail and pareto_shape <= 1.0:
        raise ValueError("pareto_shape must be > 1 for a finite mean lifetime")
    if not 0.0 <= immortal_fraction < 1.0:
        raise ValueError("immortal_fraction must be in [0, 1)")

    base = generate_request_stream(
        n_requests,
        seed=seed,
        vcpus_choices=vcpus_choices,
        goal_choices=goal_choices,
        jitter=jitter,
    )
    if phases:
        profiles = _phase_profiles(n_requests, phases, seed)
        base = [
            request
            if profile is None
            else replace(request, profile=profile)
            for request, profile in zip(base, profiles)
        ]
    rng = np.random.default_rng(seed + 1)
    clock = 0.0
    requests: List[PlacementRequest] = []
    for request in base:
        clock += float(rng.exponential(1.0 / arrival_rate))
        if immortal_fraction > 0 and rng.random() < immortal_fraction:
            lifetime = None
        elif heavy_tail:
            # Lomax(shape) has mean 1/(shape-1); rescale to mean_lifetime.
            draw = float(rng.pareto(pareto_shape))
            lifetime = max(draw * mean_lifetime * (pareto_shape - 1.0), 1e-6)
        else:
            lifetime = max(float(rng.exponential(mean_lifetime)), 1e-6)
        requests.append(
            PlacementRequest(
                request_id=request.request_id,
                profile=request.profile,
                vcpus=request.vcpus,
                goal_fraction=request.goal_fraction,
                arrival_time=clock,
                lifetime=lifetime,
            )
        )
    return requests
