"""Fleet placement policies: who gets which nodes of which host.

Three pluggable policies, spanning the spectrum the paper's Section 7
studies on one machine:

* :class:`FirstFitFleetPolicy` — classic bin-packing: scan hosts in id
  order, take the first that has a minimum-size free node block.  Densest
  packing, no performance awareness.
* :class:`SpreadFleetPolicy` — load-balanced: same block choice, but scan
  hosts emptiest-first, so containers land away from each other for as long
  as the fleet allows.
* :class:`GoalAwareFleetPolicy` — the paper's ML policy at fleet scale:
  probe each container in the model's two input placements, predict its
  whole performance vector in one batched call, pick the cheapest important
  placement predicted to meet its goal, then find a host with a free node
  block matching that placement's interconnect score.

Policies mutate the fleet (they allocate as they decide — later requests in
a batch must see earlier allocations) and return one
:class:`FleetDecision` per request, in request order.
"""

from __future__ import annotations

import abc
import heapq
import inspect
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.blockscores import BlockScoreTable, block_score_table
from repro.core.enumeration import ImportantPlacementSet
from repro.core.placements import Placement
from repro.ml.arena import predict_fused
from repro.scheduler.fleet import Fleet, FleetHost, minimal_shape
from repro.scheduler.registry import ModelRegistry
from repro.scheduler.requests import PlacementRequest
from repro.topology.machine import MachineTopology


def _in_id_order(host_ids: List[int]) -> Iterator[int]:
    """Yield host ids ascending without sorting them all up front.

    Candidate sets from the fleet index are unordered, but the linear-scan
    path visits hosts in id order, so the indexed path must too.  Almost
    every search accepts one of its first candidates, so a heap (O(n)
    heapify, O(log n) per id actually consumed) beats a full sort.
    Consumes the list it is given.
    """
    heapq.heapify(host_ids)
    while host_ids:
        yield heapq.heappop(host_ids)


@dataclass
class FleetDecision:
    """What the fleet did with one request."""

    request: PlacementRequest
    host_id: int | None = None
    placement: Placement | None = None
    #: 1-based important-placement id the realized placement instantiates
    #: (None for the heuristic policies, which do not enumerate).
    placement_id: int | None = None
    #: Predicted performance relative to the shape's baseline placement.
    predicted_relative: float | None = None
    #: False when no free block matched the chosen placement's interconnect
    #: score and a differently-scored block of the same size was used.
    block_exact: bool = True
    reject_reason: str | None = None

    @property
    def placed(self) -> bool:
        return self.placement is not None

    def describe(self) -> str:
        if not self.placed:
            return f"{self.request.describe()} -> REJECTED ({self.reject_reason})"
        parts = [f"host {self.host_id}", f"nodes {list(self.placement.nodes)}"]
        if self.placement_id is not None:
            parts.insert(1, f"placement #{self.placement_id}")
        if self.predicted_relative is not None:
            parts.append(f"predicted {self.predicted_relative:.2f}")
        if not self.block_exact:
            parts.append("score-mismatched block")
        return f"{self.request.describe()} -> {', '.join(parts)}"

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-safe decision trace (the shard <-> front-end payload)."""
        return {
            "request": self.request.to_dict(),
            "host_id": self.host_id,
            "placement": (
                None if self.placement is None else self.placement.to_dict()
            ),
            "placement_id": self.placement_id,
            "predicted_relative": self.predicted_relative,
            "block_exact": self.block_exact,
            "reject_reason": self.reject_reason,
        }

    @classmethod
    def from_dict(cls, data: Dict, machines) -> "FleetDecision":
        """Inverse of :meth:`to_dict`; ``machines`` maps name -> topology
        for placement reconstruction."""
        placement = data["placement"]
        return cls(
            request=PlacementRequest.from_dict(data["request"]),
            host_id=data["host_id"],
            placement=(
                None
                if placement is None
                else Placement.from_dict(placement, machines)
            ),
            placement_id=data["placement_id"],
            predicted_relative=data["predicted_relative"],
            block_exact=data["block_exact"],
            reject_reason=data["reject_reason"],
        )


class FleetPolicy(abc.ABC):
    """Decides, and immediately allocates, one batch of requests.

    :meth:`decide_batch` is the one canonical contract every policy
    implements; the single-request :meth:`decide` is a thin wrapper over
    it, so a policy's batched and one-at-a-time paths cannot diverge.
    """

    name: str

    @abc.abstractmethod
    def decide_batch(
        self, requests: Sequence[PlacementRequest], fleet: Fleet
    ) -> List[FleetDecision]:
        """One decision per request, in order; placed requests are already
        allocated on their host when this returns."""

    def decide(
        self, request: PlacementRequest, fleet: Fleet
    ) -> FleetDecision:
        """Single-request convenience: ``decide_batch([request])[0]``."""
        return self.decide_batch([request], fleet)[0]

    def min_block_nodes(
        self, machine: MachineTopology, vcpus: int
    ) -> int | None:
        """Smallest free node block this policy could use for ``vcpus`` on
        a shape, or None when the shape cannot host them at all.

        The lifecycle rebalancer consolidates exactly this many nodes
        before retrying a fragmentation-rejected request, so a policy
        whose placements need bigger blocks than the minimal balanced
        shape must override this (see :class:`GoalAwareFleetPolicy`).
        """
        try:
            return minimal_shape(machine, vcpus)[0]
        except ValueError:
            return None


class _HeuristicFleetPolicy(FleetPolicy):
    """Shared machinery of the model-free policies.

    Parameters
    ----------
    indexed:
        When True (the default), host selection queries the fleet's
        incremental :class:`~repro.scheduler.index.FleetIndex` — only
        hosts whose bucketed largest free block can fit the request are
        visited, and block search uses the shared per-shape
        :class:`~repro.core.blockscores.BlockScoreTable`.  ``False`` takes
        the original linear scan over ``fleet.hosts``; both paths make
        bit-for-bit identical decisions (asserted in
        ``tests/scheduler/test_index.py``).
    """

    def __init__(self, *, indexed: bool = True) -> None:
        self.indexed = indexed
        #: (fingerprint, vcpus) -> (n_nodes, l2_share) | None, memoized —
        #: the minimal balanced shape is a pure function of the key.
        self._shape_cache: Dict[Tuple, Tuple[int, int] | None] = {}

    def decide_batch(self, requests, fleet):
        return [self._decide_one(request, fleet) for request in requests]

    def _decide_one(
        self, request: PlacementRequest, fleet: Fleet
    ) -> FleetDecision:
        if self.indexed:
            return self._decide_one_indexed(request, fleet)
        return self._decide_one_linear(request, fleet)

    # ------------------------------------------------------------------
    # Linear scan (the reference path the index must reproduce)
    # ------------------------------------------------------------------

    def _decide_one_linear(
        self, request: PlacementRequest, fleet: Fleet
    ) -> FleetDecision:
        feasible_anywhere = False
        for host in self._scan_order(fleet):
            machine = host.machine
            try:
                n_nodes, l2_share = minimal_shape(machine, request.vcpus)
            except ValueError:
                continue
            feasible_anywhere = True
            block = host.find_block(
                n_nodes,
                lambda nodes: machine.interconnect.aggregate_bandwidth(nodes),
            )
            if block is None:
                continue
            placement = Placement(
                machine, block, request.vcpus, l2_share=l2_share
            )
            host.allocate(request.request_id, placement)
            return FleetDecision(
                request, host_id=host.host_id, placement=placement
            )
        reason = "capacity" if feasible_anywhere else "infeasible"
        return FleetDecision(request, reject_reason=reason)

    # ------------------------------------------------------------------
    # Indexed path
    # ------------------------------------------------------------------

    def _shape_plan(
        self, machine: MachineTopology, vcpus: int
    ) -> Tuple[int, int] | None:
        key = (machine.fingerprint(), vcpus)
        if key not in self._shape_cache:
            try:
                self._shape_cache[key] = minimal_shape(machine, vcpus)
            except ValueError:
                self._shape_cache[key] = None
        return self._shape_cache[key]

    def _decide_one_indexed(
        self, request: PlacementRequest, fleet: Fleet
    ) -> FleetDecision:
        index = fleet.index
        #: fingerprint -> (machine, n_nodes, l2_share) | None
        plans: Dict[Tuple, Tuple[MachineTopology, int, int] | None] = {}
        feasible_anywhere = False
        for fingerprint, machine in index.machines():
            shape = self._shape_plan(machine, request.vcpus)
            if shape is None:
                plans[fingerprint] = None
                continue
            plans[fingerprint] = (machine, shape[0], shape[1])
            feasible_anywhere = True
        host = (
            self._select_host_indexed(fleet, plans)
            if feasible_anywhere
            else None
        )
        if host is None:
            reason = "capacity" if feasible_anywhere else "infeasible"
            return FleetDecision(request, reject_reason=reason)
        machine, n_nodes, l2_share = plans[host.machine.fingerprint()]
        block = host.find_block(
            n_nodes,
            lambda nodes: machine.interconnect.aggregate_bandwidth(nodes),
            table=block_score_table(machine, "interconnect"),
        )
        placement = Placement(machine, block, request.vcpus, l2_share=l2_share)
        host.allocate(request.request_id, placement)
        return FleetDecision(
            request, host_id=host.host_id, placement=placement
        )

    @abc.abstractmethod
    def _scan_order(self, fleet: Fleet) -> Sequence[FleetHost]:
        """Host visit order of the linear path."""

    @abc.abstractmethod
    def _select_host_indexed(
        self,
        fleet: Fleet,
        plans: Dict[Tuple, Tuple[MachineTopology, int, int] | None],
    ) -> FleetHost | None:
        """The host the linear path would have picked, found via index
        buckets (hosts that cannot fit the plan are never visited)."""


class FirstFitFleetPolicy(_HeuristicFleetPolicy):
    """Bin-packing: first host (in id order) with a minimum free block."""

    name = "first-fit"

    def _scan_order(self, fleet):
        return fleet.hosts

    def _select_host_indexed(self, fleet, plans):
        best: int | None = None
        for fingerprint, plan in plans.items():
            if plan is None:
                continue
            ids = fleet.index.candidates(fingerprint, plan[1])
            if ids:
                lowest = min(ids)
                if best is None or lowest < best:
                    best = lowest
        return None if best is None else fleet.hosts[best]


class SpreadFleetPolicy(_HeuristicFleetPolicy):
    """Load balancing: emptiest host first."""

    name = "spread"

    def _scan_order(self, fleet):
        return fleet.hosts_by_load()

    def _select_host_indexed(self, fleet, plans):
        # The linear path's order is (node_utilization, thread_utilization,
        # host_id).  Every host in one (shape, free-count) bucket shares
        # the same node utilization — computed with the same division the
        # per-host property uses, so equal floats stay equal — which lets
        # whole buckets be ranked first and only the winning utilization
        # class be scanned per host.
        index = fleet.index
        classes: Dict[float, List[int]] = {}
        for fingerprint, plan in plans.items():
            if plan is None:
                continue
            machine, needed, _ = plan
            for size, ids in index.buckets(fingerprint).items():
                if size >= needed and ids:
                    classes.setdefault(
                        1.0 - size / machine.n_nodes, []
                    ).extend(ids)
        if not classes:
            return None
        winners = classes[min(classes)]
        return min(
            (fleet.hosts[host_id] for host_id in winners),
            key=lambda h: (h.thread_utilization, h.host_id),
        )


class GoalAwareFleetPolicy(FleetPolicy):
    """The paper's model-driven policy lifted to the fleet.

    One batch, one forest call: requests sharing a (machine shape, vCPU
    count) key are probed together through the registry's vectorized
    probe helper, every key's feature matrix is concatenated, and the
    whole batch descends the fused forest arena in a single
    :func:`~repro.ml.arena.predict_fused` call.  Important placements
    come from the registry's memo cache.

    Parameters
    ----------
    registry:
        Source of per-shape placements, models, and simulators.
    safety_margin:
        Predictions must clear the goal by this fraction (headroom for
        prediction error, as in :class:`repro.core.policies.MlPolicy`).
    best_effort_slack:
        For goal-less requests: any placement predicted within this
        fraction of the best prediction is acceptable, and the cheapest
        such placement wins.  1.0 reproduces the single-machine
        scheduler's pure argmax; the default trades a little predicted
        performance for much denser packing.
    probe_duration_s:
        Simulated probe length ("for a couple of seconds", Section 1).
    indexed:
        When True (default), host selection queries the fleet index and
        block search uses shared per-shape score tables; False takes the
        original triple-loop linear scan.  Decisions are bit-for-bit
        identical either way.
    """

    name = "ml"

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        *,
        safety_margin: float = 0.05,
        best_effort_slack: float = 0.9,
        probe_duration_s: float = 3.0,
        indexed: bool = True,
    ) -> None:
        if safety_margin < 0:
            raise ValueError("safety_margin must be >= 0")
        if not 0.0 < best_effort_slack <= 1.0:
            raise ValueError("best_effort_slack must be in (0, 1]")
        self.registry = registry or ModelRegistry()
        self.safety_margin = safety_margin
        self.best_effort_slack = best_effort_slack
        self.probe_duration_s = probe_duration_s
        self.indexed = indexed
        #: Batched-prediction accounting for the fleet report: one fused
        #: forest call per decide_batch, however many keys it spans.
        self.predict_calls = 0
        self.predicted_rows = 0
        #: id(placements) -> (placements, scorer, per-index target scores)
        #: — the indexed hot path resolves these once per placement set
        #: instead of once per candidate host.  LRU-bounded: entries keep
        #: their placement set strongly referenced (so a cached id can
        #: never be recycled), which without eviction would pin every set
        #: a long churn run ever saw; the bound evicts the stalest entry
        #: instead of growing without limit.
        self._target_cache: Dict[int, Tuple] = {}
        self._target_cache_max = 32

    # ------------------------------------------------------------------

    def _group_features(
        self,
        machine: MachineTopology,
        vcpus: int,
        group: Sequence[PlacementRequest],
    ) -> Tuple[ImportantPlacementSet, object, np.ndarray] | None:
        """Probe one (shape, vcpus) group and assemble its forest feature
        matrix; None when the shape cannot host the group.

        Observation assembly goes through the registry's vectorized probe
        helper: the memoized deterministic parts of the whole group are
        gathered (and any misses simulated) in one batched kernel call,
        only the per-repetition noise draws stay per probe.
        """
        try:
            placements = self.registry.placements(machine, vcpus)
            model = self.registry.model(machine, vcpus)
        except ValueError:
            return None
        i, j = model.input_pair
        profiles = [request.profile for request in group]
        obs_i = self.registry.probe_ipc_batch(
            machine,
            profiles,
            placements[i],
            duration_s=self.probe_duration_s,
            repetitions=[request.request_id for request in group],
        )
        obs_j = self.registry.probe_ipc_batch(
            machine,
            profiles,
            placements[j],
            duration_s=self.probe_duration_s,
            repetitions=[request.request_id + 1 for request in group],
        )
        return placements, model, model.batch_features(obs_i, obs_j)

    def min_block_nodes(
        self, machine: MachineTopology, vcpus: int
    ) -> int | None:
        """The goal-aware policy only instantiates important placements,
        whose smallest block can exceed the minimal balanced shape
        (Algorithm 2 keeps only blocks that tile the whole machine)."""
        try:
            placements = self.registry.placements(machine, vcpus)
            return min(p.n_nodes for p in placements)
        except ValueError:  # unhostable shape, or no important placements
            return None

    @staticmethod
    def _scorer(placements: ImportantPlacementSet):
        bandwidth = placements.concerns.bandwidth_concern
        if bandwidth is None:
            return lambda nodes: 0.0
        return lambda nodes: bandwidth.score_nodes(nodes)

    def _scorer_and_targets(self, placements: ImportantPlacementSet):
        """The placement set's scorer plus each candidate's target score,
        computed once per set (they are pure functions of it).

        LRU eviction: a memoized registry serves a handful of long-lived
        sets that always stay resident; an unmemoized one mints a fresh
        set per decide_batch, and evicting the least-recently-used entry
        (rather than wholesale clearing, which would also dump every hot
        set) keeps memory bounded on long-lived churn runs without
        re-deriving the sets still in play.
        """
        key = id(placements)
        entry = self._target_cache.get(key)
        if entry is not None and entry[0] is placements:
            # Refresh recency (dict preserves insertion order).
            del self._target_cache[key]
            self._target_cache[key] = entry
            return entry[1], entry[2]
        while len(self._target_cache) >= self._target_cache_max:
            self._target_cache.pop(next(iter(self._target_cache)))
        scorer = self._scorer(placements)
        targets = tuple(
            scorer(frozenset(candidate.nodes)) for candidate in placements
        )
        entry = (placements, scorer, targets)
        self._target_cache[key] = entry
        return entry[1], entry[2]

    def _preference_order(
        self,
        placements: ImportantPlacementSet,
        vector: np.ndarray,
        goal_fraction: float | None,
    ) -> List[int]:
        """Candidate important-placement indices, most preferred first:
        goal-meeting (or, for best-effort requests, near-best) ones
        cheapest-first, then the rest by prediction."""
        indices = list(range(len(placements)))
        if goal_fraction is None:
            threshold = self.best_effort_slack * float(max(vector))
        else:
            threshold = goal_fraction * (1.0 + self.safety_margin)
        meeting = [k for k in indices if vector[k] >= threshold]
        rest = [k for k in indices if vector[k] < threshold]
        meeting.sort(key=lambda k: (placements[k].n_nodes, -vector[k]))
        rest.sort(key=lambda k: -vector[k])
        return meeting + rest

    def decide_batch(self, requests, fleet):
        # Phase 1: probe and assemble features per (shape, vcpus) key,
        # then predict the *whole batch* — every group of every shape —
        # through one fused arena call: one fleet event, one forest call,
        # however many keys the batch spans.
        groups: Dict[int, List[PlacementRequest]] = {}
        for request in requests:
            groups.setdefault(request.vcpus, []).append(request)
        plans: List[Tuple] = []
        for machine in fleet.shapes:
            for vcpus, group in groups.items():
                prepared = self._group_features(machine, vcpus, group)
                if prepared is None:
                    continue
                placements, model, features = prepared
                plans.append(
                    (machine, vcpus, group, placements, model, features)
                )
        predictions: Dict[Tuple, Tuple] = {}
        if plans:
            outputs = predict_fused(
                [(model.forest, features) for _, _, _, _, model, features in plans]
            )
            self.predict_calls += 1
            for (machine, vcpus, group, placements, _, _), vectors in zip(
                plans, outputs
            ):
                self.predicted_rows += len(group)
                by_request = {
                    request.request_id: vectors[row]
                    for row, request in enumerate(group)
                }
                predictions[(machine.fingerprint(), vcpus)] = (
                    placements,
                    by_request,
                )

        # Phase 2: place each request, in arrival order.
        decisions = []
        for request in requests:
            decisions.append(self._place_one(request, fleet, predictions))
        return decisions

    def _place_one(
        self,
        request: PlacementRequest,
        fleet: Fleet,
        predictions: Dict[Tuple, Tuple],
    ) -> FleetDecision:
        if self.indexed:
            return self._place_one_indexed(request, fleet, predictions)
        return self._place_one_linear(request, fleet, predictions)

    def _place_one_indexed(
        self,
        request: PlacementRequest,
        fleet: Fleet,
        predictions: Dict[Tuple, Tuple],
    ) -> FleetDecision:
        """The linear triple loop ``(exact, rank, host)`` with the host
        dimension answered by index buckets: per candidate rank only the
        hosts whose bucketed largest free block fits that placement are
        visited, in the same id order the linear scan uses."""
        index = fleet.index
        orders: Dict[Tuple, List[int]] = {}
        entries: Dict[Tuple, Tuple] = {}
        tables: Dict[Tuple, BlockScoreTable | None] = {}
        scorers: Dict[Tuple, Tuple] = {}
        for fingerprint, machine in index.machines():
            entry = predictions.get((fingerprint, request.vcpus))
            if entry is None:
                continue
            placements, by_request = entry
            entries[fingerprint] = entry
            orders[fingerprint] = self._preference_order(
                placements,
                by_request[request.request_id],
                request.goal_fraction,
            )
            kind = (
                "interconnect"
                if placements.concerns.bandwidth_concern is not None
                else "zero"
            )
            tables[fingerprint] = block_score_table(machine, kind)
            scorers[fingerprint] = self._scorer_and_targets(placements)
        if not orders:
            return FleetDecision(request, reject_reason="infeasible")
        if index.free_nodes_total == 0:
            return FleetDecision(request, reject_reason="capacity")

        max_rank = max(len(order) for order in orders.values())
        for exact in (True, False):
            for rank in range(max_rank):
                candidates: List[int] = []
                for fingerprint, order in orders.items():
                    if rank >= len(order):
                        continue
                    placements, _ = entries[fingerprint]
                    needed = placements[order[rank]].n_nodes
                    candidates.extend(index.candidates(fingerprint, needed))
                for host_id in _in_id_order(candidates):
                    host = fleet.hosts[host_id]
                    fingerprint = host.machine.fingerprint()
                    placements, by_request = entries[fingerprint]
                    scorer, targets = scorers[fingerprint]
                    candidate_index = orders[fingerprint][rank]
                    decision = self._try_candidate(
                        request,
                        host,
                        placements,
                        by_request[request.request_id],
                        candidate_index,
                        exact=exact,
                        table=tables[fingerprint],
                        scorer=scorer,
                        target_score=targets[candidate_index],
                    )
                    if decision is not None:
                        return decision
        return FleetDecision(request, reject_reason="capacity")

    def _place_one_linear(
        self,
        request: PlacementRequest,
        fleet: Fleet,
        predictions: Dict[Tuple, Tuple],
    ) -> FleetDecision:
        feasible_anywhere = False
        orders: Dict[Tuple, List[int]] = {}
        for host in fleet.hosts:
            key = (host.machine.fingerprint(), request.vcpus)
            entry = predictions.get(key)
            if entry is None:
                continue
            feasible_anywhere = True
            if key not in orders:
                placements, by_request = entry
                orders[key] = self._preference_order(
                    placements, by_request[request.request_id],
                    request.goal_fraction,
                )
        if not feasible_anywhere:
            return FleetDecision(request, reject_reason="infeasible")
        candidates = [
            host for host in fleet.hosts if host.n_free_nodes > 0
        ]
        if not candidates:
            return FleetDecision(request, reject_reason="capacity")

        # Candidate-major search: the most-preferred placement realizable
        # *anywhere* in the fleet wins, so a mediocre placement on an early
        # host never shadows a good one on a later host.  Pass 1 wants a
        # free block whose interconnect score matches the candidate exactly
        # (so the prediction transfers verbatim); pass 2 accepts any free
        # block of the right size.
        max_rank = max(len(order) for order in orders.values())
        for exact in (True, False):
            for rank in range(max_rank):
                for host in candidates:
                    key = (host.machine.fingerprint(), request.vcpus)
                    order = orders.get(key)
                    if order is None or rank >= len(order):
                        continue
                    placements, by_request = predictions[key]
                    if placements[order[rank]].n_nodes > host.n_free_nodes:
                        continue
                    decision = self._try_candidate(
                        request,
                        host,
                        placements,
                        by_request[request.request_id],
                        order[rank],
                        exact=exact,
                    )
                    if decision is not None:
                        return decision
        return FleetDecision(request, reject_reason="capacity")

    def _try_candidate(
        self,
        request: PlacementRequest,
        host: FleetHost,
        placements: ImportantPlacementSet,
        vector: np.ndarray,
        index: int,
        *,
        exact: bool,
        table: BlockScoreTable | None = None,
        scorer=None,
        target_score: float | None = None,
    ) -> FleetDecision | None:
        if scorer is None:
            scorer = self._scorer(placements)
        candidate = placements[index]
        if exact:
            if target_score is None:
                target_score = scorer(frozenset(candidate.nodes))
            block = host.find_block(
                candidate.n_nodes,
                scorer,
                target_score=target_score,
                table=table,
            )
        else:
            block = host.find_block(candidate.n_nodes, scorer, table=table)
        if block is None:
            return None
        realized = Placement(
            host.machine,
            block,
            request.vcpus,
            l2_share=candidate.l2_share,
            l3_groups_per_node=candidate.l3_score // candidate.n_nodes,
        )
        host.allocate(request.request_id, realized)
        return FleetDecision(
            request,
            host_id=host.host_id,
            placement=realized,
            placement_id=index + 1,
            predicted_relative=float(vector[index]),
            block_exact=exact,
        )


# ----------------------------------------------------------------------
# Policy registry
# ----------------------------------------------------------------------

#: Name -> policy class.  The CLI, shard workers, benchmarks, and
#: examples all instantiate through :func:`make_policy`, so the
#: constructor matrix (who takes a registry, who takes which knobs) is
#: spelled in exactly one place.  Register new policies here and every
#: surface — ``repro schedule --policy``, ``repro serve``, the sharded
#: service's workers — picks them up.
POLICIES: Dict[str, type] = {
    FirstFitFleetPolicy.name: FirstFitFleetPolicy,
    SpreadFleetPolicy.name: SpreadFleetPolicy,
    GoalAwareFleetPolicy.name: GoalAwareFleetPolicy,
}


def make_policy(
    name: str,
    *,
    registry: ModelRegistry | None = None,
    indexed: bool = True,
    **kwargs,
) -> FleetPolicy:
    """Instantiate a registered policy by name.

    ``registry`` is passed to policies whose constructor accepts one (the
    model-driven ones) and ignored by the rest — heuristic policies make
    no predictions, but their callers still hold a registry for grading,
    and a uniform call site beats a per-policy constructor matrix.
    Extra keyword arguments go to the constructor verbatim.
    """
    try:
        factory = POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; registered: "
            f"{', '.join(sorted(POLICIES))}"
        )
    parameters = inspect.signature(factory).parameters
    if "registry" in parameters:
        return factory(registry, indexed=indexed, **kwargs)
    return factory(indexed=indexed, **kwargs)
