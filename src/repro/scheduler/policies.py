"""Fleet placement policies: who gets which nodes of which host.

Three pluggable policies, spanning the spectrum the paper's Section 7
studies on one machine:

* :class:`FirstFitFleetPolicy` — classic bin-packing: scan hosts in id
  order, take the first that has a minimum-size free node block.  Densest
  packing, no performance awareness.
* :class:`SpreadFleetPolicy` — load-balanced: same block choice, but scan
  hosts emptiest-first, so containers land away from each other for as long
  as the fleet allows.
* :class:`GoalAwareFleetPolicy` — the paper's ML policy at fleet scale:
  probe each container in the model's two input placements, predict its
  whole performance vector in one batched call, pick the cheapest important
  placement predicted to meet its goal, then find a host with a free node
  block matching that placement's interconnect score.

Policies mutate the fleet (they allocate as they decide — later requests in
a batch must see earlier allocations) and return one
:class:`FleetDecision` per request, in request order.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.enumeration import ImportantPlacementSet
from repro.core.placements import Placement
from repro.scheduler.fleet import Fleet, FleetHost, minimal_shape
from repro.scheduler.registry import ModelRegistry
from repro.scheduler.requests import PlacementRequest
from repro.topology.machine import MachineTopology


@dataclass
class FleetDecision:
    """What the fleet did with one request."""

    request: PlacementRequest
    host_id: int | None = None
    placement: Placement | None = None
    #: 1-based important-placement id the realized placement instantiates
    #: (None for the heuristic policies, which do not enumerate).
    placement_id: int | None = None
    #: Predicted performance relative to the shape's baseline placement.
    predicted_relative: float | None = None
    #: False when no free block matched the chosen placement's interconnect
    #: score and a differently-scored block of the same size was used.
    block_exact: bool = True
    reject_reason: str | None = None

    @property
    def placed(self) -> bool:
        return self.placement is not None

    def describe(self) -> str:
        if not self.placed:
            return f"{self.request.describe()} -> REJECTED ({self.reject_reason})"
        parts = [f"host {self.host_id}", f"nodes {list(self.placement.nodes)}"]
        if self.placement_id is not None:
            parts.insert(1, f"placement #{self.placement_id}")
        if self.predicted_relative is not None:
            parts.append(f"predicted {self.predicted_relative:.2f}")
        if not self.block_exact:
            parts.append("score-mismatched block")
        return f"{self.request.describe()} -> {', '.join(parts)}"


class FleetPolicy(abc.ABC):
    """Decides, and immediately allocates, one batch of requests."""

    name: str

    @abc.abstractmethod
    def decide_batch(
        self, requests: Sequence[PlacementRequest], fleet: Fleet
    ) -> List[FleetDecision]:
        """One decision per request, in order; placed requests are already
        allocated on their host when this returns."""

    def min_block_nodes(
        self, machine: MachineTopology, vcpus: int
    ) -> int | None:
        """Smallest free node block this policy could use for ``vcpus`` on
        a shape, or None when the shape cannot host them at all.

        The lifecycle rebalancer consolidates exactly this many nodes
        before retrying a fragmentation-rejected request, so a policy
        whose placements need bigger blocks than the minimal balanced
        shape must override this (see :class:`GoalAwareFleetPolicy`).
        """
        try:
            return minimal_shape(machine, vcpus)[0]
        except ValueError:
            return None


class _HeuristicFleetPolicy(FleetPolicy):
    """Shared machinery of the model-free policies."""

    def decide_batch(self, requests, fleet):
        return [self._decide_one(request, fleet) for request in requests]

    def _decide_one(
        self, request: PlacementRequest, fleet: Fleet
    ) -> FleetDecision:
        feasible_anywhere = False
        for host in self._scan_order(fleet):
            machine = host.machine
            try:
                n_nodes, l2_share = minimal_shape(machine, request.vcpus)
            except ValueError:
                continue
            feasible_anywhere = True
            block = host.find_block(
                n_nodes,
                lambda nodes: machine.interconnect.aggregate_bandwidth(nodes),
            )
            if block is None:
                continue
            placement = Placement(
                machine, block, request.vcpus, l2_share=l2_share
            )
            host.allocate(request.request_id, placement)
            return FleetDecision(
                request, host_id=host.host_id, placement=placement
            )
        reason = "capacity" if feasible_anywhere else "infeasible"
        return FleetDecision(request, reject_reason=reason)

    @abc.abstractmethod
    def _scan_order(self, fleet: Fleet) -> Sequence[FleetHost]: ...


class FirstFitFleetPolicy(_HeuristicFleetPolicy):
    """Bin-packing: first host (in id order) with a minimum free block."""

    name = "first-fit"

    def _scan_order(self, fleet):
        return fleet.hosts


class SpreadFleetPolicy(_HeuristicFleetPolicy):
    """Load balancing: emptiest host first."""

    name = "spread"

    def _scan_order(self, fleet):
        return fleet.hosts_by_load()


class GoalAwareFleetPolicy(FleetPolicy):
    """The paper's model-driven policy lifted to the fleet.

    All requests of a batch that share a (machine shape, vCPU count) key
    are predicted together through
    :meth:`~repro.core.model.PlacementModel.predict_batch`, and the
    important placements come from the registry's memo cache — the two hot
    paths this subsystem optimizes.

    Parameters
    ----------
    registry:
        Source of per-shape placements, models, and simulators.
    safety_margin:
        Predictions must clear the goal by this fraction (headroom for
        prediction error, as in :class:`repro.core.policies.MlPolicy`).
    best_effort_slack:
        For goal-less requests: any placement predicted within this
        fraction of the best prediction is acceptable, and the cheapest
        such placement wins.  1.0 reproduces the single-machine
        scheduler's pure argmax; the default trades a little predicted
        performance for much denser packing.
    probe_duration_s:
        Simulated probe length ("for a couple of seconds", Section 1).
    """

    name = "ml"

    def __init__(
        self,
        registry: ModelRegistry | None = None,
        *,
        safety_margin: float = 0.05,
        best_effort_slack: float = 0.9,
        probe_duration_s: float = 3.0,
    ) -> None:
        if safety_margin < 0:
            raise ValueError("safety_margin must be >= 0")
        if not 0.0 < best_effort_slack <= 1.0:
            raise ValueError("best_effort_slack must be in (0, 1]")
        self.registry = registry or ModelRegistry()
        self.safety_margin = safety_margin
        self.best_effort_slack = best_effort_slack
        self.probe_duration_s = probe_duration_s
        #: Batched-prediction accounting for the fleet report.
        self.predict_calls = 0
        self.predicted_rows = 0

    # ------------------------------------------------------------------

    def _predict_group(
        self,
        machine: MachineTopology,
        vcpus: int,
        group: Sequence[PlacementRequest],
    ) -> Tuple[ImportantPlacementSet, np.ndarray] | None:
        """Probe and predict every request of one (shape, vcpus) group in
        one batched model call; None when the shape cannot host them."""
        try:
            placements = self.registry.placements(machine, vcpus)
            model = self.registry.model(machine, vcpus)
        except ValueError:
            return None
        simulator = self.registry.simulator(machine)
        i, j = model.input_pair
        obs_i = np.empty(len(group))
        obs_j = np.empty(len(group))
        for row, request in enumerate(group):
            obs_i[row] = simulator.measured_ipc(
                request.profile,
                placements[i],
                duration_s=self.probe_duration_s,
                repetition=request.request_id,
            )
            obs_j[row] = simulator.measured_ipc(
                request.profile,
                placements[j],
                duration_s=self.probe_duration_s,
                repetition=request.request_id + 1,
            )
        vectors = model.predict_batch(obs_i, obs_j)
        self.predict_calls += 1
        self.predicted_rows += len(group)
        return placements, vectors

    def min_block_nodes(
        self, machine: MachineTopology, vcpus: int
    ) -> int | None:
        """The goal-aware policy only instantiates important placements,
        whose smallest block can exceed the minimal balanced shape
        (Algorithm 2 keeps only blocks that tile the whole machine)."""
        try:
            placements = self.registry.placements(machine, vcpus)
            return min(p.n_nodes for p in placements)
        except ValueError:  # unhostable shape, or no important placements
            return None

    @staticmethod
    def _scorer(placements: ImportantPlacementSet):
        bandwidth = placements.concerns.bandwidth_concern
        if bandwidth is None:
            return lambda nodes: 0.0
        return lambda nodes: bandwidth.score_nodes(nodes)

    def _preference_order(
        self,
        placements: ImportantPlacementSet,
        vector: np.ndarray,
        goal_fraction: float | None,
    ) -> List[int]:
        """Candidate important-placement indices, most preferred first:
        goal-meeting (or, for best-effort requests, near-best) ones
        cheapest-first, then the rest by prediction."""
        indices = list(range(len(placements)))
        if goal_fraction is None:
            threshold = self.best_effort_slack * float(max(vector))
        else:
            threshold = goal_fraction * (1.0 + self.safety_margin)
        meeting = [k for k in indices if vector[k] >= threshold]
        rest = [k for k in indices if vector[k] < threshold]
        meeting.sort(key=lambda k: (placements[k].n_nodes, -vector[k]))
        rest.sort(key=lambda k: -vector[k])
        return meeting + rest

    def decide_batch(self, requests, fleet):
        # Phase 1: batched prediction per (shape, vcpus) key.
        groups: Dict[int, List[PlacementRequest]] = {}
        for request in requests:
            groups.setdefault(request.vcpus, []).append(request)
        predictions: Dict[Tuple, Tuple] = {}
        for machine in fleet.shapes:
            for vcpus, group in groups.items():
                predicted = self._predict_group(machine, vcpus, group)
                if predicted is None:
                    continue
                placements, vectors = predicted
                by_request = {
                    request.request_id: vectors[row]
                    for row, request in enumerate(group)
                }
                predictions[(machine.fingerprint(), vcpus)] = (
                    placements,
                    by_request,
                )

        # Phase 2: place each request, in arrival order.
        decisions = []
        for request in requests:
            decisions.append(self._place_one(request, fleet, predictions))
        return decisions

    def _place_one(
        self,
        request: PlacementRequest,
        fleet: Fleet,
        predictions: Dict[Tuple, Tuple],
    ) -> FleetDecision:
        feasible_anywhere = False
        orders: Dict[Tuple, List[int]] = {}
        for host in fleet.hosts:
            key = (host.machine.fingerprint(), request.vcpus)
            entry = predictions.get(key)
            if entry is None:
                continue
            feasible_anywhere = True
            if key not in orders:
                placements, by_request = entry
                orders[key] = self._preference_order(
                    placements, by_request[request.request_id],
                    request.goal_fraction,
                )
        if not feasible_anywhere:
            return FleetDecision(request, reject_reason="infeasible")
        candidates = [
            host for host in fleet.hosts if host.n_free_nodes > 0
        ]
        if not candidates:
            return FleetDecision(request, reject_reason="capacity")

        # Candidate-major search: the most-preferred placement realizable
        # *anywhere* in the fleet wins, so a mediocre placement on an early
        # host never shadows a good one on a later host.  Pass 1 wants a
        # free block whose interconnect score matches the candidate exactly
        # (so the prediction transfers verbatim); pass 2 accepts any free
        # block of the right size.
        max_rank = max(len(order) for order in orders.values())
        for exact in (True, False):
            for rank in range(max_rank):
                for host in candidates:
                    key = (host.machine.fingerprint(), request.vcpus)
                    order = orders.get(key)
                    if order is None or rank >= len(order):
                        continue
                    placements, by_request = predictions[key]
                    if placements[order[rank]].n_nodes > host.n_free_nodes:
                        continue
                    decision = self._try_candidate(
                        request,
                        host,
                        placements,
                        by_request[request.request_id],
                        order[rank],
                        exact=exact,
                    )
                    if decision is not None:
                        return decision
        return FleetDecision(request, reject_reason="capacity")

    def _try_candidate(
        self,
        request: PlacementRequest,
        host: FleetHost,
        placements: ImportantPlacementSet,
        vector: np.ndarray,
        index: int,
        *,
        exact: bool,
    ) -> FleetDecision | None:
        scorer = self._scorer(placements)
        candidate = placements[index]
        if exact:
            block = host.find_block(
                candidate.n_nodes,
                scorer,
                target_score=scorer(frozenset(candidate.nodes)),
            )
        else:
            block = host.find_block(candidate.n_nodes, scorer)
        if block is None:
            return None
        realized = Placement(
            host.machine,
            block,
            request.vcpus,
            l2_share=candidate.l2_share,
            l3_groups_per_node=candidate.l3_score // candidate.n_nodes,
        )
        host.allocate(request.request_id, realized)
        return FleetDecision(
            request,
            host_id=host.host_id,
            placement=realized,
            placement_id=index + 1,
            predicted_relative=float(vector[index]),
            block_exact=exact,
        )
