"""The fleet scheduler: drive a request stream through a policy and report.

:class:`FleetScheduler` is the control loop: it cuts the stream into
batches (so the goal-aware policy can predict a whole batch in one
vectorized call), lets the policy decide-and-allocate, then grades every
placed container — achieved performance relative to the shape's baseline
placement, measured through the per-shape simulator — and folds everything
into a :class:`FleetReport`.

The ``batch_size=1`` / ``memoize_enumeration=False`` configuration
reproduces the naive per-request pipeline (re-enumerate, predict one row at
a time); the benchmark in ``benchmarks/bench_fleet_scheduler.py`` measures
the gap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.memo import CacheInfo
from repro.scheduler.fleet import Fleet
from repro.scheduler.policies import (
    FleetDecision,
    FleetPolicy,
    GoalAwareFleetPolicy,
)
from repro.scheduler.registry import ModelRegistry
from repro.scheduler.requests import PlacementRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.scheduler.lifecycle import ChurnStats
    from repro.scheduler.service import ServiceStats
    from repro.serving.online import OnlineStats


@dataclass
class GradedDecision:
    """A policy decision plus the scheduler's post-hoc grading."""

    decision: FleetDecision
    #: Solo performance in the realized placement, relative to the shape's
    #: baseline placement (None for rejected requests).
    achieved_relative: float | None = None
    violated: bool = False
    #: Wall-clock seconds attributed to this request's decision (its
    #: batch's elapsed time divided by the batch length).
    decision_seconds: float = 0.0

    def describe(self) -> str:
        text = self.decision.describe()
        if self.achieved_relative is not None:
            text += f", achieved {self.achieved_relative:.2f}"
            if self.violated:
                text += " [VIOLATION]"
        return text

    def to_dict(self) -> Dict:
        """JSON-safe graded trace (the shard <-> front-end payload)."""
        return {
            "decision": self.decision.to_dict(),
            "achieved_relative": self.achieved_relative,
            "violated": self.violated,
            "decision_seconds": self.decision_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict, machines) -> "GradedDecision":
        return cls(
            decision=FleetDecision.from_dict(data["decision"], machines),
            achieved_relative=data["achieved_relative"],
            violated=data["violated"],
            decision_seconds=data["decision_seconds"],
        )


def grade_decision(
    decision: FleetDecision, fleet: Fleet, registry: ModelRegistry
) -> GradedDecision:
    """Grade one decision: achieved performance in the realized placement
    relative to the shape's baseline, through the registry's simulator.

    Shared by the one-shot :class:`FleetScheduler` and the event-driven
    :class:`~repro.scheduler.lifecycle.LifecycleScheduler`, so both grade
    bit-for-bit identically.  Both IPC evaluations are noise-free and
    deterministic, so they go through the registry's memo
    (:meth:`~repro.scheduler.registry.ModelRegistry.solo_ipc` /
    :meth:`~repro.scheduler.registry.ModelRegistry.baseline_ipc`) —
    repeated (shape, profile, placement) keys cost a dict lookup, not two
    simulator runs per placed container.
    """
    if not decision.placed:
        return GradedDecision(decision)
    request = decision.request
    host = fleet.hosts[decision.host_id]
    achieved = registry.solo_ipc(
        host.machine, request.profile, decision.placement
    ) / registry.baseline_ipc(host.machine, request.vcpus, request.profile)
    violated = (
        request.goal_fraction is not None
        and achieved < request.goal_fraction
    )
    return GradedDecision(
        decision, achieved_relative=float(achieved), violated=violated
    )


@dataclass
class FleetReport:
    """Fleet-level outcome of scheduling one request stream."""

    policy: str
    n_hosts: int
    n_requests: int
    decisions: List[GradedDecision] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    thread_utilization: float = 0.0
    node_utilization: float = 0.0
    busiest_host_utilization: float = 0.0
    cache_info: CacheInfo | None = None
    enumeration_runs: int = 0
    predict_calls: int = 0
    predicted_rows: int = 0
    #: Noise-free IPC memo accounting (the grader's hot path).
    ipc_cache_info: CacheInfo | None = None
    #: Arena-inference accounting (process-wide, like the block-score
    #: cache): compiled forests, fused multi-forest calls, and total
    #: (row x tree) lanes descended.
    arena_forests: int = 0
    arena_fused_calls: int = 0
    arena_lanes: int = 0
    #: Shared block-score table accounting (per-shape, process-wide).
    blockscore_cache_info: CacheInfo | None = None
    #: Whether the policy consulted the incremental fleet index.
    indexed: bool = True
    #: Lifecycle statistics (departures, migrations, fragmentation
    #: timeline) — only set by the event-driven LifecycleScheduler.
    churn: "ChurnStats | None" = None
    #: Serving-loop statistics (observations, drift, retrains,
    #: promotions) — only set when an OnlineLearner was attached.
    online: "OnlineStats | None" = None
    #: Routing statistics (shards, retries, per-shard load) — only set by
    #: the sharded :class:`~repro.scheduler.service.SchedulerService`.
    service: "ServiceStats | None" = None

    # ------------------------------------------------------------------

    @classmethod
    def collect(
        cls,
        *,
        policy: FleetPolicy,
        fleet: Fleet,
        registry: ModelRegistry,
        n_requests: int,
        decisions: List[GradedDecision],
        elapsed_seconds: float,
        churn: "ChurnStats | None" = None,
        online: "OnlineStats | None" = None,
    ) -> "FleetReport":
        """Assemble a report from end-of-run state — the single place the
        fleet/registry/policy counters are folded in, shared by the
        one-shot and lifecycle schedulers so their reports cannot drift."""
        from repro.core.blockscores import DEFAULT_BLOCK_SCORE_CACHE
        from repro.ml.arena import ARENA_STATS

        per_host = [h.thread_utilization for h in fleet.hosts]
        return cls(
            policy=policy.name,
            n_hosts=len(fleet),
            n_requests=n_requests,
            decisions=decisions,
            elapsed_seconds=elapsed_seconds,
            thread_utilization=fleet.thread_utilization,
            node_utilization=fleet.node_utilization,
            busiest_host_utilization=max(per_host) if per_host else 0.0,
            cache_info=registry.enumeration_cache.info(),
            enumeration_runs=registry.enumeration_runs(),
            predict_calls=getattr(policy, "predict_calls", 0),
            predicted_rows=getattr(policy, "predicted_rows", 0),
            ipc_cache_info=registry.ipc_cache_info(),
            arena_forests=ARENA_STATS.forests_compiled,
            arena_fused_calls=ARENA_STATS.fused_calls,
            arena_lanes=ARENA_STATS.lanes_evaluated,
            blockscore_cache_info=DEFAULT_BLOCK_SCORE_CACHE.info(),
            indexed=getattr(policy, "indexed", True),
            churn=churn,
            online=online,
        )

    @property
    def placed(self) -> int:
        return sum(1 for g in self.decisions if g.decision.placed)

    @property
    def rejected(self) -> int:
        return self.n_requests - self.placed

    @property
    def goal_bearing(self) -> int:
        return sum(
            1
            for g in self.decisions
            if g.decision.request.goal_fraction is not None
        )

    @property
    def violations(self) -> int:
        return sum(1 for g in self.decisions if g.violated)

    @property
    def admission_pct(self) -> float:
        """Placed requests as a percentage of the stream.

        0.0 when the stream was empty or nothing was admitted — every
        percentage the report prints degrades to 0 instead of dividing by
        zero (a drained or fully-rejecting fleet is a reportable state,
        not a crash).
        """
        if self.n_requests == 0:
            return 0.0
        return 100.0 * self.placed / self.n_requests

    @property
    def violation_pct(self) -> float:
        """Goal violations as a percentage of goal-bearing requests;
        0.0 when no goal-bearing request was admitted."""
        if self.goal_bearing == 0:
            return 0.0
        return 100.0 * self.violations / self.goal_bearing

    @property
    def requests_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.n_requests / self.elapsed_seconds

    def decision_latency_ms(self) -> Tuple[float, float]:
        """(mean, p95) per-request decision latency in milliseconds."""
        if not self.decisions:
            return (0.0, 0.0)
        latencies = np.array([g.decision_seconds for g in self.decisions])
        return (
            float(latencies.mean() * 1000.0),
            float(np.percentile(latencies, 95) * 1000.0),
        )

    def latency_percentiles_ms(
        self, percentiles: Sequence[float] = (50.0, 99.0)
    ) -> Tuple[float, ...]:
        """Per-request decision latency percentiles in milliseconds (the
        service benchmark's p50/p99 headline; zeros with no decisions)."""
        if not self.decisions:
            return tuple(0.0 for _ in percentiles)
        latencies = np.array([g.decision_seconds for g in self.decisions])
        return tuple(
            float(np.percentile(latencies, p) * 1000.0) for p in percentiles
        )

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_dict(self, *, include_decisions: bool = True) -> Dict:
        """JSON-safe report.

        With ``include_decisions`` (the default) the payload round-trips
        through :meth:`from_dict` into an equal report — every derived
        property (placed, violations, latency percentiles) recomputes
        from the decision list.  Without it, the payload is a compact
        machine-readable summary (what ``repro serve --emit-json``
        prints): the derived scalars are snapshotted into a ``summary``
        block instead, and ``from_dict`` reconstructs a report with an
        empty decision list.
        """
        mean_ms, p95_ms = self.decision_latency_ms()
        p50_ms, p99_ms = self.latency_percentiles_ms()
        payload: Dict = {
            "policy": self.policy,
            "n_hosts": self.n_hosts,
            "n_requests": self.n_requests,
            "elapsed_seconds": self.elapsed_seconds,
            "thread_utilization": self.thread_utilization,
            "node_utilization": self.node_utilization,
            "busiest_host_utilization": self.busiest_host_utilization,
            "cache_info": (
                None if self.cache_info is None else self.cache_info.to_dict()
            ),
            "enumeration_runs": self.enumeration_runs,
            "predict_calls": self.predict_calls,
            "predicted_rows": self.predicted_rows,
            "ipc_cache_info": (
                None
                if self.ipc_cache_info is None
                else self.ipc_cache_info.to_dict()
            ),
            "arena_forests": self.arena_forests,
            "arena_fused_calls": self.arena_fused_calls,
            "arena_lanes": self.arena_lanes,
            "blockscore_cache_info": (
                None
                if self.blockscore_cache_info is None
                else self.blockscore_cache_info.to_dict()
            ),
            "indexed": self.indexed,
            "churn": None if self.churn is None else self.churn.to_dict(),
            "online": None if self.online is None else self.online.to_dict(),
            "service": (
                None if self.service is None else self.service.to_dict()
            ),
            "summary": {
                "placed": self.placed,
                "rejected": self.rejected,
                "violations": self.violations,
                "admission_pct": self.admission_pct,
                "violation_pct": self.violation_pct,
                "requests_per_second": self.requests_per_second,
                "latency_mean_ms": mean_ms,
                "latency_p50_ms": p50_ms,
                "latency_p95_ms": p95_ms,
                "latency_p99_ms": p99_ms,
            },
        }
        if include_decisions:
            payload["decisions"] = [g.to_dict() for g in self.decisions]
        return payload

    @classmethod
    def from_dict(cls, data: Dict, machines) -> "FleetReport":
        """Inverse of :meth:`to_dict`; a payload without decisions comes
        back with an empty decision list (its derived counts then read 0
        — consult the payload's ``summary`` block for the snapshot)."""
        from repro.scheduler.lifecycle import ChurnStats
        from repro.scheduler.service import ServiceStats
        from repro.serving.online import OnlineStats

        def cache(entry):
            return None if entry is None else CacheInfo.from_dict(entry)

        return cls(
            policy=data["policy"],
            n_hosts=data["n_hosts"],
            n_requests=data["n_requests"],
            decisions=[
                GradedDecision.from_dict(entry, machines)
                for entry in data.get("decisions", [])
            ],
            elapsed_seconds=data["elapsed_seconds"],
            thread_utilization=data["thread_utilization"],
            node_utilization=data["node_utilization"],
            busiest_host_utilization=data["busiest_host_utilization"],
            cache_info=cache(data["cache_info"]),
            enumeration_runs=data["enumeration_runs"],
            predict_calls=data["predict_calls"],
            predicted_rows=data["predicted_rows"],
            ipc_cache_info=cache(data["ipc_cache_info"]),
            arena_forests=data["arena_forests"],
            arena_fused_calls=data["arena_fused_calls"],
            arena_lanes=data["arena_lanes"],
            blockscore_cache_info=cache(data["blockscore_cache_info"]),
            indexed=data["indexed"],
            churn=(
                None
                if data["churn"] is None
                else ChurnStats.from_dict(data["churn"])
            ),
            online=(
                None
                if data["online"] is None
                else OnlineStats.from_dict(data["online"])
            ),
            service=(
                None
                if data["service"] is None
                else ServiceStats.from_dict(data["service"])
            ),
        )

    def rejects_by_reason(self) -> Dict[str, int]:
        reasons: Dict[str, int] = {}
        for g in self.decisions:
            if not g.decision.placed:
                reason = g.decision.reject_reason or "unknown"
                reasons[reason] = reasons.get(reason, 0) + 1
        return reasons

    def describe(self) -> str:
        mean_ms, p95_ms = self.decision_latency_ms()
        lines = [
            f"fleet report: {self.n_requests} requests over "
            f"{self.n_hosts} hosts (policy={self.policy})",
            f"  placed {self.placed} ({self.admission_pct:.1f}% admitted), "
            f"rejected {self.rejected}"
            + (
                " ("
                + ", ".join(
                    f"{count} {reason}"
                    for reason, count in sorted(self.rejects_by_reason().items())
                )
                + ")"
                if self.rejected
                else ""
            ),
            f"  goal violations: {self.violations} of "
            f"{self.goal_bearing} goal-bearing requests "
            f"({self.violation_pct:.1f}%)",
            f"  utilization: threads {self.thread_utilization:.1%}, "
            f"nodes reserved {self.node_utilization:.1%}, "
            f"busiest host {self.busiest_host_utilization:.1%}",
            f"  decision latency: mean {mean_ms:.2f} ms, p95 {p95_ms:.2f} ms",
            f"  enumeration pipeline runs: {self.enumeration_runs}"
            + (
                f" (cache: {self.cache_info.hits} hits, "
                f"{self.cache_info.misses} misses)"
                if self.cache_info is not None
                else ""
            ),
            f"  host selection: "
            f"{'indexed (fleet buckets)' if self.indexed else 'linear scan'}"
            + (
                # The table cache is process-wide; only report it for runs
                # whose policy actually consulted tables, and say what the
                # number is (a linear-scan A/B run would otherwise print
                # another run's accumulation as its own).
                f", block-score tables: "
                f"{self.blockscore_cache_info.currsize} shape(s) cached "
                f"process-wide"
                if self.indexed and self.blockscore_cache_info is not None
                else ""
            ),
        ]
        if self.ipc_cache_info is not None and (
            self.ipc_cache_info.hits or self.ipc_cache_info.misses
        ):
            lines.append(
                f"  grading ipc memo: {self.ipc_cache_info.hits} hits, "
                f"{self.ipc_cache_info.misses} simulator runs"
            )
        if self.predict_calls:
            lines.append(
                f"  batched prediction: {self.predicted_rows} vectors in "
                f"{self.predict_calls} fused forest calls"
            )
            lines.append(
                f"  arena inference: {self.arena_forests} forest(s) "
                f"compiled process-wide, {self.arena_fused_calls} fused "
                f"calls, {self.arena_lanes} lanes evaluated"
            )
        if self.churn is not None:
            lines.append(self.churn.describe())
        if self.online is not None:
            lines.append(self.online.describe())
        if self.service is not None:
            lines.append(self.service.describe())
        lines.append(
            f"  elapsed {self.elapsed_seconds:.2f} s -> "
            f"{self.requests_per_second:.1f} requests/s"
        )
        return "\n".join(lines)


class FleetScheduler:
    """Streams requests through a fleet policy in batches.

    Parameters
    ----------
    fleet:
        The hosts.
    policy:
        Any :class:`~repro.scheduler.policies.FleetPolicy`; defaults to the
        goal-aware ML policy with a fresh registry.
    registry:
        Used for post-hoc grading (baseline placements and simulators).
        Defaults to the policy's registry when it has one, so the grader
        shares the policy's caches.
    batch_size:
        Requests decided per policy call.  1 disables batching (the naive
        prediction path).
    """

    def __init__(
        self,
        fleet: Fleet,
        policy: FleetPolicy | None = None,
        *,
        registry: ModelRegistry | None = None,
        batch_size: int = 64,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.fleet = fleet
        self.policy = policy or GoalAwareFleetPolicy()
        if registry is None:
            registry = getattr(self.policy, "registry", None) or ModelRegistry()
        self.registry = registry
        self.batch_size = batch_size

    # ------------------------------------------------------------------

    def _grade(self, decision: FleetDecision) -> GradedDecision:
        return grade_decision(decision, self.fleet, self.registry)

    def run(self, requests: Sequence[PlacementRequest]) -> FleetReport:
        """Schedule the whole stream and return the fleet report."""
        start = time.perf_counter()
        graded: List[GradedDecision] = []
        for begin in range(0, len(requests), self.batch_size):
            batch = requests[begin : begin + self.batch_size]
            batch_start = time.perf_counter()
            decisions = self.policy.decide_batch(batch, self.fleet)
            if len(decisions) != len(batch):
                raise RuntimeError(
                    f"policy {self.policy.name} returned {len(decisions)} "
                    f"decisions for a {len(batch)}-request batch"
                )
            per_request = (time.perf_counter() - batch_start) / len(batch)
            for decision in decisions:
                entry = self._grade(decision)
                entry.decision_seconds = per_request
                graded.append(entry)
        elapsed = time.perf_counter() - start

        return FleetReport.collect(
            policy=self.policy,
            fleet=self.fleet,
            registry=self.registry,
            n_requests=len(requests),
            decisions=graded,
            elapsed_seconds=elapsed,
        )
