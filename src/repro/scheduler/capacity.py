"""Available-space vectors: how many more containers fit, per class.

Gudkov et al. (*Efficient calculation of available space for
multi-NUMA virtual machines*) observe that admission control does not
need the full placement search — it needs a cheap, incrementally
maintained answer to "how many more requests of shape X fit right
now?".  This module provides that answer for the whole-node fleet
model:

* For one host, the number of additional ``vcpus``-sized containers
  that fit is ``n_free_nodes // needed`` where ``needed`` is the node
  count of :func:`repro.scheduler.fleet.minimal_shape` (the smallest
  block any policy may allocate; ``ValueError`` means the machine can
  never run that class).
* A :class:`CapacityVector` sums that count over a host set, one entry
  per tracked vcpus class.  Goal classes collapse structurally: the
  node-count bound is goal-independent (every placement of the class
  consumes at least the minimal block, whatever its goal), so the
  vector is keyed by vcpus alone and the *admission policy* — not the
  vector — differentiates goal classes (brown-out sheds best-effort
  first, see ``scheduler/admission.py``).

The :class:`CapacityTracker` maintains the per-shard vector
incrementally by piggybacking on the :class:`~repro.scheduler.index.
FleetIndex` notification hooks: ``FleetHost.allocate``/``release``
already notify the index, whose ``_resize`` bookkeeping forwards every
free-node-count transition (allocate, release, and both halves of a
rebalancer migration) to the attached tracker.  The update is O(tracked
classes) per transition — ``count += new // needed - old // needed``.
:func:`brute_force_capacity` re-enumerates the same counts from scratch
and is the property-testing oracle (``tests/scheduler/test_capacity.py``).

Caveat for decision-affecting consumers: ``count == 0`` alone does not
guarantee a shard-side reject while the rebalancer is enabled — the
rebalancer consolidates free nodes across same-shape hosts, so a shard
can recover a reject whenever some shape's *fleet-wide* free total still
covers the minimal block.  The front end therefore pairs the vector
with the per-shape ``free_nodes`` totals already present in
``ShardSummary`` (see ``SchedulerService._shard_cannot_place``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.scheduler.fleet import FleetHost, minimal_shape
from repro.topology.machine import MachineTopology

__all__ = [
    "CapacityTracker",
    "CapacityVector",
    "brute_force_capacity",
    "initial_capacity",
]


def _needed_nodes(machine: MachineTopology, vcpus: int) -> int | None:
    """Minimal node count for ``vcpus`` on ``machine`` (None: never fits)."""
    try:
        return minimal_shape(machine, vcpus)[0]
    except ValueError:
        return None


@dataclass(frozen=True)
class CapacityVector:
    """Available-space counts per tracked vcpus class.

    ``counts[v]`` is the number of *additional* ``v``-vCPU containers
    the covered host set can take given its current fragmentation.  A
    class missing from ``counts`` is untracked (consumers must stay
    optimistic about it), while a tracked-but-infeasible class carries
    an explicit ``0``.
    """

    counts: Dict[int, int] = field(default_factory=dict)

    def count(self, vcpus: int) -> int | None:
        """Available count for ``vcpus``; None when the class is untracked."""
        return self.counts.get(vcpus)

    @property
    def classes(self) -> Tuple[int, ...]:
        return tuple(sorted(self.counts))

    def __add__(self, other: "CapacityVector") -> "CapacityVector":
        if not isinstance(other, CapacityVector):
            return NotImplemented
        merged = dict(self.counts)
        for vcpus, count in other.counts.items():
            merged[vcpus] = merged.get(vcpus, 0) + count
        return CapacityVector(counts=merged)

    def describe(self) -> str:
        if not self.counts:
            return "capacity: (no tracked classes)"
        parts = [
            f"{vcpus}v:{self.counts[vcpus]}" for vcpus in sorted(self.counts)
        ]
        return "capacity: " + " ".join(parts)

    def to_dict(self) -> Dict:
        """JSON-safe form (object keys must be strings on the wire)."""
        return {
            "counts": {str(vcpus): int(count) for vcpus, count in
                       sorted(self.counts.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CapacityVector":
        counts = data["counts"]
        return cls(
            counts={int(vcpus): int(count) for vcpus, count in counts.items()}
        )


def brute_force_capacity(
    hosts: Iterable[FleetHost], classes: Sequence[int]
) -> Dict[int, int]:
    """Re-enumerate available-space counts from scratch (the oracle).

    O(hosts x classes) per call — the incremental tracker exists so the
    service never pays this on the hot path; property tests assert the
    two agree after every allocate/release/migration.
    """
    counts: Dict[int, int] = {int(vcpus): 0 for vcpus in classes}
    for host in hosts:
        free = host.n_free_nodes
        for vcpus in counts:
            needed = _needed_nodes(host.machine, vcpus)
            if needed is not None:
                counts[vcpus] += free // needed
    return counts


def initial_capacity(
    machines: Sequence[MachineTopology], classes: Sequence[int]
) -> CapacityVector:
    """Vector for an empty fleet of ``machines`` (every node free).

    The front end seeds per-shard summaries with this before the first
    response arrives (and again when a crashed shard restarts empty);
    it must equal the worker-side tracker's own empty-state vector.
    """
    counts: Dict[int, int] = {int(vcpus): 0 for vcpus in classes}
    for machine in machines:
        for vcpus in counts:
            needed = _needed_nodes(machine, vcpus)
            if needed is not None:
                counts[vcpus] += machine.n_nodes // needed
    return CapacityVector(counts=counts)


class CapacityTracker:
    """Incrementally maintained per-shard :class:`CapacityVector`.

    Attach to a :class:`~repro.scheduler.index.FleetIndex`; the index
    forwards every host registration and every free-node-count
    transition.  Counts for hosts already registered at attach time are
    folded in from the index's bucket state, so attaching to a live
    fleet is safe.
    """

    def __init__(self, index, classes: Sequence[int]) -> None:
        self.classes: Tuple[int, ...] = tuple(
            sorted({int(vcpus) for vcpus in classes})
        )
        self._counts: Dict[int, int] = {v: 0 for v in self.classes}
        #: (machine fingerprint, vcpus) -> minimal node count or None.
        self._needed: Dict[Tuple, int | None] = {}
        self._machines: Dict[Tuple, MachineTopology] = {}
        for fingerprint, machine in index.machines():
            self._machines[fingerprint] = machine
            for size, host_ids in index.buckets(fingerprint).items():
                for vcpus in self.classes:
                    needed = self._needed_for(machine, vcpus)
                    if needed is not None:
                        self._counts[vcpus] += (size // needed) * len(host_ids)
        index.attach_capacity(self)

    def _needed_for(self, machine: MachineTopology, vcpus: int) -> int | None:
        key = (machine.fingerprint(), vcpus)
        if key not in self._needed:
            self._needed[key] = _needed_nodes(machine, vcpus)
        return self._needed[key]

    # ------------------------------------------------------------------
    # FleetIndex notification hooks
    # ------------------------------------------------------------------
    def on_register(self, host: FleetHost) -> None:
        machine = host.machine
        self._machines.setdefault(machine.fingerprint(), machine)
        free = host.n_free_nodes
        for vcpus in self.classes:
            needed = self._needed_for(machine, vcpus)
            if needed is not None:
                self._counts[vcpus] += free // needed

    def on_resize(
        self, machine: MachineTopology, old_free: int, new_free: int
    ) -> None:
        for vcpus in self.classes:
            needed = self._needed_for(machine, vcpus)
            if needed is not None:
                self._counts[vcpus] += new_free // needed - old_free // needed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def vector(self) -> CapacityVector:
        return CapacityVector(counts=dict(self._counts))

    def count(self, vcpus: int) -> int | None:
        return self._counts.get(vcpus)

    def assert_consistent(self, hosts: Iterable[FleetHost]) -> None:
        """Raise AssertionError unless incremental == brute force."""
        expected = brute_force_capacity(hosts, self.classes)
        if self._counts != expected:
            drift: List[str] = []
            for vcpus in self.classes:
                if self._counts[vcpus] != expected[vcpus]:
                    drift.append(
                        f"vcpus {vcpus}: tracked {self._counts[vcpus]} "
                        f"!= actual {expected[vcpus]}"
                    )
            raise AssertionError(
                "capacity tracker drifted from brute force: "
                + "; ".join(drift)
            )
