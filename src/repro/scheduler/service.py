"""The sharded scheduler service: route, batch, retry across shards.

Two-level scheduling for the fleet (the Borg/Omega shape): the
:class:`SchedulerService` front-end partitions the fleet round-robin
across worker shards (:mod:`repro.scheduler.shard`), each owning its own
fleet index, model registry, and policies, and routes every request from
nothing but the shards' cheap summaries — free-node totals and the
largest free block per machine shape.  Summaries are refreshed by
piggybacking on every worker response, so they are always slightly
stale; the service is *optimistic* about that: it routes anyway, and
when a shard rejects for capacity (its summary promised room it no
longer has, or never had), the request is retried on the next-best
shard until one places it or every shard has had a look.  A request is
therefore placed exactly once or rejected exactly once, never lost and
never double-placed — the conflict-retry property the tests assert.

Why it is fast, independent of transport parallelism:

* every shard's candidate scans (index buckets, block search) cover
  ``1/n_shards`` of the hosts, so the per-decision hot path shrinks
  with the shard count;
* arrivals are batched into routing windows and each shard decides its
  window slice in one ``decide_batch`` call, so the goal-aware policy's
  fused forest call amortizes across the window instead of running per
  event as the monolithic lifecycle engine does;
* departures are deferred into per-shard outboxes ([id, time] pairs —
  a release needs nothing else) and ride as one batched message right
  before the owning shard's next window, so the dominant event type in
  a churn stream costs no round trips of its own.

With one shard and a window of one, the service is the monolithic
:class:`~repro.scheduler.lifecycle.LifecycleScheduler` behind a wire
protocol: the reference-stream tests assert the decisions are
bit-for-bit identical.

Dispatch is *overlapped* by default: each phase of a routing round
(departure flush, then the window itself) journals every mutating
message first, fires every shard's message, and gathers the replies via
``multiprocessing.connection.wait`` — processing them in shard order
regardless of arrival order, so routing, retries, summaries, and merged
reports are bit-for-bit those of the sequential ``--no-overlap``
baseline while the worker processes run their slices concurrently.
Failures surface at the gather and are resolved sequentially in shard
order through the same retry/recovery tail the sequential path uses, so
fault handling stays deterministic too.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Dict, List, Sequence, Tuple

from repro.core.memo import CacheInfo
from repro.core.serialize import machines_by_name
from repro.scheduler.admission import AdmissionController, AdmissionStats
from repro.scheduler.capacity import initial_capacity
from repro.scheduler.config import ScheduleConfig
from repro.scheduler.events import EventKind, events_from_requests
from repro.scheduler.fleet import minimal_shape
from repro.scheduler.lifecycle import (
    ChurnStats,
    FragmentationSample,
    MigrationRecord,
)
from repro.scheduler.faults import FaultInjectingClient, FaultPlan
from repro.scheduler.policies import FleetDecision
from repro.scheduler.requests import PlacementRequest
from repro.scheduler.scheduler import FleetReport, GradedDecision
from repro.scheduler.shard import (
    InlineShardClient,
    ProcessShardClient,
    ShardCrashError,
    ShardError,
    ShardSummary,
    ShardTimeoutError,
)
from repro.scheduler.supervisor import (
    HEALTH_DOWN,
    MUTATING_OPS,
    ShardDownError,
    ShardSupervisor,
)


@dataclass
class ServiceStats:
    """Routing counters carried inside a FleetReport."""

    n_shards: int
    window: int
    transport: str = "inline"
    #: Routing rounds flushed (each is at most one message per shard).
    rounds: int = 0
    #: Arrivals routed (first placement attempt).
    routed: int = 0
    #: Departures forwarded to their owning shard.
    departures_routed: int = 0
    #: Batched departure messages actually sent (departures are deferred
    #: per shard and delivered before the shard's next message).
    departure_batches: int = 0
    #: Re-route attempts after a shard rejected (stale-summary recovery).
    retries: int = 0
    #: Requests placed by a retry after their first shard rejected them.
    recovered_by_retry: int = 0
    #: Requests rejected after every shard was tried.
    exhausted: int = 0
    #: Arrivals finally owned by each shard (placed or terminally
    #: rejected there).
    shard_requests: List[int] = field(default_factory=list)
    #: Arrivals placed by each shard.
    shard_placed: List[int] = field(default_factory=list)
    #: Whether shard supervision (journaling, health, recovery) was on.
    supervised: bool = False
    #: Shard crashes detected (dead pipe, dead process, injected kill).
    crashes: int = 0
    #: Request timeouts observed (wedged worker or dropped reply).
    timeouts: int = 0
    #: Timeout retries issued after a seeded exponential backoff sleep.
    backoff_retries: int = 0
    #: Arrivals re-routed to a surviving shard because their shard went
    #: down with recovery deferred.
    failovers: int = 0
    #: Respawn-and-replay recoveries completed.
    journal_replays: int = 0
    #: Journaled messages re-sent during those replays.
    replayed_messages: int = 0
    #: Routing rounds that started with at least one shard still DOWN.
    degraded_windows: int = 0
    #: Arrivals whose placement was touched by a fault (re-routed, or
    #: placed through a send that needed retries/recovery).
    degraded_arrivals: int = 0
    #: Routing rounds dispatched overlapped (fire every shard's message,
    #: then gather); 0 when ``--no-overlap`` forces the serial baseline.
    overlapped_rounds: int = 0
    #: Wall-clock seconds spent inside placement rounds.  Under
    #: overlapped dispatch this is what req/s actually experiences.
    window_wall_seconds: float = 0.0
    #: Summed per-shard service time (send until the reply is ready).
    #: Serial dispatch pays this sum on the wall clock; overlapped
    #: dispatch pays roughly the per-round maximum — the gap between the
    #: two fields is the time the overlap won back.
    shard_service_seconds: float = 0.0
    #: Capacity-reject retry fan-outs skipped because the next shard's
    #: summary (capacity vector + per-shape free totals, exact at that
    #: point) already proved the request cannot be placed there.
    #: Admission mode only — without the vectors every live shard gets
    #: a round trip.
    retries_short_circuited: int = 0
    #: Admission-controller counters (None when admission is off, which
    #: keeps the pre-admission wire payload byte-identical).
    admission: "AdmissionStats | None" = None

    def __add__(self, other: "ServiceStats") -> "ServiceStats":
        """Merge counters from two runs of identically shaped services."""
        if not isinstance(other, ServiceStats):
            return NotImplemented
        if (self.n_shards, self.window, self.transport) != (
            other.n_shards,
            other.window,
            other.transport,
        ):
            raise ValueError(
                "can only merge stats from services with the same shard "
                "count, window, and transport"
            )
        merged_admission = None
        if self.admission is not None or other.admission is not None:
            merged_admission = (self.admission or AdmissionStats()) + (
                other.admission or AdmissionStats()
            )

        def zipsum(a: List[int], b: List[int]) -> List[int]:
            if len(a) < len(b):
                a = a + [0] * (len(b) - len(a))
            elif len(b) < len(a):
                b = b + [0] * (len(a) - len(b))
            return [x + y for x, y in zip(a, b)]

        return ServiceStats(
            n_shards=self.n_shards,
            window=self.window,
            transport=self.transport,
            rounds=self.rounds + other.rounds,
            routed=self.routed + other.routed,
            departures_routed=(
                self.departures_routed + other.departures_routed
            ),
            departure_batches=(
                self.departure_batches + other.departure_batches
            ),
            retries=self.retries + other.retries,
            recovered_by_retry=(
                self.recovered_by_retry + other.recovered_by_retry
            ),
            exhausted=self.exhausted + other.exhausted,
            shard_requests=zipsum(self.shard_requests, other.shard_requests),
            shard_placed=zipsum(self.shard_placed, other.shard_placed),
            supervised=self.supervised or other.supervised,
            crashes=self.crashes + other.crashes,
            timeouts=self.timeouts + other.timeouts,
            backoff_retries=self.backoff_retries + other.backoff_retries,
            failovers=self.failovers + other.failovers,
            journal_replays=self.journal_replays + other.journal_replays,
            replayed_messages=(
                self.replayed_messages + other.replayed_messages
            ),
            degraded_windows=self.degraded_windows + other.degraded_windows,
            degraded_arrivals=(
                self.degraded_arrivals + other.degraded_arrivals
            ),
            overlapped_rounds=(
                self.overlapped_rounds + other.overlapped_rounds
            ),
            window_wall_seconds=(
                self.window_wall_seconds + other.window_wall_seconds
            ),
            shard_service_seconds=(
                self.shard_service_seconds + other.shard_service_seconds
            ),
            retries_short_circuited=(
                self.retries_short_circuited + other.retries_short_circuited
            ),
            admission=merged_admission,
        )

    def describe(self) -> str:
        lines = [
            f"  service: {self.n_shards} shard(s) ({self.transport} "
            f"transport), window {self.window}: {self.rounds} routing "
            f"rounds, {self.routed} arrivals routed, "
            f"{self.departures_routed} departures in "
            f"{self.departure_batches} batches",
            f"  optimistic retry: {self.retries} re-routes, "
            f"{self.recovered_by_retry} recovered, "
            f"{self.exhausted} exhausted every shard",
            f"  dispatch: {self.overlapped_rounds} overlapped round(s), "
            f"{self.window_wall_seconds:.3f}s window wall clock / "
            f"{self.shard_service_seconds:.3f}s summed shard service",
        ]
        if self.shard_requests:
            lines.append(
                "  shard load: "
                + ", ".join(
                    f"#{shard}: {requests} routed / {placed} placed"
                    for shard, (requests, placed) in enumerate(
                        zip(self.shard_requests, self.shard_placed)
                    )
                )
            )
        if self.supervised:
            lines.append(
                f"  supervision: {self.crashes} crashes, "
                f"{self.timeouts} timeouts, "
                f"{self.backoff_retries} backoff retries, "
                f"{self.failovers} failovers"
            )
            lines.append(
                f"  recovery: {self.journal_replays} journal replays "
                f"({self.replayed_messages} messages), "
                f"{self.degraded_windows} degraded windows, "
                f"{self.degraded_arrivals} degraded arrivals"
            )
        if self.admission is not None:
            a = self.admission
            lines.append(
                f"  admission: {a.offered} offered, {a.admitted} admitted, "
                f"{a.rejected_infeasible} infeasible, "
                f"{a.rejected_capacity} saturated, "
                f"{self.retries_short_circuited} retry fan-out(s) skipped"
            )
            lines.append(
                f"  brown-out: {a.brownout_entries} entered / "
                f"{a.brownout_exits} exited, {a.held} held "
                f"(peak {a.held_peak}), {a.drained} drained, "
                f"{a.shed_total} shed"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict:
        data = {
            "n_shards": self.n_shards,
            "window": self.window,
            "transport": self.transport,
            "rounds": self.rounds,
            "routed": self.routed,
            "departures_routed": self.departures_routed,
            "departure_batches": self.departure_batches,
            "retries": self.retries,
            "recovered_by_retry": self.recovered_by_retry,
            "exhausted": self.exhausted,
            "shard_requests": list(self.shard_requests),
            "shard_placed": list(self.shard_placed),
            "supervised": self.supervised,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "backoff_retries": self.backoff_retries,
            "failovers": self.failovers,
            "journal_replays": self.journal_replays,
            "replayed_messages": self.replayed_messages,
            "degraded_windows": self.degraded_windows,
            "degraded_arrivals": self.degraded_arrivals,
            "overlapped_rounds": self.overlapped_rounds,
            "window_wall_seconds": self.window_wall_seconds,
            "shard_service_seconds": self.shard_service_seconds,
        }
        # Admission-era keys are emitted only when the controller ran,
        # keeping the admission-off payload byte-identical to PR 9's.
        if self.admission is not None or self.retries_short_circuited:
            data["retries_short_circuited"] = self.retries_short_circuited
        if self.admission is not None:
            data["admission"] = self.admission.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "ServiceStats":
        values = dict(data)
        admission = values.get("admission")
        if admission is not None:
            values["admission"] = AdmissionStats.from_dict(admission)
        return cls(**values)


def merge_churn_stats(
    per_shard: Sequence[ChurnStats],
    *,
    arrivals: int,
    initial: Sequence[FragmentationSample],
) -> ChurnStats:
    """Fold per-shard churn statistics into one fleet-wide view.

    Counters sum; migration traces interleave by time.  The
    fragmentation timeline is merged by carrying each shard's latest
    sample forward: at every event time, fleet free nodes / active
    containers / fit failures are the *sum* of the shards' latest
    values and the largest free block is their *max* (a block lives on
    one host, hence in one shard).  ``initial`` supplies each shard's
    pre-stream state (an empty shard: all nodes free) so sums are right
    before every shard has reported a sample.  ``arrivals`` overrides
    the summed arrival count: a retried request arrives at several
    shards but only once at the service.
    """
    if len(per_shard) == 1:
        merged = ChurnStats.from_dict(per_shard[0].to_dict())
        merged.arrivals = arrivals
        return merged
    merged = ChurnStats(
        arrivals=arrivals,
        departures=sum(s.departures for s in per_shard),
        rebalance_attempts=sum(s.rebalance_attempts for s in per_shard),
        rebalance_recovered=sum(s.rebalance_recovered for s in per_shard),
    )
    merged.migrations = sorted(
        (m for s in per_shard for m in s.migrations),
        key=lambda m: (m.time, m.triggered_by, m.request_id),
    )
    latest = {
        shard: sample for shard, sample in enumerate(initial)
    }
    tagged = [
        (sample.time, shard, position, sample)
        for shard, stats in enumerate(per_shard)
        for position, sample in enumerate(stats.fragmentation_timeline)
    ]
    tagged.sort(key=lambda item: (item[0], item[1], item[2]))
    for event_time, shard, _, sample in tagged:
        latest[shard] = sample
        merged.fragmentation_timeline.append(
            FragmentationSample(
                time=event_time,
                free_nodes_total=sum(
                    s.free_nodes_total for s in latest.values()
                ),
                largest_free_block=max(
                    s.largest_free_block for s in latest.values()
                ),
                active_containers=sum(
                    s.active_containers for s in latest.values()
                ),
                fit_failures=sum(s.fit_failures for s in latest.values()),
            )
        )
    return merged


@dataclass
class _DispatchOutcome:
    """Result of one shard's round trip inside an overlapped dispatch:
    either a response (with its service time and whether fault handling
    touched it), or the :class:`ShardDownError` the sequential path
    would have raised at that point."""

    response: Dict | None = None
    elapsed: float = 0.0
    faulted: bool = False
    down: ShardDownError | None = None


class SchedulerService:
    """Front-end over worker shards: route, batch, retry, merge reports.

    Parameters
    ----------
    config:
        The full :class:`~repro.scheduler.config.ScheduleConfig`;
        ``shards``, ``window``, and ``workers`` select the service
        shape, everything else configures the per-shard engines exactly
        as it would configure the monolithic schedulers.  The
        supervision knobs (``supervised``, ``request_timeout_s``,
        ``fault_retries``, ``backoff_base_s``, ``recovery_rounds``)
        configure the fault-tolerance layer.
    faults:
        Optional :class:`~repro.scheduler.faults.FaultPlan`: every shard
        client is wrapped in a
        :class:`~repro.scheduler.faults.FaultInjectingClient` and
        supervision is switched on (an unsupervised service could not
        survive its own fault plan).  With ``faults=None`` and
        ``config.supervised`` False, the service's wire bytes and
        decisions are bit-for-bit those of the unsupervised service —
        no ``seq`` keys, no journaling, nothing extra on the pipe.

    Use as a context manager (or call :meth:`close`) so process-mode
    workers are shut down.
    """

    def __init__(
        self, config: ScheduleConfig, faults: FaultPlan | None = None
    ) -> None:
        config.validate()
        if config.online_learning:
            raise ValueError(
                "online learning is monolithic-only for now: promotions "
                "mutate one registry, and per-shard registries would "
                "drift apart (run repro schedule --online-learning)"
            )
        self.config = config
        machines = config.machine_list()
        self.machines = machines
        self._by_name = machines_by_name(machines)
        n = config.shards
        self._shard_machines = [machines[shard::n] for shard in range(n)]
        self._fault_schedules = (
            None
            if faults is None
            else [faults.bind(shard) for shard in range(n)]
        )
        self.supervisor: ShardSupervisor | None = None
        if config.supervised or faults is not None:
            self.supervisor = ShardSupervisor(
                n,
                retries=config.fault_retries,
                backoff_base_s=config.backoff_base_s,
                recovery_rounds=config.recovery_rounds,
                seed=config.seed,
            )
        self._sleep = time.sleep
        self.clients = [self._make_client(shard) for shard in range(n)]
        self.summaries: List[ShardSummary] = [
            self._initial_summary(shard) for shard in range(n)
        ]
        #: Front-end admission controller (``--admission``); None keeps
        #: every code path and wire byte identical to the
        #: pre-admission service.
        self.admission: AdmissionController | None = None
        #: Empty-fleet capacity totals per class — the denominator of
        #: the brown-out capacity fraction.
        self._initial_capacity_total: Dict[int, int] = {}
        if config.admission:
            self.admission = AdmissionController(
                machines=machines,
                classes=config.vcpus,
                queue_limit=config.queue_limit,
                shed_policy=config.shed_policy,
                deadline_budget_s=config.deadline_budget_s,
                brownout_watermark=config.brownout_watermark,
            )
            self._initial_capacity_total = dict(
                initial_capacity(machines, config.vcpus).counts
            )
        self.stats = ServiceStats(
            n_shards=n,
            window=config.window,
            transport=self.clients[0].transport,
            shard_requests=[0] * n,
            shard_placed=[0] * n,
            supervised=self.supervisor is not None,
        )
        if self.admission is not None:
            # The report's stats object shares the controller's counters.
            self.stats.admission = self.admission.stats
        self.graded: List[GradedDecision] = []
        #: request id -> shard that finally owns it (placed it, or issued
        #: the terminal rejection) — the departure routing table.
        self._owner: Dict[int, int] = {}
        #: Per-shard deferred departures ([request_id, time] pairs): a
        #: departure costs no round trip of its own; the batch rides
        #: immediately before the owning shard's next message.
        self._outbox: List[List[List]] = [[] for _ in range(n)]
        #: (machine name, vcpus) -> minimal block nodes | None, memoized.
        self._needed: Dict[Tuple[str, int], int | None] = {}

    def _make_client(self, shard: int):
        """Build (or rebuild, on recovery) one shard's client, re-wrapped
        with its fault schedule so injected faults survive respawns."""
        if self.config.workers == "process":
            client = ProcessShardClient(
                shard, self.config, timeout_s=self.config.request_timeout_s
            )
        else:
            client = InlineShardClient(
                shard, self.config, machines=self._shard_machines[shard]
            )
        if self._fault_schedules is not None:
            client = FaultInjectingClient(
                client, self._fault_schedules[shard]
            )
        return client

    def _initial_summary(self, shard: int) -> ShardSummary:
        """The router's view of a freshly built (or respawned-empty)
        shard.  In admission mode it carries the shard's empty-fleet
        capacity vector, matching what the worker's own tracker reports
        before any placement."""
        machines = self._shard_machines[shard]
        capacity = (
            initial_capacity(machines, self.config.vcpus)
            if self.config.admission
            else None
        )
        return ShardSummary.initial(shard, machines, capacity=capacity)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "SchedulerService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        for client in self.clients:
            client.close()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _needed_nodes(self, name: str, vcpus: int) -> int | None:
        """Optimistic block-size estimate for feasibility ranking: the
        minimal balanced shape.  The ML policy may need a bigger block
        (important placements only) — that optimism is exactly what the
        retry path absorbs, so the router never consults a model."""
        key = (name, vcpus)
        if key not in self._needed:
            try:
                self._needed[key] = minimal_shape(
                    self._by_name[name], vcpus
                )[0]
            except ValueError:
                self._needed[key] = None
        return self._needed[key]

    def _rank_shards(
        self, vcpus: int, debits: Sequence[int], exclude: frozenset = frozenset()
    ) -> List[int]:
        """Shard ids best-first for a request of ``vcpus``.

        Shards whose summary shows a big-enough free block on some
        hostable shape rank first, by descending (free nodes - in-window
        debits); shards that *look* infeasible or full still rank (last)
        rather than being dropped — the summary may be stale, and the
        final say belongs to the shard itself.
        """
        ranked = []
        for summary in self.summaries:
            if summary.shard_id in exclude:
                continue
            feasible = False
            for name, entry in summary.shapes.items():
                needed = self._needed_nodes(name, vcpus)
                if needed is not None and (
                    entry["largest_free_block"] >= needed
                ):
                    feasible = True
                    break
            free = summary.free_nodes_total - debits[summary.shard_id]
            ranked.append((not feasible, -free, summary.shard_id))
        ranked.sort()
        return [shard_id for _, _, shard_id in ranked]

    def _min_debit(self, vcpus: int) -> int:
        """Nodes to debit from a shard's cached free total when a request
        is routed to it within the current window."""
        costs = [
            needed
            for name in self._by_name
            if (needed := self._needed_nodes(name, vcpus)) is not None
        ]
        return min(costs, default=0)

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------

    def _globalize(self, entry: GradedDecision, shard: int) -> GradedDecision:
        """Translate a shard-local host id to the global fleet id."""
        if entry.decision.host_id is not None:
            entry.decision.host_id = (
                entry.decision.host_id * self.config.shards + shard
            )
        return entry

    def _from_wire(self, data: Dict, shard: int) -> GradedDecision:
        return self._globalize(
            GradedDecision.from_dict(data, self._by_name), shard
        )

    def _update_summary(self, shard: int, response: Dict) -> None:
        self.summaries[shard] = ShardSummary.from_dict(response["summary"])

    def _send(self, shard: int, message: Dict) -> Tuple[Dict, float]:
        """One worker round-trip; returns (response, seconds).

        Deferred departures for the shard are delivered first, so the
        shard always processes its events in stream order.  With the
        supervisor off this is the plain request path — no sequence
        numbers, no journaling, nothing extra on the wire.
        """
        if message.get("op") != "depart":
            self._flush_departures(shard)
        if self.supervisor is None:
            start = time.perf_counter()
            response = self.clients[shard].request(message)
            elapsed = time.perf_counter() - start
            self.stats.shard_service_seconds += elapsed
            self._update_summary(shard, response)
            return response, elapsed
        return self._send_supervised(shard, message)

    def _tracked_request(self, shard: int, wire_message: Dict) -> Dict:
        """One supervised round trip, accounted on the supervisor's
        in-flight ledger for its duration."""
        supervisor = self.supervisor
        timeout = self.config.request_timeout_s
        deadline = None if timeout is None else time.monotonic() + timeout
        supervisor.track_send(shard, deadline)
        try:
            return self.clients[shard].request(
                wire_message, timeout_s=timeout
            )
        finally:
            supervisor.settle_send(shard)

    def _send_supervised(
        self, shard: int, message: Dict
    ) -> Tuple[Dict, float]:
        """One supervised round-trip: journal first (state-mutating ops),
        then one attempt; failures run the shared
        :meth:`_resolve_supervised` tail (bounded timeout retries with
        seeded backoff, then either an immediate respawn-and-replay or a
        deferred-recovery handoff).

        Raises :class:`~repro.scheduler.supervisor.ShardDownError` when
        the shard is (or just went) DOWN with recovery deferred — the
        caller fails the work over to a surviving shard; the journal
        entry has been rolled back so the eventual replay cannot
        double-apply it.
        """
        supervisor = self.supervisor
        start = time.perf_counter()
        if supervisor.health[shard] == HEALTH_DOWN:
            raise ShardDownError(shard, "down (recovery deferred)")
        entry = None
        wire_message = message
        if message["op"] in MUTATING_OPS:
            entry = supervisor.journal(shard, message)
            wire_message = entry.message
        try:
            response = self._tracked_request(shard, wire_message)
        except (ShardTimeoutError, ShardCrashError) as error:
            return self._resolve_supervised(
                shard, message, wire_message, entry, error, start
            )
        supervisor.mark_up(shard)
        self._update_summary(shard, response)
        elapsed = time.perf_counter() - start
        self.stats.shard_service_seconds += elapsed
        return response, elapsed

    def _resolve_supervised(
        self,
        shard: int,
        message: Dict,
        wire_message: Dict,
        entry,
        error: ShardError,
        start: float,
    ) -> Tuple[Dict, float]:
        """The shared failure tail of one supervised send: bounded
        timeout retries with seeded backoff, then either an immediate
        respawn-and-replay or a deferred-recovery handoff.  ``error`` is
        the first attempt's failure — the sequential path enters from
        :meth:`_send_supervised`, the overlapped dispatcher after its
        gather, always in shard order, so counters, backoff draws, and
        journal state match the sequential execution exactly.
        """
        supervisor = self.supervisor
        attempt = 0
        while True:
            if isinstance(error, ShardCrashError):
                self.stats.crashes += 1
                break
            self.stats.timeouts += 1
            supervisor.mark_suspect(shard)
            if attempt >= supervisor.retries:
                break
            attempt += 1
            self.stats.backoff_retries += 1
            self._sleep(supervisor.backoff_seconds(attempt))
            try:
                response = self._tracked_request(shard, wire_message)
            except (ShardTimeoutError, ShardCrashError) as caught:
                error = caught
                continue
            supervisor.mark_up(shard)
            self._update_summary(shard, response)
            elapsed = time.perf_counter() - start
            self.stats.shard_service_seconds += elapsed
            return response, elapsed
        # The shard is no longer trustworthy.  The only consistent
        # futures are (a) rebuild it now and replay the journal, or
        # (b) roll the in-flight work back and go degraded.
        self.clients[shard].kill()
        supervisor.mark_down(shard, self.stats.rounds)
        if (
            entry is not None
            and supervisor.recovery_rounds > 0
            and self._has_other_up_shard(shard)
        ):
            # Deferred recovery: only mutating work can fail over; a
            # read (summary/report) is needed now, so fall through to
            # the immediate rebuild below.
            supervisor.rollback(shard, entry)
            raise ShardDownError(shard, f"went down: {error}") from error
        last_response = self._recover_shard(shard)
        if entry is not None:
            # The failed message was journaled before the send, so the
            # replay just applied it: the final replay response is this
            # message's response.
            elapsed = time.perf_counter() - start
            self.stats.shard_service_seconds += elapsed
            return last_response, elapsed
        # Read-only message (summary/report): resend to the fresh worker.
        return self._send_supervised(shard, message)

    def _recover_shard(self, shard: int) -> Dict | None:
        """Rebuild a dead shard: respawn the worker from the serialized
        config, reset the front-end's cached :class:`ShardSummary` (the
        fresh worker is empty until the replay finishes), and replay the
        journal in sequence order to reconstruct the shard's exact
        pre-crash state.  Pending departures in ``self._outbox[shard]``
        were never journaled and survive untouched — they ride after the
        shard is back UP.  Replay is idempotent (worker-side sequence
        dedup), and a fault firing mid-replay just restarts the rebuild:
        fault actions fire at most once, so the loop converges.  Returns
        the last replay response (None for an empty journal).
        """
        supervisor = self.supervisor
        while True:
            supervisor.mark_recovering(shard)
            self.clients[shard].kill()
            self.clients[shard] = self._make_client(shard)
            self.summaries[shard] = self._initial_summary(shard)
            replayed: List[Dict] = []
            try:
                # request_many pipelines the replay on the process
                # transport (and stays sequential under fault injection,
                # keeping message indices coupled to deliveries); the
                # callback counts exactly the replies that arrived, so a
                # mid-replay fault leaves the same counter trail as the
                # sequential per-entry loop did.
                self.clients[shard].request_many(
                    [entry.message for entry in supervisor.journals[shard]],
                    timeout_s=self.config.request_timeout_s,
                    on_response=replayed.append,
                )
            except ShardTimeoutError:
                self.stats.replayed_messages += len(replayed)
                self.stats.timeouts += 1
                continue
            except ShardCrashError:
                self.stats.replayed_messages += len(replayed)
                self.stats.crashes += 1
                continue
            self.stats.replayed_messages += len(replayed)
            last_response = replayed[-1] if replayed else None
            break
        self.stats.journal_replays += 1
        supervisor.mark_up(shard)
        if last_response is not None:
            self._update_summary(shard, last_response)
        return last_response

    def _recover_all(self) -> None:
        """Bring every DOWN shard back regardless of its recovery round —
        report merging needs all shards live."""
        if self.supervisor is None:
            return
        for shard in sorted(self.supervisor.down_shards()):
            self._recover_shard(shard)

    def _down_shards(self) -> frozenset:
        if self.supervisor is None:
            return frozenset()
        return self.supervisor.down_shards()

    def _has_other_up_shard(self, shard: int) -> bool:
        down = self.supervisor.down_shards()
        return any(
            other != shard and other not in down
            for other in range(self.config.shards)
        )

    def _flush_departures(self, shard: int) -> None:
        events = self._outbox[shard]
        if not events:
            return
        self._outbox[shard] = []
        try:
            self._send(shard, {"op": "depart", "events": events})
        except ShardDownError:
            # The owner went down with recovery deferred: the journal
            # entry was rolled back, so nothing was applied — re-queue
            # the pairs; they ride again after the shard recovers.
            self._outbox[shard] = events + self._outbox[shard]
            return
        self.stats.departure_batches += 1

    # ------------------------------------------------------------------
    # Overlapped dispatch
    # ------------------------------------------------------------------

    def _await_replies(
        self, shards: Sequence[int], ready_at: Dict[int, float]
    ) -> Dict[int, float]:
        """Block until every listed shard's client either has a readable
        reply or has passed its reply deadline; stamps the moment each
        became ready into ``ready_at`` (shards already stamped are
        skipped).  Crashed pipes and expired deadlines count as ready —
        the subsequent ``recv()`` raises the crash or timeout, exactly
        where the sequential path would have seen it."""
        waiting = [shard for shard in shards if shard not in ready_at]
        while waiting:
            connections = []
            still: List[int] = []
            deadlines: List[float] = []
            for shard in waiting:
                client = self.clients[shard]
                if client.reply_ready():
                    ready_at[shard] = time.perf_counter()
                    continue
                connection = client.gather_connection()
                if connection is None:
                    # Nothing to wait on and nothing buffered (inline
                    # worker, wedged fault): recv() resolves it now.
                    ready_at[shard] = time.perf_counter()
                    continue
                deadline = client.recv_deadline()
                if deadline is not None and time.monotonic() >= deadline:
                    ready_at[shard] = time.perf_counter()
                    continue
                still.append(shard)
                connections.append(connection)
                if deadline is not None:
                    deadlines.append(deadline)
            waiting = still
            if not waiting:
                break
            timeout = None
            if deadlines:
                timeout = max(0.0, min(deadlines) - time.monotonic())
            mp_connection.wait(connections, timeout)
        return ready_at

    def _dispatch(
        self, sends: Sequence[Tuple[int, Dict]]
    ) -> Dict[int, _DispatchOutcome]:
        """Overlapped multi-shard round trip: fire every message, gather
        the replies, resolve them in shard order.

        ``sends`` holds (shard, message) pairs in ascending shard order,
        at most one per shard; pending departures for every listed shard
        must already have been delivered (or *be* these messages).
        Returns one :class:`_DispatchOutcome` per shard — outcomes with
        ``down`` set carry the :class:`ShardDownError` the sequential
        loop would have raised for that shard.
        """
        if self.supervisor is not None:
            return self._dispatch_supervised(sends)
        outcomes: Dict[int, _DispatchOutcome] = {}
        starts: Dict[int, float] = {}
        ready_at: Dict[int, float] = {}
        for shard, message in sends:
            starts[shard] = time.perf_counter()
            self.clients[shard].send(message)
            if self.clients[shard].gather_connection() is None:
                # Inline transport: the work happened inside send(), so
                # the shard's service time is the send duration alone.
                ready_at[shard] = time.perf_counter()
        self._await_replies([shard for shard, _ in sends], ready_at)
        for shard, _ in sends:
            response = self.clients[shard].recv()
            elapsed = ready_at.get(shard, time.perf_counter()) - starts[shard]
            self.stats.shard_service_seconds += elapsed
            self._update_summary(shard, response)
            outcomes[shard] = _DispatchOutcome(
                response=response, elapsed=elapsed
            )
        return outcomes

    def _dispatch_supervised(
        self, sends: Sequence[Tuple[int, Dict]]
    ) -> Dict[int, _DispatchOutcome]:
        """The supervised overlap: journal *every* mutating message
        before anything is fired (the write-ahead ordering is
        phase-wide, and per-shard journals keep per-shard sequence
        numbers identical to sequential dispatch), fire all sends with
        per-shard deadlines on the supervisor's in-flight ledger, gather
        once, then resolve in shard order — failures run the same
        :meth:`_resolve_supervised` tail, sequentially, so recovery,
        counters, and backoff draws match the sequential execution."""
        supervisor = self.supervisor
        outcomes: Dict[int, _DispatchOutcome] = {}
        entries: Dict[int, object] = {}
        wires: Dict[int, Dict] = {}
        starts: Dict[int, float] = {}
        ready_at: Dict[int, float] = {}
        send_errors: Dict[int, ShardError] = {}
        active: List[int] = []
        for shard, message in sends:
            if supervisor.health[shard] == HEALTH_DOWN:
                outcomes[shard] = _DispatchOutcome(
                    down=ShardDownError(shard, "down (recovery deferred)")
                )
                continue
            entry = None
            wire_message = message
            if message["op"] in MUTATING_OPS:
                entry = supervisor.journal(shard, message)
                wire_message = entry.message
            entries[shard] = entry
            wires[shard] = wire_message
            active.append(shard)
        fired: List[int] = []
        for shard in active:
            client = self.clients[shard]
            starts[shard] = time.perf_counter()
            try:
                client.send(
                    wires[shard], timeout_s=self.config.request_timeout_s
                )
            except ShardCrashError as error:
                send_errors[shard] = error
                continue
            supervisor.track_send(shard, client.recv_deadline())
            fired.append(shard)
            if client.gather_connection() is None:
                ready_at[shard] = time.perf_counter()
        self._await_replies(fired, ready_at)
        for shard, message in sends:
            if shard in outcomes:  # DOWN before this dispatch started
                continue
            start = starts[shard]
            error = send_errors.get(shard)
            response = None
            if error is None:
                supervisor.settle_send(shard)
                try:
                    response = self.clients[shard].recv()
                except (ShardTimeoutError, ShardCrashError) as caught:
                    error = caught
            if error is None:
                supervisor.mark_up(shard)
                self._update_summary(shard, response)
                elapsed = ready_at.get(shard, time.perf_counter()) - start
                self.stats.shard_service_seconds += elapsed
                outcomes[shard] = _DispatchOutcome(
                    response=response, elapsed=elapsed
                )
                continue
            try:
                response, elapsed = self._resolve_supervised(
                    shard, message, wires[shard], entries[shard], error, start
                )
            except ShardDownError as down:
                outcomes[shard] = _DispatchOutcome(faulted=True, down=down)
                continue
            outcomes[shard] = _DispatchOutcome(
                response=response, elapsed=elapsed, faulted=True
            )
        return outcomes

    def _flush_overlapped(self, shards: Sequence[int]) -> Dict[int, bool]:
        """Deliver the pending departure batches of the given shards in
        one overlapped dispatch; returns shard -> whether fault handling
        touched the flush.  A shard that went down with recovery
        deferred gets its events re-queued, exactly like the sequential
        :meth:`_flush_departures` path."""
        sends: List[Tuple[int, Dict]] = []
        staged: Dict[int, List[List]] = {}
        for shard in shards:
            events = self._outbox[shard]
            if not events:
                continue
            self._outbox[shard] = []
            staged[shard] = events
            sends.append((shard, {"op": "depart", "events": events}))
        if not sends:
            return {}
        outcomes = self._dispatch(sends)
        faulted: Dict[int, bool] = {}
        for shard, _ in sends:
            outcome = outcomes[shard]
            if outcome.down is not None:
                self._outbox[shard] = staged[shard] + self._outbox[shard]
                faulted[shard] = True
                continue
            self.stats.departure_batches += 1
            faulted[shard] = outcome.faulted
        return faulted

    # ------------------------------------------------------------------
    # Placement rounds
    # ------------------------------------------------------------------

    def _place_window(
        self, items: Sequence[Tuple[PlacementRequest, float]], op: str
    ) -> List[GradedDecision]:
        """Route one window of requests, batch per shard, retry rejects.

        ``items`` are (request, event time) pairs in arrival order;
        ``op`` is ``"arrive"`` (lifecycle) or ``"decide"`` (one-shot).
        Returns one graded decision per item, in order.
        """
        wall_start = time.perf_counter()
        self.stats.rounds += 1
        self.stats.routed += len(items)
        down = self._begin_round()
        debits = [0] * self.config.shards
        assigned: List[int] = []
        for request, _ in items:
            shard = self._route(request.vcpus, debits, down)
            assigned.append(shard)
            debits[shard] += self._min_debit(request.vcpus)

        groups: Dict[int, List[int]] = {}
        for position, shard in enumerate(assigned):
            groups.setdefault(shard, []).append(position)
        results: List[GradedDecision | None] = [None] * len(items)
        finalized: set = set()
        if self.config.overlap:
            self._dispatch_window(
                items, op, groups, results, assigned, finalized
            )
        else:
            self._dispatch_window_sequential(
                items, op, groups, results, assigned, finalized
            )

        finished: List[GradedDecision] = []
        for position, (request, event_time) in enumerate(items):
            entry = results[position]
            shard = assigned[position]
            if position not in finalized:
                entry, shard = self._retry_if_rejected(
                    entry, shard, request, event_time, op
                )
            self._owner[request.request_id] = shard
            self.stats.shard_requests[shard] += 1
            if entry.decision.placed:
                self.stats.shard_placed[shard] += 1
            self.graded.append(entry)
            finished.append(entry)
        self.stats.window_wall_seconds += time.perf_counter() - wall_start
        return finished

    def _dispatch_window_sequential(
        self,
        items: Sequence[Tuple[PlacementRequest, float]],
        op: str,
        groups: Dict[int, List[int]],
        results: List[GradedDecision | None],
        assigned: List[int],
        finalized: set,
    ) -> None:
        """The ``--no-overlap`` baseline: one blocking round trip per
        shard, in shard order (each send flushes that shard's pending
        departures first)."""
        for shard in sorted(groups):
            positions = groups[shard]
            message = self._window_message(
                op, [items[position] for position in positions]
            )
            faults_before = self.stats.crashes + self.stats.timeouts
            try:
                response, elapsed = self._send(shard, message)
            except ShardDownError:
                # The shard died mid-window with recovery deferred: fail
                # its slice over to surviving shards, one request at a
                # time, through the normal routing machinery.
                self.stats.failovers += len(positions)
                self.stats.degraded_arrivals += len(positions)
                for position in positions:
                    request, event_time = items[position]
                    results[position], assigned[position] = self._failover(
                        request, event_time, op
                    )
                    finalized.add(position)
                continue
            if self.stats.crashes + self.stats.timeouts != faults_before:
                # Placed correctly, but only through retries or an
                # inline respawn-and-replay: these arrivals rode through
                # a fault window.
                self.stats.degraded_arrivals += len(positions)
            per_request = elapsed / len(positions)
            for position, graded in zip(positions, response["graded"]):
                entry = self._from_wire(graded, shard)
                entry.decision_seconds = per_request
                results[position] = entry

    def _dispatch_window(
        self,
        items: Sequence[Tuple[PlacementRequest, float]],
        op: str,
        groups: Dict[int, List[int]],
        results: List[GradedDecision | None],
        assigned: List[int],
        finalized: set,
    ) -> None:
        """The overlapped round: flush the pending departures of every
        shard in this round's groups (one overlapped dispatch), then
        fire every shard's window message and gather.  Only shards that
        are about to receive a window message are flushed — flushing an
        idle shard would refresh its summary earlier than sequential
        dispatch does and break bit-for-bit routing equivalence."""
        shards = sorted(groups)
        self.stats.overlapped_rounds += 1
        flush_faulted = self._flush_overlapped(shards)
        sends = [
            (
                shard,
                self._window_message(
                    op, [items[position] for position in groups[shard]]
                ),
            )
            for shard in shards
        ]
        outcomes = self._dispatch(sends)
        for shard in shards:
            positions = groups[shard]
            outcome = outcomes[shard]
            if outcome.down is not None:
                self.stats.failovers += len(positions)
                self.stats.degraded_arrivals += len(positions)
                for position in positions:
                    request, event_time = items[position]
                    results[position], assigned[position] = self._failover(
                        request, event_time, op
                    )
                    finalized.add(position)
                continue
            if outcome.faulted or flush_faulted.get(shard, False):
                self.stats.degraded_arrivals += len(positions)
            per_request = outcome.elapsed / len(positions)
            for position, graded in zip(
                positions, outcome.response["graded"]
            ):
                entry = self._from_wire(graded, shard)
                entry.decision_seconds = per_request
                results[position] = entry

    def _begin_round(self) -> frozenset:
        """Recover shards whose deferred-recovery window has elapsed;
        returns the shards still DOWN (excluded from routing this
        round).  A degraded round is one that starts with any shard
        still DOWN."""
        if self.supervisor is None:
            return frozenset()
        for shard in sorted(self.supervisor.down_shards()):
            if self.supervisor.due_for_recovery(shard, self.stats.rounds):
                self._recover_shard(shard)
        down = self.supervisor.down_shards()
        if down:
            self.stats.degraded_windows += 1
        return down

    def _route(
        self, vcpus: int, debits: Sequence[int], exclude: frozenset
    ) -> int:
        """Best shard for a request, skipping DOWN shards; if *every*
        shard is DOWN, force-recover the lowest-numbered one — the
        service never refuses to route."""
        ranked = self._rank_shards(vcpus, debits, exclude=exclude)
        if ranked:
            return ranked[0]
        self._recover_shard(sorted(exclude)[0])
        return self._rank_shards(
            vcpus, debits, exclude=self._down_shards()
        )[0]

    def _window_message(
        self, op: str, items: Sequence[Tuple[PlacementRequest, float]]
    ) -> Dict:
        if op == "decide":
            return {
                "op": "decide",
                "requests": [request.to_dict() for request, _ in items],
            }
        return {
            "op": "arrive",
            "events": [
                [request.to_dict(), event_time]
                for request, event_time in items
            ],
        }

    # ------------------------------------------------------------------
    # Admission control (repro serve --admission)
    # ------------------------------------------------------------------

    def _shard_cannot_place(self, shard: int, vcpus: int) -> bool:
        """True only when shard ``shard`` is *guaranteed* to reject a
        ``vcpus`` request right now.

        The cached summary is exact at call time (single-threaded front
        end, every response refreshes it) *except* for this shard's
        pending outbox departures, which would free capacity — so a
        non-empty outbox disables the guarantee.  ``count == 0`` alone
        is still not sufficient while the rebalancer is enabled: its
        consolidation migrations move containers between same-shape
        hosts, so it can recover a reject whenever some shape's
        shard-wide free total covers the minimal block.  Placements
        only consume capacity and migrations preserve per-shape free
        totals, so once true the predicate stays true for the rest of
        the routing window.
        """
        if self._outbox[shard]:
            return False
        vector = self.summaries[shard].capacity
        if vector is None:
            return False
        count = vector.count(vcpus)
        if count is None or count > 0:
            return False
        if self.config.rebalance_enabled:
            for name, entry in self.summaries[shard].shapes.items():
                needed = self._needed_nodes(name, vcpus)
                if needed is not None and entry["free_nodes"] >= needed:
                    return False
        return True

    def _fleet_saturated(self, vcpus: int) -> bool:
        """Every live shard provably rejects ``vcpus`` right now — the
        admission controller's saturation gate.  Never true with zero
        live shards (routing force-recovers; the front end does not
        screen blind)."""
        down = self._down_shards()
        live = [
            shard
            for shard in range(self.config.shards)
            if shard not in down
        ]
        if not live:
            return False
        return all(
            self._shard_cannot_place(shard, vcpus) for shard in live
        )

    def _capacity_fraction(self) -> float | None:
        """Live capacity as a fraction of the empty fleet's, minimized
        over tracked classes — the brown-out watermark signal.  DOWN
        shards contribute nothing (their capacity is unreachable)."""
        if not self._initial_capacity_total:
            return None
        down = self._down_shards()
        fractions: List[float] = []
        for vcpus, total in self._initial_capacity_total.items():
            if total <= 0:
                continue
            live = 0
            for summary in self.summaries:
                if summary.shard_id in down or summary.capacity is None:
                    continue
                count = summary.capacity.count(vcpus)
                if count is not None:
                    live += count
            fractions.append(live / total)
        if not fractions:
            return None
        return min(fractions)

    def _admission_entry(
        self, request: PlacementRequest, reason: str
    ) -> GradedDecision:
        """A front-end reject: same shape as a shard-side reject, with a
        typed ``admission:`` reason and zero decision cost (no round
        trip was spent)."""
        return GradedDecision(
            decision=FleetDecision(request, reject_reason=reason)
        )

    def _emit_sheds(self, sheds) -> None:
        for request, _, reason in sheds:
            self.graded.append(self._admission_entry(request, reason))

    def _screen_arrival(
        self, request: PlacementRequest, event_time: float
    ) -> List[Tuple[PlacementRequest, float]]:
        """Run one arrival through the admission controller.

        Returns the (request, time) items to feed the routing window —
        holds drained by a brown-out exit first (they arrived earlier),
        then the arrival itself when admitted.  Rejects and sheds are
        appended to ``self.graded`` here; held arrivals produce nothing
        until they drain, expire, or the stream ends.
        """
        controller = self.admission
        admitted: List[Tuple[PlacementRequest, float]] = []
        transition = controller.observe(
            len(self._down_shards()), self._capacity_fraction()
        )
        if transition == "exited":
            admitted.extend(controller.drain())
        if controller.shed_policy == "deadline":
            self._emit_sheds(controller.expire(event_time))
        decision, sheds = controller.screen(
            request,
            event_time,
            saturated=self._fleet_saturated(request.vcpus),
        )
        self._emit_sheds(sheds)
        if decision.outcome == "admit":
            admitted.append((request, event_time))
        elif decision.outcome == "reject":
            self.graded.append(
                self._admission_entry(request, decision.reason)
            )
        return admitted

    def _retry_if_rejected(
        self,
        entry: GradedDecision,
        shard: int,
        request: PlacementRequest,
        event_time: float,
        op: str,
    ) -> Tuple[GradedDecision, int]:
        """The optimistic-concurrency arm: a rejected request is retried
        on the next-best untried shard until placed or exhausted.  The
        final decision's reject reason is ``capacity`` if *any* shard
        rejected for capacity (the fleet-wide truth a monolithic
        scheduler would have reported)."""
        if entry.decision.placed:
            return entry, shard
        tried = {shard}
        saw_capacity = entry.decision.reject_reason == "capacity"
        accumulated = entry.decision_seconds
        while not entry.decision.placed:
            ranked = self._rank_shards(
                request.vcpus,
                [0] * self.config.shards,
                exclude=frozenset(tried) | self._down_shards(),
            )
            if not ranked:
                break  # every live shard has had a look
            next_shard = ranked[0]
            if (
                self.admission is not None
                and saw_capacity
                and self._shard_cannot_place(next_shard, request.vcpus)
            ):
                # The summary proves this fan-out would come back as the
                # same capacity reject (and with ``saw_capacity`` already
                # set, the final reject reason cannot change either) —
                # skip the round trip but keep the bookkeeping identical:
                # the shard still counts as tried and still becomes the
                # owner of record if it is the last one ranked.
                self.stats.retries_short_circuited += 1
                tried.add(next_shard)
                shard = next_shard
                continue
            self.stats.retries += 1
            message = self._window_message(op, [(request, event_time)])
            try:
                response, elapsed = self._send(next_shard, message)
            except ShardDownError:
                # The retry target died mid-retry: skip it and keep
                # looking at the remaining live shards.
                self.stats.degraded_arrivals += 1
                tried.add(next_shard)
                continue
            accumulated += elapsed
            entry = self._from_wire(response["graded"][0], next_shard)
            entry.decision_seconds = accumulated
            shard = next_shard
            tried.add(next_shard)
            if entry.decision.placed:
                self.stats.recovered_by_retry += 1
                return entry, shard
            saw_capacity = saw_capacity or (
                entry.decision.reject_reason == "capacity"
            )
        self.stats.exhausted += 1
        if saw_capacity:
            entry.decision.reject_reason = "capacity"
        return entry, shard

    def _failover(
        self,
        request: PlacementRequest,
        event_time: float,
        op: str,
    ) -> Tuple[GradedDecision, int]:
        """Place one arrival whose routed shard went down mid-window:
        re-route to the best surviving shard (force-recovering one if
        every shard is down) and run the normal reject-retry arm from
        there.  Terminates because every loop iteration either returns,
        downs a shard (finite), or recovers one — and fault actions fire
        at most once, so a recovered shard cannot crash-loop."""
        while True:
            exclude = self._down_shards()
            ranked = self._rank_shards(
                request.vcpus,
                [0] * self.config.shards,
                exclude=exclude,
            )
            if not ranked:
                self._recover_shard(sorted(exclude)[0])
                continue
            shard = ranked[0]
            message = self._window_message(op, [(request, event_time)])
            try:
                response, elapsed = self._send(shard, message)
            except ShardDownError:
                continue  # that one died too; re-rank the survivors
            entry = self._from_wire(response["graded"][0], shard)
            entry.decision_seconds = elapsed
            return self._retry_if_rejected(
                entry, shard, request, event_time, op
            )

    # ------------------------------------------------------------------
    # Drivers
    # ------------------------------------------------------------------

    def serve(
        self,
        requests: Sequence[PlacementRequest] | None = None,
        *,
        max_events: int | None = None,
    ) -> FleetReport:
        """Ingest a churn event stream and return the merged report.

        Arrivals are buffered into windows of ``config.window``
        consecutive arrivals.  Departures never cost a round trip of
        their own: each is deferred into its owning shard's outbox and
        delivered (as one batched ``depart`` message) right before that
        shard's next message, so every shard still sees its own events
        in stream order.  A departure falling *inside* a buffered
        window is held until the window flushes — window semantics
        already trade strict time order within the window for batching,
        and with ``window=1`` the buffer is empty when every departure
        arrives, which keeps the single-shard reference stream
        bit-identical to the monolithic engine.  ``max_events`` bounds
        ingestion for smoke runs.
        """
        if requests is None:
            requests = self.config.build_stream()
        requests = list(requests)
        if max_events is None:
            max_events = self.config.max_events
        start = time.perf_counter()
        pending: List[Tuple[PlacementRequest, float]] = []
        held: List[Tuple[int, float]] = []
        ingested = 0
        arrivals = 0
        controller = self.admission
        for event in events_from_requests(requests).drain():
            if max_events is not None and ingested >= max_events:
                break
            ingested += 1
            if event.kind is EventKind.ARRIVAL:
                arrivals += 1
                if controller is None:
                    admitted = [(event.request, event.time)]
                else:
                    admitted = self._screen_arrival(
                        event.request, event.time
                    )
                for item in admitted:
                    pending.append(item)
                    if len(pending) >= self.config.window:
                        self._place_window(pending, "arrive")
                        pending = []
                        self._defer_departures(held)
                        held = []
            elif controller is not None and controller.is_held(
                event.request.request_id
            ):
                # The departing request is still waiting in the
                # brown-out queue: it leaves before it was ever placed,
                # so cancel the hold instead of routing a departure.
                shed = controller.cancel(event.request.request_id)
                if shed is not None:
                    self._emit_sheds([shed])
            elif pending:
                # Owner may be in the buffered window; resolve at flush.
                held.append((event.request.request_id, event.time))
            else:
                self._defer_departures(
                    [(event.request.request_id, event.time)]
                )
        if controller is not None:
            # Holds outliving the stream never exit brown-out: shed them.
            self._emit_sheds(controller.flush())
        if pending:
            self._place_window(pending, "arrive")
        self._defer_departures(held)
        if self.config.overlap:
            self._flush_overlapped(range(self.config.shards))
        else:
            for shard in range(self.config.shards):
                self._flush_departures(shard)
        elapsed = time.perf_counter() - start
        return self._merge_report(arrivals, elapsed, churn=True)

    def run(
        self, requests: Sequence[PlacementRequest] | None = None
    ) -> FleetReport:
        """One-shot mode: place a whole request stream batch by batch
        (the service-shaped :class:`~repro.scheduler.scheduler.FleetScheduler`)."""
        if requests is None:
            requests = self.config.build_stream()
        requests = list(requests)
        start = time.perf_counter()
        batch_size = self.config.effective_batch_size
        for begin in range(0, len(requests), batch_size):
            batch = requests[begin : begin + batch_size]
            items = [
                (request, request.arrival_time) for request in batch
            ]
            if self.admission is not None:
                # One-shot mode has no health/churn clock, so only the
                # feasibility and saturation gates apply (brown-out
                # never engages and nothing is ever held).
                kept: List[Tuple[PlacementRequest, float]] = []
                for request, event_time in items:
                    decision, _ = self.admission.screen(
                        request,
                        event_time,
                        saturated=self._fleet_saturated(request.vcpus),
                    )
                    if decision.outcome == "reject":
                        self.graded.append(
                            self._admission_entry(request, decision.reason)
                        )
                    else:
                        kept.append((request, event_time))
                items = kept
            if items:
                self._place_window(items, "decide")
        elapsed = time.perf_counter() - start
        return self._merge_report(len(requests), elapsed, churn=False)

    def _defer_departures(
        self, pairs: Sequence[Tuple[int, float]]
    ) -> None:
        """Queue departures on their owning shards' outboxes."""
        for request_id, event_time in pairs:
            shard = self._owner.get(request_id)
            if shard is None:
                # Departure of a request whose arrival was never ingested
                # (max_events cut the stream mid-pair): nothing to free.
                continue
            self.stats.departures_routed += 1
            self._outbox[shard].append([request_id, event_time])

    # ------------------------------------------------------------------
    # Report merging
    # ------------------------------------------------------------------

    def _merge_report(
        self, n_requests: int, elapsed_seconds: float, *, churn: bool
    ) -> FleetReport:
        # Every shard must answer a report: bring DOWN shards back first
        # (their outboxes then flush through the report sends below).
        self._recover_all()
        reports = []
        if self.config.overlap:
            shards = range(self.config.shards)
            self._flush_overlapped(shards)
            outcomes = self._dispatch(
                [(shard, {"op": "report"}) for shard in shards]
            )
            for shard in shards:
                outcome = outcomes[shard]
                if outcome.down is not None:
                    # Unreachable after _recover_all (reports are
                    # read-only, so even a fresh fault recovers
                    # immediately), but propagate like the sequential
                    # path would rather than merge a partial report.
                    raise outcome.down
                reports.append(outcome.response["report"])
        else:
            for shard in range(self.config.shards):
                response, _ = self._send(shard, {"op": "report"})
                reports.append(response["report"])

        def merged_cache(key: str) -> CacheInfo | None:
            infos = [
                CacheInfo.from_dict(r[key])
                for r in reports
                if r[key] is not None
            ]
            if not infos:
                return None
            total = infos[0]
            for info in infos[1:]:
                total = total + info
            return total

        used = sum(s.used_threads for s in self.summaries)
        total = sum(s.total_threads for s in self.summaries)
        free = sum(s.free_nodes_total for s in self.summaries)
        nodes = sum(s.total_nodes for s in self.summaries)
        if self.stats.transport == "inline":
            # Arena and block-score accounting is process-wide: every
            # inline worker reports the same counters, so read them once
            # instead of summing n identical snapshots.
            from repro.core.blockscores import DEFAULT_BLOCK_SCORE_CACHE
            from repro.ml.arena import ARENA_STATS

            arena_forests = ARENA_STATS.forests_compiled
            arena_fused_calls = ARENA_STATS.fused_calls
            arena_lanes = ARENA_STATS.lanes_evaluated
            blockscore = DEFAULT_BLOCK_SCORE_CACHE.info()
        else:
            arena_forests = sum(r["arena_forests"] for r in reports)
            arena_fused_calls = sum(r["arena_fused_calls"] for r in reports)
            arena_lanes = sum(r["arena_lanes"] for r in reports)
            blockscore = merged_cache("blockscore_cache_info")

        merged_churn = None
        if churn:
            merged_churn = merge_churn_stats(
                [
                    self._localized_churn(r["churn"], shard)
                    for shard, r in enumerate(reports)
                ],
                arrivals=n_requests,
                initial=[
                    FragmentationSample(
                        time=0.0,
                        free_nodes_total=sum(
                            m.n_nodes for m in machines
                        ),
                        largest_free_block=max(
                            (m.n_nodes for m in machines), default=0
                        ),
                        active_containers=0,
                        fit_failures=0,
                    )
                    for machines in self._shard_machines
                ],
            )

        return FleetReport(
            policy=self.config.policy,
            n_hosts=self.config.hosts,
            n_requests=n_requests,
            decisions=self.graded,
            elapsed_seconds=elapsed_seconds,
            thread_utilization=(used / total) if total else 0.0,
            node_utilization=(1.0 - free / nodes) if nodes else 0.0,
            busiest_host_utilization=max(
                r["busiest_host_utilization"] for r in reports
            ),
            cache_info=merged_cache("cache_info"),
            enumeration_runs=sum(r["enumeration_runs"] for r in reports),
            predict_calls=sum(r["predict_calls"] for r in reports),
            predicted_rows=sum(r["predicted_rows"] for r in reports),
            ipc_cache_info=merged_cache("ipc_cache_info"),
            arena_forests=arena_forests,
            arena_fused_calls=arena_fused_calls,
            arena_lanes=arena_lanes,
            blockscore_cache_info=blockscore,
            indexed=self.config.indexed,
            churn=merged_churn,
            service=self.stats,
        )

    def _localized_churn(self, data: Dict, shard: int) -> ChurnStats:
        """Rebuild one shard's churn stats with migration host ids
        translated to global fleet ids."""
        stats = ChurnStats.from_dict(data)
        n = self.config.shards
        stats.migrations = [
            MigrationRecord(
                time=m.time,
                request_id=m.request_id,
                workload=m.workload,
                source_host=m.source_host * n + shard,
                dest_host=m.dest_host * n + shard,
                engine=m.engine,
                seconds=m.seconds,
                moved_gb=m.moved_gb,
                triggered_by=m.triggered_by,
            )
            for m in stats.migrations
        ]
        return stats
