"""Incremental fleet indexes: sub-linear host selection at fleet scale.

Every placement decision used to scan the whole fleet — ``for host in
fleet.hosts`` per request — and every fleet aggregate (free nodes, used
threads, largest free block) was a full-fleet sum per query, which the
lifecycle engine pays after *every* event for its fragmentation timeline.
Both costs are linear in fleet size even though almost nothing changes
between events: one allocation touches one host.

:class:`FleetIndex` makes the mutation pay for the bookkeeping instead of
the queries.  It buckets hosts by ``(machine fingerprint, largest free
block)`` — for whole-node placements a host's largest grantable block *is*
its free-node count — and keeps O(1) running counters for the fleet
aggregates.  :meth:`FleetHost.allocate <repro.scheduler.fleet.FleetHost.allocate>`
and :meth:`~repro.scheduler.fleet.FleetHost.release` notify the index on
every state change (the rebalancer's migrations go through the same two
methods, so they are covered for free), and the placement policies query
buckets instead of scanning:

* *which hosts could fit an n-node block?* — the union of a shape's
  buckets with free count >= n, skipping full and too-fragmented hosts
  entirely;
* *which distinct shapes exist?* — an O(#shapes) dict, not an O(#hosts)
  scan;
* *fleet free-node total / used threads / largest free block?* — counter
  reads, making the lifecycle fragmentation sample O(1) per event.

The index is an accelerator, not an oracle: policies constructed with
``indexed=False`` take the original linear-scan path, and
``tests/scheduler/test_index.py`` asserts both that every counter matches
a from-scratch recomputation under randomized churn and that indexed and
linear scans make bit-for-bit identical decisions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Set, Tuple

from repro.topology.machine import MachineTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.core.placements import Placement
    from repro.scheduler.fleet import FleetHost


class FleetIndex:
    """Bucketed host index plus O(1) fleet aggregate counters.

    Maintained incrementally by the hosts it is registered with; queried
    by the placement policies and the lifecycle engine.  All mutation goes
    through :meth:`register`, :meth:`on_allocate`, and :meth:`on_release`.
    """

    def __init__(self) -> None:
        #: fingerprint -> machine, in first-registration (= host id) order.
        self._machines: Dict[Tuple, MachineTopology] = {}
        #: fingerprint -> all host ids of that shape.
        self._host_ids: Dict[Tuple, Set[int]] = {}
        #: fingerprint -> free-node count -> host ids (the buckets).
        self._buckets: Dict[Tuple, Dict[int, Set[int]]] = {}
        #: host id -> current free-node count (the index's own view, so a
        #: resize never trusts the caller for the *old* bucket).
        self._free_of: Dict[int, int] = {}
        #: free-node count -> number of hosts, across all shapes.
        self._size_count: Dict[int, int] = {}
        self._max_free = 0
        #: Attached available-space tracker (``scheduler/capacity.py``),
        #: notified of every registration and free-count transition so
        #: admission-mode capacity vectors ride the same hooks as the
        #: counters.  Duck-typed to avoid an import cycle.
        self._capacity = None

        # O(1) aggregate counters.
        self.free_nodes_total = 0
        self.total_nodes = 0
        self.used_threads = 0
        self.total_threads = 0
        #: Cumulative capacity rejections (after any rebalance retry),
        #: recorded by the lifecycle engine via :meth:`record_fit_failure`.
        self.fit_failures = 0

    # ------------------------------------------------------------------
    # Mutation (driven by FleetHost bookkeeping)
    # ------------------------------------------------------------------

    def register(self, host: "FleetHost") -> None:
        """Add a host with its *current* state to the index."""
        if host.host_id in self._free_of:
            raise ValueError(f"host {host.host_id} is already indexed")
        machine = host.machine
        fingerprint = machine.fingerprint()
        self._machines.setdefault(fingerprint, machine)
        self._host_ids.setdefault(fingerprint, set()).add(host.host_id)
        free = host.n_free_nodes
        self._buckets.setdefault(fingerprint, {}).setdefault(
            free, set()
        ).add(host.host_id)
        self._free_of[host.host_id] = free
        self._size_count[free] = self._size_count.get(free, 0) + 1
        self._max_free = max(self._max_free, free)
        self.free_nodes_total += free
        self.total_nodes += machine.n_nodes
        self.used_threads += host.used_threads
        self.total_threads += machine.total_threads
        if self._capacity is not None:
            self._capacity.on_register(host)

    def attach_capacity(self, tracker) -> None:
        """Forward free-count transitions to an available-space tracker."""
        self._capacity = tracker

    def on_allocate(self, host: "FleetHost", placement: "Placement") -> None:
        """A host claimed a placement's nodes (called after the mutation)."""
        self._resize(host)
        self.used_threads += placement.vcpus

    def on_release(self, host: "FleetHost", placement: "Placement") -> None:
        """A host freed a placement's nodes (called after the mutation)."""
        self._resize(host)
        self.used_threads -= placement.vcpus

    def record_fit_failure(self) -> None:
        self.fit_failures += 1

    def _resize(self, host: "FleetHost") -> None:
        """Move a host to the bucket matching its current free count."""
        host_id = host.host_id
        old = self._free_of[host_id]
        new = host.n_free_nodes
        if new == old:
            return
        fingerprint = host.machine.fingerprint()
        buckets = self._buckets[fingerprint]
        bucket = buckets[old]
        bucket.discard(host_id)
        if not bucket:
            del buckets[old]
        buckets.setdefault(new, set()).add(host_id)
        self._free_of[host_id] = new
        self.free_nodes_total += new - old

        count = self._size_count[old] - 1
        if count:
            self._size_count[old] = count
        else:
            del self._size_count[old]
        self._size_count[new] = self._size_count.get(new, 0) + 1
        if new > self._max_free:
            self._max_free = new
        elif old == self._max_free and old not in self._size_count:
            while self._max_free > 0 and self._max_free not in self._size_count:
                self._max_free -= 1
        if self._capacity is not None:
            self._capacity.on_resize(host.machine, old, new)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def largest_free_block(self) -> int:
        """Largest node block any indexed host can still grant (0 when no
        hosts are indexed)."""
        return self._max_free

    def machines(self) -> Iterable[Tuple[Tuple, MachineTopology]]:
        """(fingerprint, machine) per distinct shape, first-seen order —
        the same order ``Fleet.shapes`` derives from a full host scan."""
        return self._machines.items()

    def shapes(self) -> List[MachineTopology]:
        return list(self._machines.values())

    def host_ids(self, fingerprint: Tuple) -> Set[int]:
        """All host ids of one shape (empty set for unknown shapes)."""
        return self._host_ids.get(fingerprint, set())

    def buckets(self, fingerprint: Tuple) -> Dict[int, Set[int]]:
        """free-node count -> host ids for one shape.  Treat as read-only."""
        return self._buckets.get(fingerprint, {})

    def candidates(self, fingerprint: Tuple, min_free: int) -> List[int]:
        """Host ids of one shape with at least ``min_free`` free nodes
        (unordered; full and too-fragmented hosts are never visited)."""
        found: List[int] = []
        for size, ids in self._buckets.get(fingerprint, {}).items():
            if size >= min_free:
                found.extend(ids)
        return found

    # ------------------------------------------------------------------
    # Debugging / test support
    # ------------------------------------------------------------------

    def assert_consistent(self, hosts: Iterable["FleetHost"]) -> None:
        """Cross-check every counter and bucket against a from-scratch
        recomputation; raises AssertionError on any drift.  Used by the
        randomized replay tests and the benchmark smoke job."""
        hosts = list(hosts)
        free_total = sum(h.n_free_nodes for h in hosts)
        assert self.free_nodes_total == free_total, (
            f"free_nodes_total {self.free_nodes_total} != {free_total}"
        )
        used = sum(h.used_threads for h in hosts)
        assert self.used_threads == used, (
            f"used_threads {self.used_threads} != {used}"
        )
        largest = max((h.largest_free_block for h in hosts), default=0)
        assert self._max_free == largest, (
            f"largest_free_block {self._max_free} != {largest}"
        )
        assert self.total_nodes == sum(h.machine.n_nodes for h in hosts)
        assert self.total_threads == sum(
            h.machine.total_threads for h in hosts
        )
        for host in hosts:
            fingerprint = host.machine.fingerprint()
            assert self._free_of.get(host.host_id) == host.n_free_nodes
            assert host.host_id in self._buckets.get(fingerprint, {}).get(
                host.n_free_nodes, set()
            ), f"host {host.host_id} not in its ({host.n_free_nodes}) bucket"
        indexed = {
            host_id
            for buckets in self._buckets.values()
            for ids in buckets.values()
            for host_id in ids
        }
        assert indexed == {h.host_id for h in hosts}, (
            "index tracks a different host set than the fleet"
        )
        sizes: Dict[int, int] = {}
        for host in hosts:
            sizes[host.n_free_nodes] = sizes.get(host.n_free_nodes, 0) + 1
        assert self._size_count == sizes, (
            f"size counts {self._size_count} != {sizes}"
        )
        if self._capacity is not None:
            self._capacity.assert_consistent(hosts)
