"""Deterministic fault injection for the sharded scheduler service.

A :class:`FaultPlan` is a seeded, JSON-serializable schedule of failures
— *crash shard s at its Nth message*, *delay message N by M ms*, *drop
the reply to message N*, *wedge forever from message N* — that wraps
either transport as a :class:`FaultInjectingClient`.  Faults fire on the
client (front-end) side of the pipe, exactly where real failures are
observed, so the same plan reproduces the same failure sequence on the
inline and the process transport alike.

Determinism contract:

* Message indices count the requests a shard's client actually issues —
  retries and journal replays included — so a plan is a pure function of
  the service's own traffic.
* Each :class:`FaultAction` fires **at most once**.  The fired set lives
  on the per-shard :class:`ShardFaultSchedule`, which survives the
  respawn of the client it wraps; a crash-at-every-message sweep
  therefore always converges — the replay after a crash cannot re-crash
  on the same action.
* Plan generators draw from ``random.Random(seed)`` only, so a plan is
  reproducible from ``(n_shards, seed)`` and round-trips through JSON
  (``to_dict`` / ``from_dict``) for benchmark provenance.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List

from repro.scheduler.shard import ShardCrashError, ShardTimeoutError

#: The supported failure modes.
FAULT_KINDS = ("crash", "delay", "drop", "wedge")


@dataclass(frozen=True)
class FaultAction:
    """One injected failure: shard ``shard``, at its ``at_message``-th
    request (0-based, counted across respawns), do ``kind``."""

    shard: int
    at_message: int
    kind: str
    delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")
        if self.at_message < 0:
            raise ValueError(
                f"at_message must be >= 0, got {self.at_message}"
            )
        if self.delay_ms < 0:
            raise ValueError(f"delay_ms must be >= 0, got {self.delay_ms}")

    def to_dict(self) -> Dict:
        return {
            "shard": self.shard,
            "at_message": self.at_message,
            "kind": self.kind,
            "delay_ms": self.delay_ms,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultAction":
        return cls(**data)


class ShardFaultSchedule:
    """One shard's live view of a plan: a message counter plus the
    actions still pending.  Deliberately *not* reset on respawn — the
    counter keeps running and fired actions stay fired, which is what
    makes fault handling convergent (see the module docstring)."""

    def __init__(self, shard_id: int, actions: List[FaultAction]) -> None:
        self.shard_id = shard_id
        self.messages_seen = 0
        self.fired: List[FaultAction] = []
        self._pending: Dict[int, List[FaultAction]] = {}
        for action in actions:
            self._pending.setdefault(action.at_message, []).append(action)

    def next_action(self) -> FaultAction | None:
        """Advance the message counter; return the action due at this
        index (at most one — extras queue for later indices), if any."""
        index = self.messages_seen
        self.messages_seen += 1
        queue = self._pending.get(index)
        if not queue:
            return None
        action = queue.pop(0)
        if queue:
            # More than one action at the same index: shift the rest to
            # the next index so none is silently lost.
            self._pending.setdefault(index + 1, []).extend(queue)
            del self._pending[index]
        self.fired.append(action)
        return action


@dataclass
class FaultPlan:
    """A reproducible schedule of :class:`FaultAction`\\ s plus the seed
    that generated it (kept for provenance in benchmark payloads)."""

    actions: List[FaultAction] = field(default_factory=list)
    seed: int = 0

    def to_dict(self) -> Dict:
        return {
            "actions": [action.to_dict() for action in self.actions],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        return cls(
            actions=[
                FaultAction.from_dict(entry) for entry in data["actions"]
            ],
            seed=data["seed"],
        )

    def bind(self, shard_id: int) -> ShardFaultSchedule:
        """The mutable per-shard schedule a client consumes.  Bind once
        per shard per service — rebinding would re-arm fired actions."""
        return ShardFaultSchedule(
            shard_id,
            [action for action in self.actions if action.shard == shard_id],
        )

    @classmethod
    def crash_at(cls, shard: int, at_message: int) -> "FaultPlan":
        """Single-crash convenience used all over the sweep tests."""
        return cls(actions=[FaultAction(shard, at_message, "crash")])

    @classmethod
    def kill_each_shard_once(
        cls, n_shards: int, *, seed: int = 0, span: int = 8
    ) -> "FaultPlan":
        """Crash every shard exactly once, each at a seeded message index
        in ``[0, span)`` — the reference kill schedule of the chaos
        benchmark and the acceptance gate."""
        rng = random.Random(seed)
        actions = [
            FaultAction(shard, rng.randrange(span), "crash")
            for shard in range(n_shards)
        ]
        return cls(actions=actions, seed=seed)

    @classmethod
    def storm(
        cls,
        n_shards: int,
        *,
        seed: int = 0,
        n_faults: int = 8,
        span: int = 32,
        delay_ms: float = 2.0,
    ) -> "FaultPlan":
        """A seeded mixed-mode schedule (crashes, drops, delays, wedges)
        for soak-style chaos runs."""
        rng = random.Random(seed)
        actions = []
        for _ in range(n_faults):
            kind = FAULT_KINDS[rng.randrange(len(FAULT_KINDS))]
            actions.append(
                FaultAction(
                    shard=rng.randrange(n_shards),
                    at_message=rng.randrange(span),
                    kind=kind,
                    delay_ms=delay_ms if kind == "delay" else 0.0,
                )
            )
        return cls(actions=actions, seed=seed)


class FaultInjectingClient:
    """Wrap a shard client (either transport) with a fault schedule.

    Fault semantics, chosen to mirror what each failure looks like from
    the front-end:

    ``crash``
        The inner worker is killed (its state is gone) and
        :class:`ShardCrashError` is raised — the message was **not**
        applied.  The crashed state latches for this client incarnation;
        recovery must respawn the client.
    ``wedge``
        :class:`ShardTimeoutError` on this and every later request, and
        nothing is applied.  The worker process (if any) is still alive
        until the supervisor kills it at mark-down.
    ``drop``
        The message **is** delivered and applied, but the reply is lost:
        :class:`ShardTimeoutError` after the fact.  A supervised retry
        resends the same sequence number and is answered from the
        worker's dedup cache.
    ``delay``
        Sleep ``delay_ms`` and then deliver normally.
    """

    def __init__(self, inner, schedule: ShardFaultSchedule) -> None:
        self.inner = inner
        self.schedule = schedule
        self.shard_id = inner.shard_id
        self.transport = inner.transport
        #: Latched terminal state of this incarnation ("crash"/"wedge").
        #: Cleared only by respawning the client; latched failures do not
        #: consume message indices, so retries stay deterministic.
        self._latched: str | None = None
        #: Outcomes of split-protocol sends, oldest first, consumed by
        #: recv(): ("ok" | "drop" | "wedge", fired message index | None).
        self._outcomes: List[tuple] = []

    def request(self, message: Dict, timeout_s: float | None = None) -> Dict:
        if self._latched == "crash":
            raise ShardCrashError(self.shard_id, "crashed by fault plan")
        if self._latched == "wedge":
            raise ShardTimeoutError(self.shard_id, "wedged by fault plan")
        action = self.schedule.next_action()
        if action is not None:
            index = self.schedule.messages_seen - 1
            if action.kind == "crash":
                self._latched = "crash"
                self.inner.kill()
                raise ShardCrashError(
                    self.shard_id, f"injected crash at message #{index}"
                )
            if action.kind == "wedge":
                self._latched = "wedge"
                raise ShardTimeoutError(
                    self.shard_id, f"injected wedge at message #{index}"
                )
            if action.kind == "drop":
                self.inner.request(message, timeout_s)
                raise ShardTimeoutError(
                    self.shard_id,
                    f"injected dropped reply at message #{index}",
                )
            time.sleep(action.delay_ms / 1000.0)
        return self.inner.request(message, timeout_s)

    # -- split protocol (overlapped dispatch) ---------------------------
    #
    # The same fault semantics, decomposed so the front-end can keep
    # several shards' messages in flight at once: a crash fires at
    # ``send`` (the pipe is dead before anything else happens), while a
    # wedge or dropped reply surfaces at ``recv`` — exactly where a real
    # lost reply is observed.  Outcomes queue FIFO per send, so the
    # pairing stays deterministic however dispatch is interleaved.

    def send(self, message: Dict, timeout_s: float | None = None) -> None:
        if self._latched == "crash":
            raise ShardCrashError(self.shard_id, "crashed by fault plan")
        if self._latched == "wedge":
            # Nothing is delivered; recv() reports the timeout.
            self._outcomes.append(("wedge", None))
            return
        action = self.schedule.next_action()
        if action is not None:
            index = self.schedule.messages_seen - 1
            if action.kind == "crash":
                self._latched = "crash"
                self.inner.kill()
                raise ShardCrashError(
                    self.shard_id, f"injected crash at message #{index}"
                )
            if action.kind == "wedge":
                self._latched = "wedge"
                self._outcomes.append(("wedge", index))
                return
            if action.kind == "drop":
                self.inner.send(message, timeout_s)
                self._outcomes.append(("drop", index))
                return
            time.sleep(action.delay_ms / 1000.0)
        self.inner.send(message, timeout_s)
        self._outcomes.append(("ok", None))

    def recv(self, timeout_s: float | None = None) -> Dict:
        if not self._outcomes:
            return self.inner.recv(timeout_s)
        kind, index = self._outcomes.pop(0)
        if kind == "wedge":
            raise ShardTimeoutError(
                self.shard_id,
                "wedged by fault plan"
                if index is None
                else f"injected wedge at message #{index}",
            )
        if kind == "drop":
            # The message was applied, but its reply is lost in transit.
            self.inner.recv(timeout_s)
            raise ShardTimeoutError(
                self.shard_id,
                f"injected dropped reply at message #{index}",
            )
        return self.inner.recv(timeout_s)

    def request_many(
        self,
        messages,
        timeout_s: float | None = None,
        on_response=None,
    ) -> List[Dict]:
        """Sequential on purpose: fault actions fire by message index,
        and pipelining would decouple the index from the delivery."""
        responses = []
        for message in messages:
            response = self.request(message, timeout_s)
            if on_response is not None:
                on_response(response)
            responses.append(response)
        return responses

    # -- gather surface -------------------------------------------------

    def reply_ready(self) -> bool:
        if self._outcomes and self._outcomes[0][0] == "wedge":
            return True  # the reply will never arrive; recv() raises now
        return self.inner.reply_ready()

    def gather_connection(self):
        if self._outcomes and self._outcomes[0][0] == "wedge":
            return None
        return self.inner.gather_connection()

    def recv_deadline(self) -> float | None:
        if self._outcomes and self._outcomes[0][0] == "wedge":
            return None
        return self.inner.recv_deadline()

    def kill(self) -> None:
        self._outcomes = []
        self.inner.kill()

    def close(self) -> None:
        self.inner.close()


__all__ = [
    "FAULT_KINDS",
    "FaultAction",
    "FaultInjectingClient",
    "FaultPlan",
    "ShardFaultSchedule",
]
