"""Dynamic fleet lifecycle walkthrough: churn, fragmentation, rebalancing.

The one-shot scheduler (examples/fleet_scheduling.py) only sees arrivals.
This example runs the event-driven lifecycle engine on a churning stream —
Poisson arrivals, heavy-tailed lifetimes, real departures — and shows the
problem that regime creates: free capacity *fragments*.  Mostly-1-node
containers scatter across hosts, each host keeps a couple of free nodes,
and the occasional 4-node container is rejected even though the fleet as a
whole has dozens of free nodes.

The rebalancer closes that gap.  On a fragmentation reject it consolidates
the host closest to fitting: the cheapest-to-move containers (migration
cost is proportional to memory footprint — the paper's Section 7 guidance,
priced through ``repro.migration.MigrationPlanner``) are migrated to other
hosts, but only when the whole plan's migration time beats the configured
rejection penalty.  The same stream is run with and without the rebalancer
so the recovered rejects are visible side by side.

Run:  python examples/fleet_churn.py
"""

from repro.scheduler import (
    Fleet,
    LifecycleScheduler,
    RebalanceConfig,
    SpreadFleetPolicy,
    generate_churn_stream,
)
from repro.topology import amd_opteron_6272


def main() -> None:
    # Mostly 1-node (8 vCPU) containers with occasional 4-node (32 vCPU)
    # ones: the small ones fragment the fleet, the big ones expose it.
    requests = generate_churn_stream(
        300,
        seed=11,
        arrival_rate=1.0,
        mean_lifetime=30.0,
        heavy_tail=True,
        vcpus_choices=(8, 8, 8, 32),
        goal_choices=(None, 0.9, 1.0),
    )
    lifetimes = [r.lifetime for r in requests if r.lifetime is not None]
    print(
        f"stream: {len(requests)} requests over "
        f"{requests[-1].arrival_time:.0f} simulated seconds, "
        f"lifetimes {min(lifetimes):.1f}s .. {max(lifetimes):.1f}s"
    )
    print()

    for label, config in (
        ("no rebalancing (baseline)", RebalanceConfig(enabled=False)),
        ("migration-driven rebalancing", RebalanceConfig(enabled=True)),
    ):
        engine = LifecycleScheduler(
            Fleet.homogeneous(amd_opteron_6272(), 8),
            SpreadFleetPolicy(),  # spreads load — and fragments fastest
            config=config,
        )
        report = engine.run(requests)
        print(f"--- {label} ---")
        print(report.describe())
        for record in report.churn.migrations[:3]:
            print(f"    {record.describe()}")
        print()


if __name__ == "__main__":
    main()
