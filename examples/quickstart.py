"""Quickstart: from a machine model to a placement decision.

Walks the paper's four steps for one container on the AMD machine model:

1. the shared-resource specification (scheduling concerns) is derived from
   the machine model;
2. the important placements are enumerated;
3. a performance model is trained for the machine and container size;
4. an arriving container is probed in two placements, its performance
   vector is predicted, and a placement is chosen.

Run:  python examples/quickstart.py
"""

from repro import amd_opteron_6272, concerns_for, enumerate_important_placements
from repro.experiments import fitted_model
from repro.perfsim import PerformanceSimulator, workload_by_name


def main() -> None:
    # Step 1: machine model and its scheduling concerns (paper Table 1).
    machine = amd_opteron_6272()
    print(machine.summary())
    print()
    concerns = concerns_for(machine)
    print(concerns.table())
    print()

    # Step 2: important placements for a 16-vCPU container.
    placements = enumerate_important_placements(machine, 16, concerns)
    print(placements.describe())
    print()

    # Step 3: train the model (uses the cached canonical input pair; pass
    # select_pair=True to watch the automatic search instead).
    model, training_set = fitted_model(machine)
    i, j = model.input_pair
    print(
        f"model trained on {len(training_set)} workloads; input placements "
        f"#{i + 1} and #{j + 1}"
    )
    print()

    # Step 4: probe a new container in the two input placements and predict
    # everything else.  WiredTiger stands in for the arriving container.
    simulator = PerformanceSimulator(machine)
    workload = workload_by_name("WTbtree")
    obs_i = simulator.measured_ipc(workload, placements[i], duration_s=3.0)
    obs_j = simulator.measured_ipc(workload, placements[j], duration_s=3.0)
    predicted = model.predict(obs_i, obs_j)

    print(f"predicted relative performance for {workload.name}:")
    for placement_id, (placement, value) in enumerate(
        zip(placements, predicted), start=1
    ):
        actual = simulator.measured_ipc(
            workload, placement, noise=False
        ) / simulator.measured_ipc(workload, placements[i], noise=False)
        print(
            f"  #{placement_id:>2} {placement.describe():55s} "
            f"predicted {value:5.2f}  (actual {actual:5.2f})"
        )

    best = max(range(len(placements)), key=lambda k: predicted[k])
    print(
        f"\nbest placement: #{best + 1} — {placements[best].describe()}"
    )


if __name__ == "__main__":
    main()
