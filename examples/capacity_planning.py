"""Capacity planning: how many WiredTiger instances fit on a machine?

The Section-7 scenario: an operator wants to pack as many instances of a
given container as possible while respecting a performance goal.  This
example compares the paper's four policies at a 100% goal (match the
baseline placement's throughput) and shows the packing/violation trade-off
of Figure 5.

Run:  python examples/capacity_planning.py
"""

from repro.core import (
    AggressivePolicy,
    ConservativePolicy,
    MlPolicy,
    SmartAggressivePolicy,
    evaluate_policy,
)
from repro.experiments import fitted_model, paper_vcpus
from repro.perfsim import PerformanceSimulator, workload_by_name
from repro.topology import amd_opteron_6272, intel_xeon_e7_4830_v3


def main() -> None:
    workload = workload_by_name("WTbtree")
    goal = 1.0

    for machine in (amd_opteron_6272(), intel_xeon_e7_4830_v3()):
        simulator = PerformanceSimulator(machine)
        model, training_set = fitted_model(machine)
        placements = training_set.placements
        baseline = placements[model.input_pair[0]]
        vcpus = paper_vcpus(machine)

        print(f"=== {machine.name}: {workload.name}, goal = "
              f"{goal:.0%} of baseline ===")
        policies = [
            MlPolicy(model, placements, simulator),
            ConservativePolicy(),
            AggressivePolicy(),
            SmartAggressivePolicy(),
        ]
        for policy in policies:
            outcome = evaluate_policy(
                policy,
                machine,
                workload,
                vcpus,
                goal_fraction=goal,
                baseline_placement=baseline,
                simulator=simulator,
            )
            verdict = (
                "meets the goal"
                if outcome.meets_goal
                else f"violates by up to {outcome.violations_pct:.0f}%"
            )
            print(
                f"  {policy.name:20s} packs {outcome.instances} "
                f"instance(s), {verdict}"
            )
        print()

    print(
        "The ML policy packs multiple instances per machine without "
        "violating the goal;\nthe naive policies either waste the machine "
        "(Conservative) or blow the goal (Aggressive)."
    )


if __name__ == "__main__":
    main()
