"""Portability: describing a new machine and getting placements for free.

Section 8 of the paper argues the methodology transfers to new
architectures "without significant retooling by an expert": AMD Zen
separates L3 sharing from memory-controller sharing, Intel's cluster-on-die
creates asymmetric interconnects inside one socket.  This example builds
both kinds of machine — one from the preset, one from scratch with the
TopologyBuilder — and shows the concern derivation and important-placement
enumeration adapting automatically.

Run:  python examples/custom_hardware.py
"""

from repro import (
    TopologyBuilder,
    amd_epyc_zen,
    concerns_for,
    enumerate_important_placements,
)
from repro.topology.sysfs import machine_to_sysfs, machine_from_sysfs


def main() -> None:
    # --- A Zen-like machine with split L3 (preset) ---------------------
    zen = amd_epyc_zen()
    print(zen.summary())
    print()
    concerns = concerns_for(zen)
    print(concerns.table())
    print()
    placements = enumerate_important_placements(zen, 16)
    print(placements.describe())
    print()

    # --- A cluster-on-die machine built from scratch -------------------
    cod = (
        TopologyBuilder("my-cod-machine")
        .nodes(4)
        .l2_groups_per_node(6, threads_per_l2=2)
        .dram_bandwidth(28_000)
        .cache_sizes(l3_mb=15, l2_kb=256)
        .asymmetric_interconnect(
            {
                (0, 1): 24_000.0,  # on-die link
                (2, 3): 24_000.0,  # on-die link
                (0, 2): 8_000.0,
                (1, 3): 8_000.0,
                (0, 3): 8_000.0,
                (1, 2): 8_000.0,
            }
        )
        .description("two sockets, two NUMA clusters per die")
        .build()
    )
    print(cod.summary())
    concerns = concerns_for(cod)
    print(
        f"derived concerns: {[c.name for c in concerns]} "
        f"(asymmetric interconnect detected automatically)"
    )
    placements = enumerate_important_placements(cod, 12)
    print(placements.describe())
    print()

    # --- The machine description round-trips through sysfs -------------
    rebuilt = machine_from_sysfs(machine_to_sysfs(cod))
    same = (
        rebuilt.l2_count == cod.l2_count
        and rebuilt.interconnect.links == cod.interconnect.links
    )
    print(
        "machine description survives the sysfs round-trip: "
        f"{same} (this is how a deployment would discover the topology)"
    )


if __name__ == "__main__":
    main()
