"""Online model lifecycle walkthrough: drift, retraining, promotion.

The paper trains its placement model once, offline.  But the model's own
cheapness closes a loop: every placement the fleet makes produces the two
probe measurements a prediction consumed *and* the realized performance —
exactly one labelled training example.  This example shows the serving
subsystem (``repro.serving``) feeding that signal back:

1. A churning request stream runs through the goal-aware policy, but the
   *arrival mix shifts mid-stream* (``drift_phase_schedule``): the second
   half draws chattier, bigger-footprint workloads the offline corpus
   never sampled.
2. A frozen model keeps serving through the shift — its rolling MAPE
   (live prediction error) climbs and stays high.
3. The online engine notices (rolling-MAPE drift threshold), retrains by
   *warm start* — only the newly observed workloads are simulated and
   appended to the corpus, and the forest grows fresh trees then prunes
   its oldest back to budget — and runs the candidate in shadow mode:
   predictions logged against live observations, never acted on.
4. When the candidate beats the incumbent on enough paired observations,
   it is promoted atomically; the version-keyed caches invalidate exactly
   the stale entries, and the fleet's next decision uses the new model.

Run:  python examples/online_learning.py
"""

from repro.scheduler import (
    Fleet,
    GoalAwareFleetPolicy,
    LifecycleScheduler,
    RebalanceConfig,
    drift_phase_schedule,
    generate_churn_stream,
)
from repro.serving import (
    DriftConfig,
    ModelServer,
    OnlineLearner,
    OnlineLearningConfig,
)
from repro.topology import amd_opteron_6272

N_REQUESTS = 260
N_HOSTS = 6
SEED = 11

ONLINE = OnlineLearningConfig(
    drift=DriftConfig(window=32, min_observations=16, threshold_pct=10.0),
    retrain_cooldown=16,
    shadow_min_observations=12,
)
FROZEN = OnlineLearningConfig(drift=DriftConfig(threshold_pct=1e9))


def run(config):
    server = ModelServer(seed=0)
    learner = OnlineLearner(server, config)
    engine = LifecycleScheduler(
        Fleet.homogeneous(amd_opteron_6272(), N_HOSTS),
        GoalAwareFleetPolicy(server),
        config=RebalanceConfig(),
        online=learner,
    )
    requests = generate_churn_stream(
        N_REQUESTS,
        seed=SEED,
        arrival_rate=2.0,
        mean_lifetime=25.0,
        vcpus_choices=(8,),
        phases=drift_phase_schedule(),
    )
    return engine.run(requests), server, learner


def mape_sparkline(learner, buckets=12):
    """A coarse text trajectory of the rolling MAPE over the stream."""
    points = [
        (t, m) for t, _, m in learner.stats.mape_timeline if m is not None
    ]
    if not points:
        return "  (no rolling MAPE recorded)"
    t_max = points[-1][0]
    lines = []
    for b in range(buckets):
        lo, hi = b * t_max / buckets, (b + 1) * t_max / buckets
        window = [m for t, m in points if lo <= t < hi or (b == buckets - 1 and t == hi)]
        if not window:
            continue
        mean = sum(window) / len(window)
        lines.append(
            f"  t {lo:6.0f}..{hi:6.0f}s  MAPE {mean:5.1f}%  "
            + "#" * max(1, int(mean))
        )
    return "\n".join(lines)


def main() -> None:
    print("=== frozen model (trained once, never retrained) ===")
    frozen_report, _, frozen_learner = run(FROZEN)
    print(mape_sparkline(frozen_learner))
    print()

    print("=== online model (trace -> drift -> retrain -> promote) ===")
    online_report, server, online_learner = run(ONLINE)
    print(mape_sparkline(online_learner))
    print()
    print(online_learner.stats.describe())
    print()
    print(server.describe_chains())
    print()
    print(online_learner.traces.describe())
    print()

    frozen_final = frozen_learner.stats.final_rolling_mape_pct()
    online_final = online_learner.stats.final_rolling_mape_pct()
    print(
        f"end-of-stream rolling MAPE: frozen {frozen_final:.1f}% vs "
        f"online {online_final:.1f}%"
    )
    assert online_learner.stats.n_promotions >= 1
    assert online_final < frozen_final
    print("drift recovered: the promoted model out-predicts the frozen one.")


if __name__ == "__main__":
    main()
