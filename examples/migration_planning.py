"""Migration planning: is online placement worth the move?

Section 7 closes with operational guidance: migration overhead is
proportional to the container's memory footprint, so the operator should
check whether probing (which migrates the container up to twice) is worth
it, or whether the placement should be computed offline for recurring jobs.

This example prices all three migration mechanisms for every paper
workload and prints the planner's recommendation.

Run:  python examples/migration_planning.py
"""

from repro.migration import (
    ContainerMemory,
    MigrationPlanner,
)
from repro.perfsim import paper_workloads


def main() -> None:
    planner = MigrationPlanner()
    print(
        f"{'workload':15s} {'memory':>8} {'fast':>7} {'linux':>8} "
        f"{'throttled':>10}   recommendation"
    )
    for profile in paper_workloads():
        memory = ContainerMemory.from_profile(profile)
        advice = planner.advise(profile)
        fast = advice.results["fast"].seconds
        linux = advice.results["default-linux"].seconds
        throttled = advice.results["throttled"].seconds
        print(
            f"{profile.name:15s} {memory.total_gb:>6.1f}GB "
            f"{fast:>6.1f}s {linux:>7.1f}s {throttled:>9.1f}s"
            f"   {advice.recommended}"
        )

    print()
    wt = [p for p in paper_workloads() if p.name == "WTbtree"][0]
    advice = planner.advise(wt)
    print(f"WiredTiger detail: {advice.reason}")
    result = advice.results["throttled"]
    print(
        f"  throttled migration keeps the database online: "
        f"{result.seconds:.0f}s at {result.overhead_fraction:.0%} overhead "
        f"(default Linux would stall it for "
        f"{advice.results['default-linux'].frozen_seconds:.0f}s and leave "
        f"{advice.results['default-linux'].left_behind_gb:.0f} GB of page "
        f"cache on the old nodes)"
    )


if __name__ == "__main__":
    main()
