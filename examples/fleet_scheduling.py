"""Fleet scheduling walkthrough: a request stream over a mixed fleet.

Builds a small mixed fleet (AMD Opteron and Intel Xeon shapes), generates a
deterministic stream of heterogeneous container requests, and runs it
through all three fleet policies — first-fit bin-packing, load-balanced
spread, and the paper's goal-aware ML policy — printing each fleet report
and a few per-request decision traces.

Watch two things in the output:

* the ML policy's violation count against the heuristics' — the fleet-scale
  version of the paper's Figure 5 story;
* the enumeration-cache line: thousands of requests, two machine shapes,
  a handful of pipeline runs.

Run:  python examples/fleet_scheduling.py
"""

from repro.scheduler import (
    POLICIES,
    Fleet,
    FleetScheduler,
    ModelRegistry,
    generate_request_stream,
    make_policy,
)
from repro.topology import amd_opteron_6272, intel_xeon_e7_4830_v3


def build_fleet() -> Fleet:
    # One topology object per shape, shared by all hosts of that shape —
    # which is what lets the enumeration memo cache collapse the fleet to
    # two distinct keys per container size.
    return Fleet.mixed([(amd_opteron_6272(), 10), (intel_xeon_e7_4830_v3(), 6)])


def main() -> None:
    requests = generate_request_stream(
        60, seed=3, vcpus_choices=(8, 16), goal_choices=(None, 0.9, 1.0)
    )
    print(f"stream: {len(requests)} requests, e.g.")
    for request in requests[:4]:
        print(f"  {request.describe()}")
    print()

    registry = ModelRegistry(seed=3)
    # Every registered policy through the one factory the CLI and the
    # sharded service also use — a new policy added to POLICIES shows up
    # here with no further wiring.
    for name in ("ml", "first-fit", "spread"):
        assert name in POLICIES
        policy = make_policy(name, registry=registry)
        scheduler = FleetScheduler(
            build_fleet(), policy, registry=registry, batch_size=32
        )
        report = scheduler.run(requests)
        print(report.describe())
        for graded in report.decisions[:3]:
            print(f"    {graded.describe()}")
        print()


if __name__ == "__main__":
    main()
