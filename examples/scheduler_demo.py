"""End-to-end scheduler demo: probe, predict, choose, migrate.

Deploys three different containers on the AMD machine model through the
full Section-1 pipeline (steps 1-4) and prints each scheduling report,
including the migration strategy chosen for the final move.

Run:  python examples/scheduler_demo.py
"""

from repro.containers import SimulatedHost, VirtualContainer
from repro.core import PlacementScheduler
from repro.experiments import fitted_model
from repro.perfsim import PerformanceSimulator, workload_by_name
from repro.topology import amd_opteron_6272


def main() -> None:
    machine = amd_opteron_6272()
    simulator = PerformanceSimulator(machine)
    model, training_set = fitted_model(machine)
    placements = training_set.placements

    print(
        f"scheduler ready: {len(placements)} important placements, model "
        f"inputs #{model.input_pair[0] + 1}/#{model.input_pair[1] + 1}\n"
    )

    for name, goal in [
        ("WTbtree", 1.0),  # latency-sensitive database
        ("streamcluster", None),  # bandwidth monster, just maximize
        ("swaptions", 1.0),  # placement-insensitive compute
    ]:
        # A fresh host per container keeps the demo's reports independent.
        host = SimulatedHost(machine, simulator=simulator)
        scheduler = PlacementScheduler(host, model, placements)
        container = VirtualContainer(workload_by_name(name), 16)
        report = scheduler.place(container, goal_fraction=goal)
        print(report.summary())
        achieved = host.measure(container, noise=False)
        print(
            f"  achieved {achieved:,.0f} {container.metric_name} in the "
            f"chosen placement\n"
        )


if __name__ == "__main__":
    main()
