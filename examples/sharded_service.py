"""Sharded scheduler service walkthrough: route, batch, retry.

The lifecycle engine (examples/fleet_churn.py) is a single loop: one
fleet, one policy, one event at a time.  This example runs the same
churn stream through the **sharded service**: the fleet is partitioned
across shard workers (each owning its own fleet index, block-score
tables, and model registry), and a thin front-end

* **routes** each arrival to the shard whose cached summary looks
  best-fit for the request's shape,
* **batches** consecutive arrivals into per-shard windows so each shard
  amortizes one fused forest call across the window, and defers
  departures into per-shard outboxes delivered with the next message,
* **retries** optimistically on the next-best shard when a stale
  summary routed a request to a shard that turned out to be full —
  placement state lives only on the shards, the router's summaries are
  allowed to be wrong.

Every message crosses a JSON wire boundary even with the default
in-process transport (``workers="process"`` moves each shard into a
real child process with the same bytes on the pipe), and a single-shard
service is decision-for-decision identical to the monolithic engine —
sharding changes where decisions happen, never what they are.

Run:  python examples/sharded_service.py
"""

import time

from repro.scheduler import (
    LifecycleScheduler,
    RebalanceConfig,
    ScheduleConfig,
    SchedulerService,
)


def run_monolith(config: ScheduleConfig, stream):
    registry = config.build_registry()
    engine = LifecycleScheduler(
        config.build_fleet(),
        config.build_policy(registry),
        registry=registry,
        config=RebalanceConfig(enabled=config.rebalance_enabled),
    )
    start = time.perf_counter()
    report = engine.run(stream)
    return report, time.perf_counter() - start


def main() -> None:
    # A churning fleet: Poisson arrivals, heavy-tailed lifetimes, mostly
    # 1-node containers with occasional 4-node ones.
    base = dict(
        machine="amd",
        hosts=200,
        requests=400,
        seed=11,
        churn=True,
        arrival_rate=4.0,
        mean_lifetime=30.0,
        heavy_tail=True,
        vcpus=(8, 8, 16, 32),
    )
    stream = ScheduleConfig(**base).build_stream()
    print(
        f"stream: {len(stream)} requests over "
        f"{stream[-1].arrival_time:.0f} simulated seconds, "
        f"fleet of {base['hosts']} hosts"
    )
    print()

    mono_report, mono_seconds = run_monolith(ScheduleConfig(**base), stream)
    print(f"--- monolithic lifecycle engine ({mono_seconds:.2f}s) ---")
    print(mono_report.describe())
    print()

    service_config = ScheduleConfig(**base, shards=4, window=16)
    with SchedulerService(service_config) as service:
        start = time.perf_counter()
        svc_report = service.serve(stream)
        svc_seconds = time.perf_counter() - start
    print(f"--- 4-shard service, window 16 ({svc_seconds:.2f}s) ---")
    print(svc_report.describe())
    print()

    # The same stream through one shard with window 1 *is* the
    # monolithic engine behind a wire protocol: identical decisions.
    with SchedulerService(ScheduleConfig(**base, shards=1, window=1)) as one:
        one_report = one.serve(stream)
    identical = all(
        a.decision.host_id == b.decision.host_id
        and a.decision.placement_id == b.decision.placement_id
        for a, b in zip(one_report.decisions, mono_report.decisions)
    )
    print(
        f"single shard, window 1 vs monolith: "
        f"{'identical decisions' if identical else 'DIVERGED'} "
        f"({len(one_report.decisions)} decisions)"
    )
    print(
        "(at this toy size each shard's one-time model fits dominate the "
        "wall clock; benchmarks/bench_service.py measures the crossover — "
        "the 4-shard service clears 2x the single loop from ~40k hosts)"
    )
    print(
        "the CLI front door: `repro serve --shards 4 --window 16 "
        "--hosts 10000 --requests 2000`"
    )


if __name__ == "__main__":
    main()
