"""Fault-tolerance tests: deterministic injection, supervision, recovery.

The contracts under test, in rough order of importance:

* **No-fault equivalence** — with no ``FaultPlan`` and ``supervised``
  off, the service's wire bytes carry no ``seq`` keys and its decisions
  are those of the plain service; with supervision on (journaling
  active) the wire bytes are identical except for the added ``seq``
  keys, and the decisions are bit-for-bit unchanged.
* **Crash convergence** — under immediate recovery, crashing any shard
  at *any* message index yields the exact fault-free decisions and
  merged churn report: the journal replay rebuilds the shard's state
  bit-for-bit and the in-flight message's replay response stands in for
  the lost reply (zero lost, zero duplicated placements).
* **Degraded operation** — with recovery deferred, arrivals fail over
  to surviving shards, every request is still decided exactly once, and
  queued departures for the dead shard are delivered after recovery.
"""

import json

import pytest

from repro.scheduler import (
    FaultAction,
    FaultInjectingClient,
    FaultPlan,
    HEALTH_DOWN,
    HEALTH_SUSPECT,
    HEALTH_UP,
    InlineShardClient,
    ProcessShardClient,
    ScheduleConfig,
    SchedulerService,
    ShardCrashError,
    ShardJournal,
    ShardSupervisor,
    ShardTimeoutError,
)
from tests.scheduler.test_service import CHURN_REFERENCE, _fingerprints

#: A fast reference stream (heuristic policy, no model fitting) for the
#: many-run sweeps; busy enough for departures and capacity rejects.
FAST_REFERENCE = dict(
    machine="amd",
    hosts=4,
    requests=40,
    seed=3,
    churn=True,
    policy="first-fit",
    arrival_rate=1.0,
    mean_lifetime=20.0,
    heavy_tail=True,
    vcpus=(8, 8, 16),
)


def _arrival(request_id, *, vcpus=8, event_time=0.0):
    """One wire-form arrival event pair for hand-built messages."""
    from repro.scheduler import generate_request_stream

    request = generate_request_stream(1, seed=request_id, vcpus_choices=(vcpus,))[0]
    return [request.to_dict(), event_time]


def _fast_config(**overrides):
    values = dict(
        FAST_REFERENCE, shards=2, window=4, backoff_base_s=0.0
    )
    values.update(overrides)
    return ScheduleConfig(**values)


def _serve(config, faults=None):
    with SchedulerService(config, faults=faults) as service:
        report = service.serve()
        return report, service.stats


def _report_signature(report):
    """Everything deterministic about a merged report: the decision
    fingerprints plus the full churn payload (timelines, migrations)."""
    return (
        _fingerprints(report.decisions),
        report.placed,
        report.rejected,
        report.churn.to_dict(),
    )


class _RecordingClient:
    """Transport shim that captures every wire message as sorted JSON."""

    def __init__(self, inner, sent):
        self.inner = inner
        self.shard_id = inner.shard_id
        self.transport = inner.transport
        self.sent = sent

    def request(self, message, timeout_s=None):
        self.sent.append(json.dumps(message, sort_keys=True))
        return self.inner.request(message, timeout_s)

    def send(self, message, timeout_s=None):
        self.sent.append(json.dumps(message, sort_keys=True))
        self.inner.send(message, timeout_s)

    def recv(self, timeout_s=None):
        return self.inner.recv(timeout_s)

    def request_many(self, messages, timeout_s=None, on_response=None):
        for message in messages:
            self.sent.append(json.dumps(message, sort_keys=True))
        return self.inner.request_many(
            messages, timeout_s=timeout_s, on_response=on_response
        )

    def reply_ready(self):
        return self.inner.reply_ready()

    def gather_connection(self):
        return self.inner.gather_connection()

    def recv_deadline(self):
        return self.inner.recv_deadline()

    def kill(self):
        self.inner.kill()

    def close(self):
        self.inner.close()


def _record_messages(config, faults=None):
    with SchedulerService(config, faults=faults) as service:
        sent = []
        service.clients = [
            _RecordingClient(client, sent) for client in service.clients
        ]
        report = service.serve()
        return report, sent


class TestFaultPlan:
    def test_bind_partitions_actions_by_shard(self):
        plan = FaultPlan(
            actions=[
                FaultAction(0, 1, "crash"),
                FaultAction(1, 2, "drop"),
                FaultAction(0, 4, "wedge"),
            ]
        )
        schedule = plan.bind(0)
        hits = [schedule.next_action() for _ in range(6)]
        assert [a.kind if a else None for a in hits] == [
            None, "crash", None, None, "wedge", None,
        ]

    def test_actions_fire_at_most_once(self):
        plan = FaultPlan.crash_at(0, 0)
        schedule = plan.bind(0)
        assert schedule.next_action().kind == "crash"
        # The counter keeps running across a client respawn; the fired
        # action never rearms.
        assert all(schedule.next_action() is None for _ in range(20))
        assert [a.kind for a in schedule.fired] == ["crash"]

    def test_colliding_indices_shift_instead_of_dropping(self):
        plan = FaultPlan(
            actions=[FaultAction(0, 2, "drop"), FaultAction(0, 2, "delay")]
        )
        schedule = plan.bind(0)
        kinds = [
            action.kind if action else None
            for action in (schedule.next_action() for _ in range(5))
        ]
        assert kinds == [None, None, "drop", "delay", None]


class TestFaultInjectingClient:
    def _client(self, plan):
        config = ScheduleConfig(
            machine="amd", hosts=2, requests=4, policy="first-fit"
        )
        inner = InlineShardClient(0, config)
        return FaultInjectingClient(inner, plan.bind(0))

    def test_crash_latches_and_kills_state(self):
        client = self._client(FaultPlan.crash_at(0, 1))
        client.request({"op": "summary"})
        with pytest.raises(ShardCrashError):
            client.request({"op": "summary"})
        # Latched: every later request crashes too, without consuming
        # message indices.
        with pytest.raises(ShardCrashError):
            client.request({"op": "summary"})
        assert client.schedule.messages_seen == 2

    def test_wedge_latches_as_timeouts(self):
        plan = FaultPlan(actions=[FaultAction(0, 0, "wedge")])
        client = self._client(plan)
        for _ in range(3):
            with pytest.raises(ShardTimeoutError):
                client.request({"op": "summary"})

    def test_drop_applies_then_times_out(self):
        plan = FaultPlan(actions=[FaultAction(0, 0, "drop")])
        client = self._client(plan)
        request = {"op": "arrive", "events": [_arrival(1)], "seq": 0}
        with pytest.raises(ShardTimeoutError):
            client.request(request)
        # The message reached the worker: a same-seq retry is answered
        # from the dedup cache rather than re-applied.
        response = client.request(request)
        assert client.inner.worker._applied_seq == 0
        assert client.inner.worker.engine.stats.arrivals == 1
        assert "summary" in response


class TestWorkerDedup:
    def test_same_seq_returns_cached_response(self):
        config = ScheduleConfig(
            machine="amd", hosts=1, requests=4, policy="first-fit"
        )
        client = InlineShardClient(0, config)
        message = {"op": "arrive", "events": [_arrival(1)], "seq": 0}
        first = client.request(message)
        again = client.request(message)
        assert again == first
        # Applied exactly once: the retry came from the dedup cache.
        assert client.worker.engine.stats.arrivals == 1

    def test_unsequenced_messages_never_dedup(self):
        config = ScheduleConfig(
            machine="amd", hosts=1, requests=4, policy="first-fit"
        )
        client = InlineShardClient(0, config)
        client.request({"op": "summary"})
        response = client.request({"op": "summary"})
        assert "deduped" not in response


class TestTransportFailures:
    def test_inline_kill_raises_crash(self):
        config = ScheduleConfig(
            machine="amd", hosts=1, requests=4, policy="first-fit"
        )
        client = InlineShardClient(0, config)
        client.kill()
        with pytest.raises(ShardCrashError):
            client.request({"op": "summary"})

    @pytest.mark.slow
    def test_process_dead_worker_raises_instead_of_hanging(self):
        config = ScheduleConfig(
            machine="amd", hosts=2, requests=4, policy="first-fit"
        )
        client = ProcessShardClient(0, config, timeout_s=20.0)
        assert "summary" in client.request({"op": "summary"})
        client._process.terminate()
        client._process.join(timeout=10.0)
        with pytest.raises(ShardCrashError):
            client.request({"op": "summary"})
        client.close()
        assert client._connection.closed

    @pytest.mark.slow
    def test_process_worker_exits_cleanly_on_parent_eof(self):
        config = ScheduleConfig(
            machine="amd", hosts=2, requests=4, policy="first-fit"
        )
        client = ProcessShardClient(0, config, timeout_s=20.0)
        assert "summary" in client.request({"op": "summary"})
        client._connection.close()
        client._process.join(timeout=10.0)
        # EOF is a clean shutdown, not a traceback: exit code 0.
        assert client._process.exitcode == 0
        client.close()

    @pytest.mark.slow
    def test_process_close_releases_pipe_after_kill(self):
        config = ScheduleConfig(
            machine="amd", hosts=2, requests=4, policy="first-fit"
        )
        client = ProcessShardClient(0, config, timeout_s=20.0)
        client.kill()
        assert client._connection.closed
        assert not client._process.is_alive()
        client.close()  # idempotent after kill


class TestSupervisor:
    def test_health_transitions(self):
        supervisor = ShardSupervisor(2)
        assert supervisor.health == [HEALTH_UP, HEALTH_UP]
        supervisor.mark_suspect(0)
        assert supervisor.health[0] == HEALTH_SUSPECT
        supervisor.mark_down(0, round_index=3)
        assert supervisor.down_shards() == frozenset({0})
        supervisor.mark_recovering(0)
        supervisor.mark_up(0)
        assert supervisor.health[0] == HEALTH_UP
        assert supervisor.down_shards() == frozenset()

    def test_suspect_does_not_mask_down(self):
        supervisor = ShardSupervisor(1)
        supervisor.mark_down(0, round_index=0)
        supervisor.mark_suspect(0)
        assert supervisor.health[0] == HEALTH_DOWN

    def test_deferred_recovery_schedule(self):
        supervisor = ShardSupervisor(1, recovery_rounds=2)
        supervisor.mark_down(0, round_index=5)
        assert not supervisor.due_for_recovery(0, 6)
        assert supervisor.due_for_recovery(0, 7)

    def test_backoff_is_seeded_and_exponential(self):
        a = ShardSupervisor(1, backoff_base_s=0.1, seed=4)
        b = ShardSupervisor(1, backoff_base_s=0.1, seed=4)
        seq_a = [a.backoff_seconds(attempt) for attempt in (1, 2, 3)]
        seq_b = [b.backoff_seconds(attempt) for attempt in (1, 2, 3)]
        assert seq_a == seq_b  # same seed, same jitter stream
        for attempt, sleep in enumerate(seq_a, start=1):
            base = 0.1 * 2 ** (attempt - 1)
            assert 0.5 * base <= sleep < 1.5 * base

    def test_journal_rollback_only_newest(self):
        journal = ShardJournal()
        first = journal.append({"op": "arrive", "events": []})
        journal.append({"op": "depart", "events": []})
        with pytest.raises(ValueError):
            journal.rollback(first)


class TestNoFaultEquivalence:
    """The acceptance gate: fault machinery off changes nothing."""

    def test_unsupervised_wire_carries_no_seq(self):
        report, sent = _record_messages(_fast_config())
        assert sent  # the run really went through the recorder
        assert all('"seq"' not in message for message in sent)
        assert report.service.supervised is False

    def test_supervised_wire_is_identical_modulo_seq(self):
        plain_report, plain_sent = _record_messages(_fast_config())
        sup_report, sup_sent = _record_messages(
            _fast_config(supervised=True)
        )
        stripped = []
        for raw in sup_sent:
            message = json.loads(raw)
            message.pop("seq", None)
            stripped.append(json.dumps(message, sort_keys=True))
        assert stripped == plain_sent
        assert _report_signature(sup_report) == _report_signature(
            plain_report
        )

    def test_empty_fault_plan_matches_fault_free(self):
        plain, _ = _serve(_fast_config())
        injected, stats = _serve(
            _fast_config(), faults=FaultPlan(actions=[])
        )
        assert _report_signature(injected) == _report_signature(plain)
        assert stats.crashes == 0
        assert stats.journal_replays == 0


class TestCrashRecovery:
    @pytest.mark.parametrize("overlap", [True, False])
    @pytest.mark.parametrize("kind", ["crash", "drop", "wedge", "delay"])
    def test_single_fault_converges_to_fault_free(self, kind, overlap):
        plain, _ = _serve(_fast_config())
        plan = FaultPlan(
            actions=[
                FaultAction(
                    0, 2, kind, delay_ms=1.0 if kind == "delay" else 0.0
                )
            ]
        )
        report, stats = _serve(_fast_config(overlap=overlap), faults=plan)
        assert _report_signature(report) == _report_signature(plain)
        if kind == "crash":
            assert stats.crashes == 1
            assert stats.journal_replays == 1
        if kind == "drop":
            # Applied, reply lost: recovered by a same-seq backoff retry
            # answered from the worker's dedup cache — no replay needed.
            assert stats.timeouts == 1
            assert stats.backoff_retries == 1
            assert stats.journal_replays == 0
        if kind == "wedge":
            assert stats.timeouts >= 1
            assert stats.journal_replays == 1
        if kind == "delay":
            assert stats.timeouts == 0
            assert stats.crashes == 0

    @pytest.mark.parametrize("overlap", [True, False])
    def test_crash_at_every_message_index_sweep(self, overlap):
        """The property sweep: crashing either shard at *any* point in
        the stream — including while several sends are in flight under
        overlapped dispatch — loses nothing, duplicates nothing, and
        converges to the fault-free merged report."""
        config = _fast_config(
            requests=24, seed=7, supervised=True, overlap=overlap
        )
        plain, _ = _serve(config, faults=FaultPlan(actions=[]))
        signature = _report_signature(plain)
        with SchedulerService(config, faults=FaultPlan(actions=[])) as probe:
            probe.serve()
            message_counts = [
                schedule.messages_seen
                for schedule in probe._fault_schedules
            ]
        assert all(count > 0 for count in message_counts)
        arrivals = len(plain.decisions)
        for shard, count in enumerate(message_counts):
            for index in range(count):
                report, stats = _serve(
                    config, faults=FaultPlan.crash_at(shard, index)
                )
                ids = [
                    d.decision.request.request_id for d in report.decisions
                ]
                assert len(ids) == arrivals  # nothing lost
                assert len(set(ids)) == arrivals  # nothing duplicated
                assert _report_signature(report) == signature, (
                    f"crash at shard {shard} message {index} diverged"
                )
                assert stats.crashes == 1
                assert stats.journal_replays >= 1

    def test_kill_each_shard_once_on_reference_churn_stream(self):
        """The acceptance gate on the ML reference stream: the seeded
        kill-each-shard-once plan completes with zero lost/duplicated
        placements and a merged report equal to the fault-free run."""
        config = ScheduleConfig(
            **CHURN_REFERENCE, shards=2, window=4, backoff_base_s=0.0
        )
        plain, plain_stats = _serve(config)
        plan = FaultPlan.kill_each_shard_once(2, seed=config.seed)
        report, stats = _serve(config, faults=plan)
        ids = [d.decision.request.request_id for d in report.decisions]
        assert len(ids) == len(set(ids)) == len(plain.decisions)
        assert _report_signature(report) == _report_signature(plain)
        assert stats.crashes == 2
        assert stats.journal_replays == 2
        assert stats.departures_routed == plain_stats.departures_routed

    @pytest.mark.slow
    def test_kill_each_shard_once_process_transport(self):
        config = _fast_config(workers="process", request_timeout_s=20.0)
        plain, _ = _serve(config)
        plan = FaultPlan.kill_each_shard_once(2, seed=config.seed)
        report, stats = _serve(config, faults=plan)
        assert _report_signature(report) == _report_signature(plain)
        assert stats.crashes == 2

    def test_health_returns_to_up_after_recovery(self):
        config = _fast_config()
        plan = FaultPlan.kill_each_shard_once(2, seed=config.seed)
        with SchedulerService(config, faults=plan) as service:
            service.serve()
            assert service.supervisor.health == [HEALTH_UP, HEALTH_UP]
            assert all(
                len(schedule.fired) == 1
                for schedule in service._fault_schedules
            )


class TestGracefulDegradation:
    def test_deferred_recovery_fails_over_to_survivors(self):
        config = _fast_config(recovery_rounds=2)
        plain, plain_stats = _serve(config)
        plan = FaultPlan.kill_each_shard_once(2, seed=config.seed)
        report, stats = _serve(config, faults=plan)
        ids = [d.decision.request.request_id for d in report.decisions]
        # Exactly-once placement holds even though the routing changed.
        assert len(ids) == len(set(ids)) == len(plain.decisions)
        assert stats.failovers > 0
        assert stats.degraded_windows > 0
        assert stats.crashes == 2
        # Departures queued while the owner was down ride after the
        # respawn: none are dropped.
        assert stats.departures_routed == plain_stats.departures_routed

    def test_storm_plan_completes_exactly_once(self):
        config = _fast_config(recovery_rounds=1, requests=60)
        plan = FaultPlan.storm(2, seed=9, n_faults=6, span=24)
        report, stats = _serve(config, faults=plan)
        ids = [d.decision.request.request_id for d in report.decisions]
        assert len(ids) == len(set(ids))
        assert report.placed + report.rejected == len(ids)
        assert stats.crashes + stats.timeouts > 0
