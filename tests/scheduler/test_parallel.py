"""Overlapped dispatch: split protocol, deadlines, and equivalence.

The contracts under test:

* **Split protocol** — ``send()``/``recv()`` pair FIFO on both
  transports, ``request_many`` pipelines (process) or loops (inline)
  with identical results, and a ``recv()`` without a pending ``send()``
  is a programming error.
* **Deadline semantics** — the reply deadline is stamped at ``send()``;
  ``recv()`` polls with the *remaining* budget, so time the front-end
  spends elsewhere between send and recv is charged against the same
  deadline instead of resetting it.
* **Equivalence** — overlapped dispatch (the default) produces
  bit-for-bit the decisions, merged reports, and per-shard wire streams
  of the ``--no-overlap`` sequential baseline, on both transports.
"""

import os
import signal
import time

import pytest

from repro.scheduler import (
    InlineShardClient,
    ProcessShardClient,
    ScheduleConfig,
    SchedulerService,
    ShardError,
    ShardTimeoutError,
)
from tests.scheduler.test_service import CHURN_REFERENCE, _fingerprints


def _client_config(**overrides):
    values = dict(machine="amd", hosts=4, requests=8, shards=2, window=2)
    values.update(overrides)
    return ScheduleConfig(**values)


def _serve(config):
    with SchedulerService(config) as service:
        report = service.serve()
        return report, service.stats


def _signature(report):
    return (
        _fingerprints(report.decisions),
        report.placed,
        report.rejected,
        report.churn.to_dict(),
    )


class TestInlineSplitProtocol:
    def _client(self):
        config = _client_config()
        return InlineShardClient(
            0, config, machines=config.machine_list()[::2]
        )

    def test_send_recv_pair_fifo(self):
        client = self._client()
        client.send({"op": "summary"})
        client.send({"op": "report"})
        first = client.recv()
        second = client.recv()
        assert "summary" in first
        assert "report" in second

    def test_recv_without_send_is_an_error(self):
        client = self._client()
        with pytest.raises(ShardError, match="without a pending send"):
            client.recv()

    def test_request_many_invokes_callback_in_order(self):
        client = self._client()
        seen = []
        responses = client.request_many(
            [{"op": "summary"}, {"op": "summary"}],
            on_response=seen.append,
        )
        assert responses == seen
        assert len(responses) == 2

    def test_gather_surface(self):
        client = self._client()
        assert client.reply_ready() is False
        assert client.gather_connection() is None
        client.send({"op": "summary"})
        assert client.reply_ready() is True
        client.recv()
        assert client.reply_ready() is False


class TestProcessSplitProtocol:
    def test_split_matches_request(self):
        config = _client_config(workers="process")
        client = ProcessShardClient(0, config, timeout_s=30.0)
        try:
            via_request = client.request({"op": "summary"})
            client.send({"op": "summary"})
            via_split = client.recv()
            assert via_split == via_request
        finally:
            client.close()

    def test_request_many_pipelines(self):
        config = _client_config(workers="process")
        client = ProcessShardClient(0, config, timeout_s=30.0)
        try:
            seen = []
            responses = client.request_many(
                [{"op": "summary"}] * 4, on_response=seen.append
            )
            assert responses == seen
            assert len(responses) == 4
        finally:
            client.close()

    def test_recv_charges_the_remaining_deadline(self):
        """The deadline is stamped at send(): a stalled worker times out
        after the *remaining* budget, not a fresh full timeout per
        recv() call."""
        config = _client_config(workers="process")
        client = ProcessShardClient(0, config, timeout_s=30.0)
        try:
            client.request({"op": "summary"})  # worker fully up
            os.kill(client._process.pid, signal.SIGSTOP)
            try:
                budget = 0.6
                client.send({"op": "summary"}, timeout_s=budget)
                time.sleep(budget / 2)
                start = time.monotonic()
                with pytest.raises(ShardTimeoutError):
                    client.recv()
                waited = time.monotonic() - start
                # Remaining budget is ~0.3s; a fixed full-timeout poll
                # would have waited the whole 0.6s again.
                assert waited < budget
            finally:
                os.kill(client._process.pid, signal.SIGCONT)
        finally:
            client.close()

    def test_explicit_recv_timeout_overrides_deadline(self):
        config = _client_config(workers="process")
        client = ProcessShardClient(0, config, timeout_s=30.0)
        try:
            client.request({"op": "summary"})
            os.kill(client._process.pid, signal.SIGSTOP)
            try:
                client.send({"op": "summary"}, timeout_s=30.0)
                start = time.monotonic()
                with pytest.raises(ShardTimeoutError):
                    client.recv(timeout_s=0.2)
                assert time.monotonic() - start < 5.0
            finally:
                os.kill(client._process.pid, signal.SIGCONT)
        finally:
            client.close()


class TestOverlapEquivalence:
    def test_inline_overlap_matches_sequential(self):
        config = dict(CHURN_REFERENCE, shards=2, window=4)
        overlapped, on_stats = _serve(ScheduleConfig(**config))
        sequential, off_stats = _serve(
            ScheduleConfig(**config, overlap=False)
        )
        assert _signature(overlapped) == _signature(sequential)
        assert on_stats.overlapped_rounds > 0
        assert off_stats.overlapped_rounds == 0

    def test_supervised_overlap_matches_sequential(self):
        config = dict(
            CHURN_REFERENCE, shards=2, window=4, supervised=True
        )
        overlapped, _ = _serve(ScheduleConfig(**config))
        sequential, _ = _serve(ScheduleConfig(**config, overlap=False))
        assert _signature(overlapped) == _signature(sequential)

    def test_process_overlap_matches_sequential(self):
        config = dict(
            CHURN_REFERENCE, requests=30, shards=2, window=4
        )
        overlapped, on_stats = _serve(
            ScheduleConfig(**config, workers="process")
        )
        sequential, _ = _serve(
            ScheduleConfig(**config, workers="process", overlap=False)
        )
        inline, _ = _serve(ScheduleConfig(**config))
        assert _signature(overlapped) == _signature(sequential)
        assert _signature(overlapped) == _signature(inline)
        assert on_stats.overlapped_rounds > 0

    def test_overlap_records_split_timing(self):
        config = dict(CHURN_REFERENCE, shards=2, window=4)
        _, stats = _serve(ScheduleConfig(**config))
        assert stats.window_wall_seconds > 0.0
        assert stats.shard_service_seconds > 0.0

    def test_supervisor_tracks_multiple_in_flight_sends(self):
        config = ScheduleConfig(
            **dict(CHURN_REFERENCE, shards=2, window=4, supervised=True)
        )
        with SchedulerService(config) as service:
            service.serve()
            assert service.supervisor.max_in_flight >= 2
            assert service.supervisor.in_flight() == {}

        sequential = ScheduleConfig(
            **dict(
                CHURN_REFERENCE,
                shards=2,
                window=4,
                supervised=True,
                overlap=False,
            )
        )
        with SchedulerService(sequential) as service:
            service.serve()
            assert service.supervisor.max_in_flight == 1
