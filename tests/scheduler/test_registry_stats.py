"""ModelRegistry memo statistics under migration-heavy churn.

The rebalance path re-grades every migrated container through the
registry's IPC memo (``LifecycleScheduler._regrade_migrated``); these
tests pin the counters' contract there: every miss is exactly one
simulator run, re-grades of known keys are hits, and the numbers the memo
serves are the numbers an unmemoized registry computes.
"""

from repro.scheduler import (
    Fleet,
    LifecycleScheduler,
    ModelRegistry,
    RebalanceConfig,
    SpreadFleetPolicy,
    generate_churn_stream,
)
from repro.topology import amd_opteron_6272


def _churn_requests():
    # The reference churn stream that reliably triggers rebalancer
    # migrations on a 4-host AMD fleet (same shape as the CLI churn test).
    return generate_churn_stream(
        100,
        seed=11,
        arrival_rate=1.0,
        mean_lifetime=20.0,
        heavy_tail=True,
        vcpus_choices=(8, 8, 8, 32),
    )


def _run(registry):
    return LifecycleScheduler(
        Fleet.homogeneous(amd_opteron_6272(), 4),
        SpreadFleetPolicy(),
        registry=registry,
        config=RebalanceConfig(),
    ).run(_churn_requests())


class TestMemoStatsUnderMigrationChurn:
    def test_every_miss_is_one_simulator_run(self, monkeypatch):
        registry = ModelRegistry(seed=0)
        machine = amd_opteron_6272()
        simulator = registry.simulator(machine)
        calls = {"n": 0}
        original = type(simulator).measured_ipc

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(type(simulator), "measured_ipc", counting)
        report = _run(registry)

        # The stream must actually exercise the rebalance/regrade path.
        assert report.churn.n_migrations > 0
        info = registry.ipc_cache_info()
        assert calls["n"] == info.misses
        # Every miss inserts exactly one solo-IPC entry.
        assert info.currsize == info.misses
        # Migration re-grades hit keys the original grading populated.
        assert info.hits > 0
        assert report.ipc_cache_info == info

    def test_regrade_hits_instead_of_resimulating(self, monkeypatch):
        """Re-grading a migrated container whose (profile, placement
        score) was already graded must be pure cache hits."""
        registry = ModelRegistry(seed=0)
        report = _run(registry)
        assert report.churn.n_migrations > 0
        hits_before = registry.ipc_cache_info().hits

        # Re-grade every placed decision once more: all keys are known.
        # (A fresh same-shape fleet suffices — grading only reads the
        # host's machine, and fingerprint-equal machines are
        # interchangeable for the memo.)
        from repro.scheduler.scheduler import grade_decision

        fleet = Fleet.homogeneous(amd_opteron_6272(), 4)
        regraded = 0
        for graded in report.decisions:
            if not graded.decision.placed:
                continue
            fresh = grade_decision(graded.decision, fleet, registry)
            assert fresh.achieved_relative == graded.achieved_relative
            regraded += 1
        assert regraded > 0
        info = registry.ipc_cache_info()
        assert info.hits > hits_before
        # No new simulator work for known keys.
        assert info.misses == report.ipc_cache_info.misses

    def test_memoized_stats_match_unmemoized_grades(self):
        memoized = ModelRegistry(seed=0)
        unmemoized = ModelRegistry(seed=0, memoize_ipc=False)
        with_memo = _run(memoized)
        without = _run(unmemoized)
        assert [
            (g.decision.request.request_id, g.achieved_relative, g.violated)
            for g in with_memo.decisions
        ] == [
            (g.decision.request.request_id, g.achieved_relative, g.violated)
            for g in without.decisions
        ]
        # The unmemoized registry records misses only (every call ran the
        # simulator); the memoized one must have strictly fewer runs.
        assert unmemoized.ipc_cache_info().hits == 0
        assert (
            memoized.ipc_cache_info().misses
            < unmemoized.ipc_cache_info().misses
        )


class TestProbeIpcBatch:
    """The vectorized probe helper must be bit-for-bit (values *and*
    accounting) equal to per-request probe_ipc calls."""

    def _setup(self):
        from repro.perfsim import workload_by_name

        machine = amd_opteron_6272()
        registry = ModelRegistry(n_estimators=4, n_synthetic=2, seed=0)
        placements = registry.placements(machine, 16)
        profiles = [
            workload_by_name(name)
            for name in ("gcc", "WTbtree", "gcc", "kmeans", "WTbtree")
        ]
        return machine, registry, placements[0], profiles

    def test_values_and_accounting_match_sequential(self):
        machine, registry, placement, profiles = self._setup()
        repetitions = [3, 4, 5, 6, 7]
        batch = registry.probe_ipc_batch(
            machine, profiles, placement, duration_s=3.0,
            repetitions=repetitions,
        )
        batch_info = registry.ipc_cache_info()

        sequential_registry = ModelRegistry(
            n_estimators=4, n_synthetic=2, seed=0
        )
        sequential = [
            sequential_registry.probe_ipc(
                machine, profile, placement, duration_s=3.0,
                repetition=repetition,
            )
            for profile, repetition in zip(profiles, repetitions)
        ]
        assert list(batch) == sequential
        sequential_info = sequential_registry.ipc_cache_info()
        assert batch_info.hits == sequential_info.hits
        assert batch_info.misses == sequential_info.misses

    def test_unmemoized_path_matches(self):
        from repro.perfsim import workload_by_name

        machine = amd_opteron_6272()
        registry = ModelRegistry(
            n_estimators=4, n_synthetic=2, seed=0, memoize_ipc=False
        )
        placement = registry.placements(machine, 16)[0]
        profiles = [workload_by_name("gcc"), workload_by_name("WTbtree")]
        batch = registry.probe_ipc_batch(
            machine, profiles, placement, duration_s=3.0, repetitions=[1, 2]
        )
        expected = [
            registry.simulator(machine).measured_ipc(
                profile, placement, duration_s=3.0, repetition=repetition
            )
            for profile, repetition in zip(profiles, [1, 2])
        ]
        assert list(batch) == expected

    def test_misaligned_inputs_rejected(self):
        import pytest

        machine, registry, placement, profiles = self._setup()
        with pytest.raises(ValueError, match="align"):
            registry.probe_ipc_batch(
                machine, profiles, placement, duration_s=3.0,
                repetitions=[1],
            )
