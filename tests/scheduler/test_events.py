"""Tests for the lifecycle event queue."""

import pytest

from repro.perfsim import workload_by_name
from repro.scheduler import (
    EventKind,
    EventQueue,
    PlacementRequest,
    events_from_requests,
)


def _request(request_id, *, arrival=0.0, lifetime=None, vcpus=8):
    return PlacementRequest(
        request_id=request_id,
        profile=workload_by_name("gcc"),
        vcpus=vcpus,
        arrival_time=arrival,
        lifetime=lifetime,
    )


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(5.0, EventKind.ARRIVAL, _request(1))
        queue.push(1.0, EventKind.ARRIVAL, _request(2))
        queue.push(3.0, EventKind.ARRIVAL, _request(3))
        times = [event.time for event in queue.drain()]
        assert times == [1.0, 3.0, 5.0]
        assert not queue

    def test_equal_times_keep_insertion_order(self):
        queue = EventQueue()
        first = queue.push(2.0, EventKind.ARRIVAL, _request(1))
        second = queue.push(2.0, EventKind.DEPARTURE, _request(2))
        assert queue.pop() is first
        assert queue.pop() is second

    def test_len_and_bool(self):
        queue = EventQueue()
        assert len(queue) == 0 and not queue
        queue.push(0.0, EventKind.ARRIVAL, _request(1))
        assert len(queue) == 1 and queue

    def test_describe(self):
        queue = EventQueue()
        event = queue.push(1.5, EventKind.DEPARTURE, _request(9))
        assert "departure" in event.describe()
        assert "req#9" in event.describe()


class TestEventsFromRequests:
    def test_arrival_and_departure_pairs(self):
        requests = [
            _request(1, arrival=0.0, lifetime=10.0),
            _request(2, arrival=5.0),  # immortal: no departure event
        ]
        events = list(events_from_requests(requests).drain())
        assert [(e.time, e.kind) for e in events] == [
            (0.0, EventKind.ARRIVAL),
            (5.0, EventKind.ARRIVAL),
            (10.0, EventKind.DEPARTURE),
        ]

    def test_departure_beats_simultaneous_later_arrival(self):
        """A departure coinciding with a later request's arrival must sort
        first, so the freed nodes are visible to that arrival."""
        requests = [
            _request(1, arrival=0.0, lifetime=7.0),
            _request(2, arrival=7.0),
        ]
        events = list(events_from_requests(requests).drain())
        assert [(e.kind, e.request.request_id) for e in events] == [
            (EventKind.ARRIVAL, 1),
            (EventKind.DEPARTURE, 1),
            (EventKind.ARRIVAL, 2),
        ]

    def test_interleaved_stream(self):
        requests = [
            _request(i, arrival=float(i), lifetime=2.5) for i in range(1, 5)
        ]
        events = list(events_from_requests(requests).drain())
        assert len(events) == 8
        assert [e.time for e in events] == sorted(e.time for e in events)


class TestRequestLifetimes:
    def test_departure_time(self):
        assert _request(1, arrival=3.0, lifetime=4.0).departure_time == 7.0
        assert _request(1, arrival=3.0).departure_time is None

    def test_validation(self):
        with pytest.raises(ValueError):
            _request(1, arrival=-1.0)
        with pytest.raises(ValueError):
            _request(1, lifetime=0.0)
        with pytest.raises(ValueError):
            _request(1, lifetime=-5.0)
