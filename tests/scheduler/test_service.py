"""Tests for the sharded scheduler service: single-shard bit-identity
with the monolithic engines, and the optimistic conflict-retry
property (every request placed or rejected exactly once)."""

import pytest

from repro.perfsim import workload_by_name
from repro.scheduler import (
    FleetScheduler,
    LifecycleScheduler,
    PlacementRequest,
    RebalanceConfig,
    ScheduleConfig,
    SchedulerService,
    ShardSummary,
    generate_request_stream,
)

#: The churn reference stream: small enough to run the ML policy end to
#: end in a test, busy enough to exercise departures, fragmentation
#: rejects, and the rebalancer (heavy-tailed lifetimes, one 32-vCPU size
#: mixed into the 8s).
CHURN_REFERENCE = dict(
    machine="amd",
    hosts=4,
    requests=60,
    seed=11,
    churn=True,
    arrival_rate=1.0,
    mean_lifetime=25.0,
    heavy_tail=True,
    vcpus=(8, 8, 8, 32),
)


def _request(request_id, *, vcpus, arrival=0.0, lifetime=None, workload="gcc"):
    return PlacementRequest(
        request_id=request_id,
        profile=workload_by_name(workload),
        vcpus=vcpus,
        arrival_time=arrival,
        lifetime=lifetime,
    )


def _fingerprints(decisions):
    """Everything semantically observable about a graded decision except
    wall-clock timing — the bit-for-bit equivalence contract."""
    out = []
    for graded in decisions:
        d = graded.decision
        out.append(
            (
                d.request.request_id,
                d.host_id,
                None
                if d.placement is None
                else (tuple(d.placement.nodes), d.placement.l2_share),
                d.placement_id,
                d.block_exact,
                d.reject_reason,
                graded.achieved_relative,
                graded.violated,
            )
        )
    return out


def _monolithic_churn_report(config):
    fleet = config.build_fleet()
    registry = config.build_registry()
    policy = config.build_policy(registry)
    engine = LifecycleScheduler(
        fleet,
        policy,
        registry=registry,
        config=RebalanceConfig(
            enabled=config.rebalance_enabled,
            reject_penalty_seconds=config.penalty_seconds,
        ),
    )
    return engine.run(config.build_stream())


class TestSingleShardEquivalence:
    def test_churn_stream_bit_identical_to_lifecycle_engine(self):
        """One shard, window 1: the service is the monolithic lifecycle
        engine behind the wire protocol — decisions, fragmentation
        timeline, and churn counters must match bit for bit."""
        config = ScheduleConfig(**CHURN_REFERENCE, shards=1, window=1)
        mono = _monolithic_churn_report(config)
        with SchedulerService(config) as service:
            svc = service.serve()

        assert _fingerprints(svc.decisions) == _fingerprints(mono.decisions)
        assert [s.to_dict() for s in svc.churn.fragmentation_timeline] == [
            s.to_dict() for s in mono.churn.fragmentation_timeline
        ]
        assert svc.churn.arrivals == mono.churn.arrivals
        assert svc.churn.departures == mono.churn.departures
        assert [m.to_dict() for m in svc.churn.migrations] == [
            m.to_dict() for m in mono.churn.migrations
        ]
        assert svc.service is not None
        assert svc.service.retries == 0  # one shard: nothing to retry on

    def test_windowing_does_not_change_decisions_without_departures(self):
        """step_batch decides a window's arrivals in arrival order against
        the same fleet state, so on a departure-free, reject-free stream
        a single shard's decisions are window-size independent.  (With
        departures, windows deliberately trade intra-window time order
        for batching: a departure inside the buffer waits for the
        flush.)"""
        from dataclasses import replace

        base = dict(CHURN_REFERENCE, hosts=64)  # roomy: no rejects
        stream = [
            replace(request, lifetime=None)  # immortal: no departures
            for request in ScheduleConfig(**base).build_stream()
        ]
        with SchedulerService(
            ScheduleConfig(**base, shards=1, window=1)
        ) as service:
            one = service.serve(stream)
        with SchedulerService(
            ScheduleConfig(**base, shards=1, window=8)
        ) as service:
            eight = service.serve(stream)
        assert one.churn.departures == 0
        assert one.rejected == 0
        assert _fingerprints(one.decisions) == _fingerprints(eight.decisions)

    def test_one_shot_bit_identical_to_fleet_scheduler(self):
        """Service.run (op=decide) against the one-shot FleetScheduler on
        a mixed fleet: same batches, same decisions."""
        config = ScheduleConfig(
            machine="mixed",
            hosts=6,
            requests=120,
            seed=3,
            vcpus=(4, 8, 16, 10),
            batch_size=32,
        )
        requests = generate_request_stream(
            config.requests, seed=config.seed, vcpus_choices=config.vcpus
        )
        registry = config.build_registry()
        scheduler = FleetScheduler(
            config.build_fleet(),
            config.build_policy(registry),
            registry=registry,
            batch_size=config.effective_batch_size,
        )
        mono = scheduler.run(requests)
        with SchedulerService(config) as service:
            svc = service.run(requests)
        assert _fingerprints(svc.decisions) == _fingerprints(mono.decisions)
        assert svc.placed == mono.placed
        assert svc.rejected == mono.rejected


class TestConflictRetry:
    def test_request_placed_or_rejected_exactly_once(self):
        """The service-level invariant: every arrival shows up in the
        merged report exactly once, placed or rejected, however many
        shards looked at it along the way."""
        config = ScheduleConfig(
            machine="amd",
            hosts=6,
            requests=120,
            seed=7,
            churn=True,
            arrival_rate=2.0,
            mean_lifetime=20.0,
            heavy_tail=True,
            vcpus=(8, 16, 32, 64),
            shards=3,
            window=4,
        )
        with SchedulerService(config) as service:
            report = service.serve()
        stats = report.service

        ids = sorted(g.decision.request.request_id for g in report.decisions)
        assert ids == sorted(set(ids))  # never double-placed / double-rejected
        assert len(ids) == stats.routed == report.churn.arrivals
        assert report.placed + report.rejected == stats.routed
        assert sum(stats.shard_requests) == stats.routed
        assert sum(stats.shard_placed) == report.placed
        assert stats.exhausted == report.rejected
        assert stats.recovered_by_retry <= stats.retries

    def test_exhausting_every_shard_rejects_once_with_capacity(self):
        """Three whole-host containers on a two-host, two-shard fleet:
        the third is tried on both shards (retries), rejected exactly
        once, and the merged reason is the fleet-wide truth: capacity."""
        config = ScheduleConfig(
            machine="amd",
            hosts=2,
            requests=3,
            policy="first-fit",
            shards=2,
            window=3,
            churn=True,
        )
        requests = [
            _request(i, vcpus=64, arrival=float(i)) for i in range(1, 4)
        ]
        with SchedulerService(config) as service:
            report = service.serve(requests)
        assert report.placed == 2
        assert report.rejected == 1
        assert report.service.retries >= 1
        assert report.service.exhausted == 1
        rejected = [g for g in report.decisions if not g.decision.placed]
        assert len(rejected) == 1
        assert rejected[0].decision.reject_reason == "capacity"

    def test_stale_summary_recovered_by_retry(self):
        """Force the router onto a full shard by resetting its summary
        cache to the all-free initial state: the shard's reject must be
        recovered on the next-best shard, not surfaced to the caller."""
        config = ScheduleConfig(
            machine="amd",
            hosts=2,
            requests=2,
            policy="first-fit",
            shards=2,
            window=1,
            churn=True,
        )
        with SchedulerService(config) as service:
            [first] = service._place_window(
                [(_request(1, vcpus=64), 0.0)], "arrive"
            )
            assert first.decision.placed
            full_shard = service._owner[1]
            # Undo everything the router learned: both shards look empty.
            service.summaries = [
                ShardSummary.initial(shard, service._shard_machines[shard])
                for shard in range(config.shards)
            ]
            [second] = service._place_window(
                [(_request(2, vcpus=64), 1.0)], "arrive"
            )
        assert second.decision.placed
        assert service._owner[2] != full_shard
        assert service.stats.retries == 1
        assert service.stats.recovered_by_retry == 1
        assert service.stats.exhausted == 0

    def test_departure_routed_to_owning_shard(self):
        """A placed container's departure frees its nodes on the shard
        that owns it, so a follow-up whole-host request fits again."""
        config = ScheduleConfig(
            machine="amd",
            hosts=2,
            requests=3,
            policy="first-fit",
            shards=2,
            window=1,
            churn=True,
        )
        requests = [
            _request(1, vcpus=64, arrival=0.0, lifetime=5.0),
            _request(2, vcpus=64, arrival=1.0),
            _request(3, vcpus=64, arrival=10.0),  # after #1 departs
        ]
        with SchedulerService(config) as service:
            report = service.serve(requests)
        assert report.placed == 3
        assert report.churn.departures == 1
        assert report.service.departures_routed == 1


class TestServiceSurface:
    def test_online_learning_is_rejected(self):
        config = ScheduleConfig(
            churn=True, online_learning=True, shards=2, hosts=8
        )
        with pytest.raises(ValueError, match="online learning"):
            SchedulerService(config)

    def test_max_events_bounds_ingestion(self):
        config = ScheduleConfig(**CHURN_REFERENCE, shards=2, window=4)
        with SchedulerService(config) as service:
            report = service.serve(max_events=20)
        # 20 lifecycle events is at most 20 arrivals, and a departure
        # whose arrival was cut off is dropped, not mis-routed.
        assert 0 < report.n_requests <= 20
        assert len(report.decisions) == report.n_requests

    def test_merged_report_utilization_matches_summaries(self):
        config = ScheduleConfig(**CHURN_REFERENCE, shards=2, window=4)
        with SchedulerService(config) as service:
            report = service.serve()
            used = sum(s.used_threads for s in service.summaries)
            total = sum(s.total_threads for s in service.summaries)
        assert report.thread_utilization == pytest.approx(used / total)
        assert report.service.n_shards == 2


@pytest.mark.slow
class TestProcessTransport:
    def test_process_workers_match_inline_decisions(self):
        """A process-mode worker rebuilds its world from the serialized
        config, so the wire protocol over a real pipe must yield the
        same decisions as the in-process transport."""
        base = dict(CHURN_REFERENCE, requests=30, shards=2, window=4)
        with SchedulerService(
            ScheduleConfig(**base, workers="inline")
        ) as service:
            inline = service.serve()
        with SchedulerService(
            ScheduleConfig(**base, workers="process")
        ) as service:
            process = service.serve()
        assert _fingerprints(process.decisions) == _fingerprints(
            inline.decisions
        )
        assert process.service.transport == "process"
