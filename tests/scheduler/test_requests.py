"""Tests for placement requests and the synthetic request stream."""

import pytest

from repro.scheduler import PlacementRequest, generate_request_stream
from repro.scheduler.requests import generate_request_stream as _direct
from repro.perfsim import workload_by_name


class TestPlacementRequest:
    def test_describe(self):
        request = PlacementRequest(
            request_id=3,
            profile=workload_by_name("WTbtree"),
            vcpus=16,
            goal_fraction=0.9,
        )
        text = request.describe()
        assert "req#3" in text and "WTbtree" in text and "90%" in text
        assert request.workload_name == "WTbtree"

    def test_best_effort_describe(self):
        request = PlacementRequest(
            request_id=1, profile=workload_by_name("gcc"), vcpus=8
        )
        assert "best-effort" in request.describe()

    def test_validation(self):
        profile = workload_by_name("gcc")
        with pytest.raises(ValueError):
            PlacementRequest(request_id=1, profile=profile, vcpus=0)
        with pytest.raises(ValueError):
            PlacementRequest(
                request_id=1, profile=profile, vcpus=4, goal_fraction=0.0
            )


class TestGenerateRequestStream:
    def test_deterministic(self):
        first = generate_request_stream(40, seed=5)
        second = generate_request_stream(40, seed=5)
        assert [
            (r.request_id, r.workload_name, r.vcpus, r.goal_fraction)
            for r in first
        ] == [
            (r.request_id, r.workload_name, r.vcpus, r.goal_fraction)
            for r in second
        ]

    def test_seed_changes_stream(self):
        a = generate_request_stream(40, seed=1)
        b = generate_request_stream(40, seed=2)
        assert [r.workload_name for r in a] != [r.workload_name for r in b]

    def test_heterogeneous(self):
        stream = generate_request_stream(
            80, seed=0, vcpus_choices=(8, 16), goal_choices=(None, 1.0)
        )
        assert {r.vcpus for r in stream} == {8, 16}
        assert {r.goal_fraction for r in stream} == {None, 1.0}
        assert len({r.workload_name for r in stream}) > 5
        assert [r.request_id for r in stream] == list(range(1, 81))

    def test_jittered_streams_are_synthetic(self):
        stream = generate_request_stream(10, seed=0, jitter=0.2)
        paper_names = {r.workload_name for r in generate_request_stream(200, seed=0)}
        assert all(r.workload_name not in paper_names for r in stream)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_request_stream(0)
        with pytest.raises(ValueError):
            generate_request_stream(5, vcpus_choices=())
        with pytest.raises(ValueError):
            generate_request_stream(5, goal_choices=())

    def test_reexport(self):
        assert generate_request_stream is _direct
