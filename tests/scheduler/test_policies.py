"""Tests for the fleet policies."""

import pytest

from repro.scheduler import (
    Fleet,
    FirstFitFleetPolicy,
    GoalAwareFleetPolicy,
    ModelRegistry,
    PlacementRequest,
    SpreadFleetPolicy,
    minimal_l2_share,
    minimal_node_count,
)
from repro.perfsim import workload_by_name
from repro.topology import amd_opteron_6272, intel_xeon_e7_4830_v3


def _request(request_id, vcpus=16, goal=None, workload="gcc"):
    return PlacementRequest(
        request_id=request_id,
        profile=workload_by_name(workload),
        vcpus=vcpus,
        goal_fraction=goal,
    )


@pytest.fixture(scope="module")
def registry():
    # Tiny models keep the suite fast; accuracy is not under test here.
    return ModelRegistry(n_estimators=6, n_synthetic=2, seed=0)


class TestHelpers:
    def test_minimal_node_count(self):
        machine = amd_opteron_6272()
        assert minimal_node_count(machine, 8) == 1
        assert minimal_node_count(machine, 16) == 2
        assert minimal_node_count(machine, 32) == 4
        with pytest.raises(ValueError):
            minimal_node_count(machine, machine.total_threads * 2)

    def test_minimal_l2_share(self):
        machine = amd_opteron_6272()  # 8 L2 groups x 2 threads per node
        assert minimal_l2_share(machine, 4) == 1
        assert minimal_l2_share(machine, 8) == 2
        with pytest.raises(ValueError):
            minimal_l2_share(machine, 3 * machine.threads_per_node)

    def test_minimal_shape_skips_l2_infeasible_node_counts(self):
        from repro.scheduler import minimal_shape

        machine = amd_opteron_6272()
        # 10 vCPUs: 2 nodes divide evenly but 5-per-node cannot balance
        # over 4 L2 groups; the cheapest realizable shape is 5 nodes.
        assert minimal_shape(machine, 10) == (5, 1)
        assert minimal_node_count(machine, 10) == 5


class TestHeuristicPolicies:
    def test_first_fit_packs_in_host_order(self):
        fleet = Fleet.homogeneous(amd_opteron_6272(), 3)
        policy = FirstFitFleetPolicy()
        decisions = policy.decide_batch(
            [_request(k, vcpus=16) for k in range(1, 5)], fleet
        )
        assert all(d.placed for d in decisions)
        # 16 vCPUs need two AMD nodes; four requests fill host 0 exactly.
        assert {d.host_id for d in decisions} == {0}

    def test_spread_balances(self):
        fleet = Fleet.homogeneous(amd_opteron_6272(), 3)
        decisions = SpreadFleetPolicy().decide_batch(
            [_request(k, vcpus=16) for k in range(1, 4)], fleet
        )
        assert sorted(d.host_id for d in decisions) == [0, 1, 2]

    def test_rejects_when_full(self):
        machine = amd_opteron_6272()
        fleet = Fleet.homogeneous(machine, 1)
        requests = [_request(k, vcpus=16) for k in range(1, 11)]
        decisions = FirstFitFleetPolicy().decide_batch(requests, fleet)
        placed = [d for d in decisions if d.placed]
        rejected = [d for d in decisions if not d.placed]
        assert len(placed) == machine.n_nodes // 2  # two nodes each
        assert rejected and all(d.reject_reason == "capacity" for d in rejected)

    def test_places_l2_awkward_vcpus(self):
        # Regression: 10 vCPUs cannot balance on the minimal even divisor
        # (2 nodes) of the AMD machine, but must still be placed (5 nodes).
        fleet = Fleet.homogeneous(amd_opteron_6272(), 1)
        decision = FirstFitFleetPolicy().decide_batch(
            [_request(1, vcpus=10)], fleet
        )[0]
        assert decision.placed
        assert decision.placement.n_nodes == 5

    def test_rejects_infeasible_vcpus(self):
        machine = amd_opteron_6272()
        fleet = Fleet.homogeneous(machine, 1)
        decisions = FirstFitFleetPolicy().decide_batch(
            [_request(1, vcpus=machine.total_threads * 2)], fleet
        )
        assert not decisions[0].placed
        assert decisions[0].reject_reason == "infeasible"

    def test_decision_describe(self):
        fleet = Fleet.homogeneous(amd_opteron_6272(), 1)
        decision = FirstFitFleetPolicy().decide_batch([_request(1)], fleet)[0]
        assert "host 0" in decision.describe()


class TestGoalAwarePolicy:
    def test_places_and_reports_prediction(self, registry):
        fleet = Fleet.homogeneous(amd_opteron_6272(), 2)
        policy = GoalAwareFleetPolicy(registry)
        decisions = policy.decide_batch(
            [_request(1, goal=0.9), _request(2, goal=None)], fleet
        )
        assert all(d.placed for d in decisions)
        for decision in decisions:
            assert decision.placement_id is not None
            assert decision.predicted_relative is not None
            assert decision.block_exact

    def test_batched_prediction_accounting(self, registry):
        fleet = Fleet.homogeneous(amd_opteron_6272(), 2)
        policy = GoalAwareFleetPolicy(registry)
        requests = [_request(k, vcpus=16) for k in range(1, 9)]
        policy.decide_batch(requests, fleet)
        assert policy.predict_calls == 1
        assert policy.predicted_rows == len(requests)

    def test_one_fused_forest_call_per_batch(self, registry):
        """A batch spanning several (shape, vcpus) keys — several distinct
        models — still costs exactly one fused forest call."""
        from repro.ml.arena import ARENA_STATS

        fleet = Fleet.mixed(
            [(amd_opteron_6272(), 2), (intel_xeon_e7_4830_v3(), 2)]
        )
        policy = GoalAwareFleetPolicy(registry)
        requests = [
            _request(k, vcpus=8 if k % 2 else 16) for k in range(1, 9)
        ]
        before = ARENA_STATS.fused_calls
        policy.decide_batch(requests, fleet)
        assert policy.predict_calls == 1
        assert policy.predicted_rows == 2 * len(requests), (
            "every request is predicted once per hosting shape"
        )
        assert ARENA_STATS.fused_calls == before + 1

    def test_target_cache_lru_eviction(self, registry):
        policy = GoalAwareFleetPolicy(registry)
        policy._target_cache_max = 3

        class _FakeSet:
            """Concern-free stand-in with the attributes the scorer needs."""

            class _Concerns:
                bandwidth_concern = None

            concerns = _Concerns()

            def __iter__(self):
                return iter(())

        sets = [_FakeSet() for _ in range(5)]
        for s in sets:
            policy._scorer_and_targets(s)
        assert len(policy._target_cache) == 3
        # Newest three survive, oldest two were evicted.
        assert id(sets[0]) not in policy._target_cache
        assert id(sets[1]) not in policy._target_cache
        assert id(sets[4]) in policy._target_cache
        # A hit refreshes recency: touch sets[2], insert a new set, and
        # sets[3] (now the stalest) is the one evicted.
        policy._scorer_and_targets(sets[2])
        policy._scorer_and_targets(_FakeSet())
        assert id(sets[2]) in policy._target_cache
        assert id(sets[3]) not in policy._target_cache

    def test_goal_bearing_prefers_cheap_placements(self, registry):
        fleet = Fleet.homogeneous(amd_opteron_6272(), 1)
        policy = GoalAwareFleetPolicy(registry)
        low_goal, best_effort = policy.decide_batch(
            [
                _request(1, goal=0.5, workload="swaptions"),
                _request(2, goal=None, workload="swaptions"),
            ],
            fleet,
        )
        # An easy goal is met with fewer (or equal) nodes than a
        # maximize-performance best-effort request needs.
        assert low_goal.placement.n_nodes <= best_effort.placement.n_nodes

    def test_mixed_fleet_uses_both_shapes(self, registry):
        fleet = Fleet.mixed(
            [(amd_opteron_6272(), 2), (intel_xeon_e7_4830_v3(), 2)]
        )
        policy = GoalAwareFleetPolicy(registry)
        requests = [_request(k, vcpus=8) for k in range(1, 13)]
        decisions = policy.decide_batch(requests, fleet)
        shapes = {
            fleet.hosts[d.host_id].machine.name
            for d in decisions
            if d.placed
        }
        assert len(shapes) == 2

    def test_rejects_when_fleet_full(self, registry):
        fleet = Fleet.homogeneous(amd_opteron_6272(), 1)
        policy = GoalAwareFleetPolicy(registry)
        decisions = policy.decide_batch(
            [_request(k, vcpus=16, goal=1.0) for k in range(1, 20)], fleet
        )
        rejected = [d for d in decisions if not d.placed]
        assert rejected
        assert all(d.reject_reason == "capacity" for d in rejected)

    def test_rejects_infeasible_everywhere(self, registry):
        machine = amd_opteron_6272()
        fleet = Fleet.homogeneous(machine, 1)
        policy = GoalAwareFleetPolicy(registry)
        decisions = policy.decide_batch(
            [_request(1, vcpus=machine.total_threads * 2)], fleet
        )
        assert decisions[0].reject_reason == "infeasible"

    def test_validation(self, registry):
        with pytest.raises(ValueError):
            GoalAwareFleetPolicy(registry, safety_margin=-0.1)
        with pytest.raises(ValueError):
            GoalAwareFleetPolicy(registry, best_effort_slack=0.0)


class TestRegistry:
    def test_memoizes_models_and_enumeration(self):
        registry = ModelRegistry(n_estimators=4, n_synthetic=2)
        machine = amd_opteron_6272()
        first = registry.model(machine, 16)
        second = registry.model(amd_opteron_6272(), 16)
        assert second is first
        assert registry.enumeration_runs() == registry.enumeration_cache.info().misses
        registry.placements(machine, 16)
        runs = registry.enumeration_runs()
        registry.placements(amd_opteron_6272(), 16)
        assert registry.enumeration_runs() == runs  # cache hit

    def test_naive_mode_reenumerates(self):
        registry = ModelRegistry(memoize_enumeration=False)
        machine = amd_opteron_6272()
        registry.placements(machine, 16)
        registry.placements(machine, 16)
        assert registry.uncached_enumerations == 2
        assert registry.enumeration_runs() == 2

    def test_canonical_pair_for_paper_configuration(self):
        registry = ModelRegistry()
        assert registry.input_pair(amd_opteron_6272(), 16) == (6, 12)
        # Non-paper vCPU count falls back to (first, last).
        pair = registry.input_pair(amd_opteron_6272(), 8)
        assert pair[0] == 0 and pair[1] > 0

    def test_baseline_placement_matches_pair(self):
        registry = ModelRegistry()
        machine = amd_opteron_6272()
        baseline = registry.baseline_placement(machine, 16)
        assert baseline is registry.placements(machine, 16)[6]
