"""Tests for the available-space capacity vectors.

The contract mirrors the fleet index's (``test_index.py``): after any
sequence of allocations, releases, and migrations, the incrementally
maintained per-class counts must equal what a from-scratch brute-force
re-enumeration over the hosts produces — at every step, not just at the
end.  The tracker piggybacks on the index's notification hooks, so the
randomized replay here also exercises the ``register``/``_resize``
forwarding path the memo-invalidation lint declares.
"""

import random

import pytest

from repro.core.placements import Placement
from repro.scheduler import (
    CapacityTracker,
    CapacityVector,
    Fleet,
    GoalAwareFleetPolicy,
    LifecycleScheduler,
    ModelRegistry,
    RebalanceConfig,
    brute_force_capacity,
    generate_churn_stream,
    initial_capacity,
    minimal_shape,
)
from repro.topology import amd_opteron_6272, intel_xeon_e7_4830_v3

#: 10 vCPUs is shape-dependent and 1024 fits nowhere — the interesting
#: feasibility edges ride along with the common classes.
CLASSES = (4, 8, 16, 32, 10, 1024)


def _mixed_fleet():
    return Fleet.mixed(
        [(amd_opteron_6272(), 6), (intel_xeon_e7_4830_v3(), 5)]
    )


class TestCapacityVector:
    def test_tracked_untracked_and_infeasible(self):
        vector = CapacityVector(counts={8: 5, 1024: 0})
        assert vector.count(8) == 5
        assert vector.count(1024) == 0  # tracked but infeasible: explicit 0
        assert vector.count(16) is None  # untracked: unknown, not zero
        assert vector.classes == (8, 1024)

    def test_describe(self):
        assert CapacityVector().describe() == "capacity: (no tracked classes)"
        assert CapacityVector(counts={16: 2, 8: 5}).describe() == (
            "capacity: 8v:5 16v:2"
        )


class TestInitialCapacity:
    def test_empty_fleet_matches_brute_force(self):
        fleet = _mixed_fleet()
        machines = [host.machine for host in fleet.hosts]
        vector = initial_capacity(machines, CLASSES)
        assert vector.counts == brute_force_capacity(fleet.hosts, CLASSES)
        assert vector.count(1024) == 0  # infeasible on every shape
        # AMD: 8 nodes of 8 threads; Intel: 4 nodes of 16 threads — the
        # one-node class count is just total nodes.
        assert vector.count(8) == 6 * 8 + 5 * 4

    def test_fresh_tracker_matches_initial(self):
        fleet = _mixed_fleet()
        tracker = CapacityTracker(fleet.index, CLASSES)
        machines = [host.machine for host in fleet.hosts]
        assert tracker.vector() == initial_capacity(machines, CLASSES)
        tracker.assert_consistent(fleet.hosts)

    def test_attach_to_live_fleet_backfills(self):
        # Attaching after allocations must fold in current bucket state,
        # not assume an empty fleet.
        fleet = _mixed_fleet()
        machine = fleet.hosts[0].machine
        fleet.hosts[0].allocate(
            1, Placement(machine, (0, 1, 2), 24, l2_share=2)
        )
        tracker = CapacityTracker(fleet.index, CLASSES)
        tracker.assert_consistent(fleet.hosts)
        assert tracker.count(8) == 6 * 8 + 5 * 4 - 3


class TestRandomizedReplay:
    """Replay random allocate/release/migration sequences and compare
    the incremental counts against brute force after every step."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_replay(self, seed):
        rng = random.Random(seed)
        fleet = _mixed_fleet()
        index = fleet.index
        tracker = CapacityTracker(index, CLASSES)
        live = {}  # request_id -> host_id
        next_id = 1
        for step in range(300):
            action = rng.random()
            if action < 0.55 or not live:
                host = rng.choice(fleet.hosts)
                vcpus = rng.choice([4, 8, 16, 32])
                try:
                    n_nodes, l2_share = minimal_shape(host.machine, vcpus)
                except ValueError:
                    continue
                free = sorted(host.free_nodes)
                if len(free) < n_nodes:
                    continue
                nodes = tuple(rng.sample(free, n_nodes))
                host.allocate(
                    next_id,
                    Placement(host.machine, nodes, vcpus, l2_share=l2_share),
                )
                live[next_id] = host.host_id
                next_id += 1
            elif action < 0.85:
                request_id = rng.choice(list(live))
                fleet.release(request_id)
                del live[request_id]
            else:
                request_id = rng.choice(list(live))
                source = fleet.hosts[live[request_id]]
                _, placement = fleet.release(request_id)
                del live[request_id]
                same_shape = [
                    h
                    for h in fleet.hosts
                    if h.machine.fingerprint()
                    == source.machine.fingerprint()
                    and h.n_free_nodes >= placement.n_nodes
                ]
                if not same_shape:
                    continue
                dest = rng.choice(same_shape)
                nodes = tuple(
                    rng.sample(sorted(dest.free_nodes), placement.n_nodes)
                )
                dest.allocate(
                    request_id,
                    Placement(
                        dest.machine,
                        nodes,
                        placement.vcpus,
                        l2_share=placement.l2_share,
                    ),
                )
                live[request_id] = dest.host_id
            tracker.assert_consistent(fleet.hosts)
            assert tracker.vector().counts == brute_force_capacity(
                fleet.hosts, CLASSES
            )
            # The index's own consistency check forwards to an attached
            # tracker — the hook the lint row points at.
            index.assert_consistent(fleet.hosts)


class TestChurnConsistency:
    def test_tracker_survives_lifecycle_churn(self):
        # A real engine run: arrivals, departures, and rebalancer
        # migrations all flow through the same index hooks.
        requests = generate_churn_stream(
            80, seed=2, arrival_rate=1.0, mean_lifetime=20.0
        )
        fleet = Fleet.homogeneous(amd_opteron_6272(), 3)
        tracker = CapacityTracker(fleet.index, (8, 16, 32))
        registry = ModelRegistry(seed=5)
        LifecycleScheduler(
            fleet,
            GoalAwareFleetPolicy(registry),
            registry=registry,
            config=RebalanceConfig(enabled=True),
        ).run(requests)
        tracker.assert_consistent(fleet.hosts)
        assert tracker.vector().counts == brute_force_capacity(
            fleet.hosts, (8, 16, 32)
        )

    def test_drift_is_reported_per_class(self):
        fleet = Fleet.homogeneous(amd_opteron_6272(), 2)
        tracker = CapacityTracker(fleet.index, (8,))
        tracker._counts[8] += 1  # simulate a missed notification
        with pytest.raises(AssertionError, match="vcpus 8: tracked 17"):
            tracker.assert_consistent(fleet.hosts)
