"""Admission control: screens, shed policies, brown-out, and the
equivalence gates.

The contracts under test:

* **Controller semantics** — feasibility/saturation screens, the three
  shed policies, deadline expiry, cancel/drain/flush, and brown-out
  hysteresis, all against a bare :class:`AdmissionController`.
* **Equivalence gates** — admission off is the PR-9 service (the
  pre-existing suites pin that); admission on under no overload changes
  *decisions* not at all — only the typed counters differ — on both
  transports and under fault injection.
* **Saturation** — with the fleet provably full, the front end rejects
  up front: the same requests are placed, the same requests are
  rejected (with ``admission:capacity`` standing in for the shard-side
  ``capacity``), and retry fan-outs are short-circuited.
* **Brown-out** — with a shard down for multiple rounds, best-effort
  arrivals are held/shed while strict-goal traffic keeps flowing, and
  every request is still decided exactly once.
"""

import dataclasses

import pytest

from repro.scheduler import (
    AdmissionController,
    FaultPlan,
    ScheduleConfig,
    SchedulerService,
    generate_request_stream,
)
from repro.scheduler.admission import (
    REASON_BROWNOUT,
    REASON_CAPACITY,
    REASON_DEADLINE,
    REASON_EVICTED,
    REASON_EXPIRED,
    REASON_INFEASIBLE,
    REASON_QUEUE_FULL,
)
from repro.topology import amd_opteron_6272
from tests.scheduler.test_faults import FAST_REFERENCE
from tests.scheduler.test_service import CHURN_REFERENCE, _fingerprints

#: Queue-shed reasons that must never hit strict-goal traffic.
_QUEUE_REASONS = (
    REASON_QUEUE_FULL,
    REASON_EVICTED,
    REASON_DEADLINE,
    REASON_EXPIRED,
    REASON_BROWNOUT,
)

#: The reference churn config with enough hosts that nothing is ever
#: rejected: with zero capacity rejects the admission path may not
#: change one byte of the report.
ROOMY = dict(CHURN_REFERENCE, hosts=10, shards=2, window=4)

#: A tiny fleet under a sustained burst of immortal containers: the
#: fleet fills early and every later arrival is provably unplaceable.
SATURATED = dict(
    machine="amd",
    hosts=2,
    requests=40,
    seed=11,
    churn=True,
    policy="first-fit",
    arrival_rate=5.0,
    mean_lifetime=100000.0,
    heavy_tail=True,
    vcpus=(8, 16),
    shards=2,
    window=4,
)


def _serve(config, faults=None):
    with SchedulerService(config, faults=faults) as service:
        report = service.serve()
        return report, service.stats


def _signature(report):
    return (
        _fingerprints(report.decisions),
        report.placed,
        report.rejected,
        report.churn.to_dict(),
    )


def _outcomes(report):
    """request_id -> (placed, reject_reason) with the admission-typed
    capacity reason folded onto the shard-side one."""
    out = {}
    for graded in report.decisions:
        decision = graded.decision
        reason = decision.reject_reason
        if reason == REASON_CAPACITY:
            reason = "capacity"
        out[decision.request.request_id] = (decision.placed, reason)
    return out


def _requests(n, *, vcpus=8, goal=None, seed=0):
    stream = generate_request_stream(n, seed=seed, vcpus_choices=(vcpus,))
    return [
        dataclasses.replace(request, goal_fraction=goal)
        for request in stream
    ]


class TestAdmissionController:
    def _controller(self, **overrides):
        values = dict(machines=[amd_opteron_6272()], classes=(8, 16))
        values.update(overrides)
        return AdmissionController(**values)

    def test_feasibility_screen(self):
        controller = self._controller()
        assert controller.feasible(8)
        assert not controller.feasible(1024)
        request = _requests(1, vcpus=1024)[0]
        decision, sheds = controller.screen(request, 0.0)
        assert decision.outcome == "reject"
        assert decision.reason == REASON_INFEASIBLE
        assert sheds == []
        assert controller.stats.rejected_infeasible == 1

    def test_saturation_screen(self):
        controller = self._controller()
        request = _requests(1)[0]
        decision, _ = controller.screen(request, 0.0, saturated=True)
        assert decision.reason == REASON_CAPACITY
        assert controller.stats.rejected_capacity == 1

    def test_admit_outside_brownout(self):
        controller = self._controller()
        decision, _ = controller.screen(_requests(1)[0], 0.0)
        assert decision.outcome == "admit"
        assert controller.stats.admitted == 1

    def test_brownout_holds_best_effort_not_strict(self):
        controller = self._controller()
        assert controller.observe(1, None) == "entered"
        best_effort, strict = _requests(1), _requests(1, goal=0.9, seed=1)
        held, _ = controller.screen(best_effort[0], 1.0)
        admitted, _ = controller.screen(strict[0], 1.0)
        assert held.outcome == "hold"
        assert admitted.outcome == "admit"
        assert controller.held_count == 1
        assert controller.is_held(best_effort[0].request_id)

    def test_drop_newest_rejects_overflow(self):
        controller = self._controller(queue_limit=2)
        controller.observe(1, None)
        first, second, third = _requests(3)
        controller.screen(first, 0.0)
        controller.screen(second, 0.0)
        decision, sheds = controller.screen(third, 0.0)
        assert decision.outcome == "reject"
        assert decision.reason == REASON_QUEUE_FULL
        assert sheds == []
        assert controller.held_count == 2

    def test_drop_oldest_evicts_head(self):
        controller = self._controller(
            queue_limit=2, shed_policy="drop-oldest"
        )
        controller.observe(1, None)
        first, second, third = _requests(3)
        controller.screen(first, 0.0)
        controller.screen(second, 1.0)
        decision, sheds = controller.screen(third, 2.0)
        assert decision.outcome == "hold"
        assert [
            (request.request_id, reason) for request, _, reason in sheds
        ] == [(first.request_id, REASON_EVICTED)]
        assert not controller.is_held(first.request_id)
        assert controller.is_held(third.request_id)

    def test_deadline_expiry_sheds_stale_heads(self):
        controller = self._controller(
            shed_policy="deadline", deadline_budget_s=5.0
        )
        controller.observe(1, None)
        first, second = _requests(2)
        controller.screen(first, 0.0)
        controller.screen(second, 4.0)
        assert controller.expire(4.5) == []
        sheds = controller.expire(6.0)
        assert [r.request_id for r, _, _ in sheds] == [first.request_id]
        assert sheds[0][2] == REASON_DEADLINE
        assert controller.held_count == 1

    def test_cancel_and_flush(self):
        controller = self._controller()
        controller.observe(1, None)
        first, second = _requests(2)
        controller.screen(first, 0.0)
        controller.screen(second, 0.0)
        shed = controller.cancel(first.request_id)
        assert shed is not None and shed[2] == REASON_EXPIRED
        assert controller.cancel(999) is None
        flushed = controller.flush()
        assert [r.request_id for r, _, _ in flushed] == [second.request_id]
        assert flushed[0][2] == REASON_BROWNOUT
        assert controller.held_count == 0

    def test_drain_releases_holds_in_order(self):
        controller = self._controller()
        controller.observe(1, None)
        held = _requests(3)
        for position, request in enumerate(held):
            controller.screen(request, float(position))
        drained = controller.drain()
        assert [r.request_id for r, _ in drained] == [
            r.request_id for r in held
        ]
        assert controller.stats.drained == 3
        assert controller.held_count == 0

    def test_hysteresis_band(self):
        controller = self._controller(brownout_watermark=0.5)
        assert controller.exit_watermark == 0.75
        assert controller.observe(0, 0.6) is None  # above entry watermark
        assert controller.observe(0, 0.4) == "entered"
        # Recovery to just above the entry watermark is not enough.
        assert controller.observe(0, 0.6) is None
        assert controller.in_brownout
        assert controller.observe(0, 0.8) == "exited"
        assert controller.stats.brownout_entries == 1
        assert controller.stats.brownout_exits == 1

    def test_down_shard_blocks_exit(self):
        controller = self._controller(brownout_watermark=0.5)
        controller.observe(1, 1.0)
        assert controller.in_brownout
        assert controller.observe(1, 1.0) is None  # still down: no exit
        assert controller.observe(0, 1.0) == "exited"

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="shed_policy"):
            self._controller(shed_policy="drop-random")
        with pytest.raises(ValueError, match="queue_limit"):
            self._controller(queue_limit=0)
        with pytest.raises(ValueError, match="brownout_watermark"):
            self._controller(brownout_watermark=1.5)
        with pytest.raises(ValueError, match="deadline_budget_s"):
            self._controller(deadline_budget_s=0.0)


class TestConfigValidation:
    def test_admission_knobs_require_admission(self):
        with pytest.raises(ValueError, match="require --admission"):
            ScheduleConfig(queue_limit=4).validate()
        with pytest.raises(ValueError, match="require --admission"):
            ScheduleConfig(brownout_watermark=0.5).validate()

    def test_shed_policy_membership(self):
        with pytest.raises(ValueError, match="unknown shed policy"):
            ScheduleConfig(admission=True, shed_policy="nope").validate()


class TestNoOverloadEquivalence:
    """Admission on, fleet never stressed: the report is bit-for-bit
    the admission-off report; only the typed counters differ."""

    def test_inline_signature_identical(self):
        protected, on_stats = _serve(
            ScheduleConfig(**ROOMY, admission=True)
        )
        baseline, off_stats = _serve(ScheduleConfig(**ROOMY))
        assert _signature(protected) == _signature(baseline)
        assert off_stats.admission is None
        assert on_stats.admission is not None
        assert on_stats.admission.offered == on_stats.admission.admitted
        assert on_stats.admission.rejected_total == 0
        assert on_stats.retries_short_circuited == 0

    def test_process_signature_identical(self):
        config = dict(ROOMY, requests=30, workers="process")
        protected, _ = _serve(ScheduleConfig(**config, admission=True))
        baseline, _ = _serve(ScheduleConfig(**config))
        assert _signature(protected) == _signature(baseline)

    def test_faulted_signature_identical(self):
        """Immediate recovery keeps every health observation UP, so
        admission stays out of brown-out even under the chaos plan."""
        config = dict(ROOMY, backoff_base_s=0.0)
        plan = FaultPlan.kill_each_shard_once(2, seed=config["seed"])
        protected, on_stats = _serve(
            ScheduleConfig(**config, admission=True), faults=plan
        )
        baseline, _ = _serve(ScheduleConfig(**config), faults=plan)
        assert _signature(protected) == _signature(baseline)
        assert on_stats.crashes == 2

    def test_decisions_identical_with_shard_side_rejects(self):
        """On the tighter reference fleet (shard-side capacity rejects
        exist) decisions still match decision-for-decision; only the
        skipped retry fan-outs' fragmentation samples may differ."""
        config = dict(CHURN_REFERENCE, shards=2, window=4)
        protected, on_stats = _serve(
            ScheduleConfig(**config, admission=True)
        )
        baseline, _ = _serve(ScheduleConfig(**config))
        assert _fingerprints(protected.decisions) == _fingerprints(
            baseline.decisions
        )
        assert protected.placed == baseline.placed
        assert protected.rejected == baseline.rejected
        assert on_stats.admission.rejected_capacity == 0


class TestSaturation:
    def test_front_end_rejects_match_shard_rejects(self):
        protected, on_stats = _serve(
            ScheduleConfig(**SATURATED, admission=True)
        )
        baseline, off_stats = _serve(ScheduleConfig(**SATURATED))
        # Same requests placed, same requests rejected — the typed
        # admission:capacity reason stands in for the shard-side one.
        assert _outcomes(protected) == _outcomes(baseline)
        assert on_stats.admission.rejected_capacity > 0
        # Front-end rejects never reach a shard: routing traffic drops.
        assert on_stats.routed < off_stats.routed
        # The satellite fix: with every summary proving zero capacity,
        # the retry path skips its pointless fan-outs too.
        assert on_stats.retries_short_circuited > 0
        assert on_stats.retries < off_stats.retries

    def test_admission_counters_reach_the_report(self):
        report, stats = _serve(ScheduleConfig(**SATURATED, admission=True))
        assert report.service is not None
        assert report.service.admission is not None
        assert (
            report.service.admission.rejected_capacity
            == stats.admission.rejected_capacity
        )
        ids = [d.decision.request.request_id for d in report.decisions]
        assert len(ids) == len(set(ids)) == SATURATED["requests"]


class TestBrownout:
    def _chaos_config(self, **overrides):
        values = dict(
            FAST_REFERENCE,
            shards=2,
            window=4,
            backoff_base_s=0.0,
            recovery_rounds=2,
            admission=True,
        )
        values.update(overrides)
        return ScheduleConfig(**values)

    def test_down_shard_sheds_best_effort_only(self):
        config = self._chaos_config()
        plan = FaultPlan.kill_each_shard_once(2, seed=config.seed)
        report, stats = _serve(config, faults=plan)
        admission = stats.admission
        assert admission.brownout_entries >= 1
        assert admission.held > 0
        # Strict-goal traffic is never queued or queue-shed.
        for graded in report.decisions:
            decision = graded.decision
            if decision.request.goal_fraction is not None:
                assert decision.reject_reason not in _QUEUE_REASONS
        # Strict-goal goodput survives the brown-out.
        assert any(
            g.decision.placed
            and g.decision.request.goal_fraction is not None
            for g in report.decisions
        )
        # Every request is decided exactly once, shed or placed.
        ids = [d.decision.request.request_id for d in report.decisions]
        assert len(ids) == len(set(ids)) == config.requests

    def test_recovery_exits_and_drains(self):
        config = self._chaos_config(requests=60)
        plan = FaultPlan.kill_each_shard_once(2, seed=config.seed)
        _, stats = _serve(config, faults=plan)
        admission = stats.admission
        assert admission.brownout_exits >= 1
        assert admission.drained > 0

    def test_queue_limit_bounds_the_held_backlog(self):
        config = self._chaos_config(queue_limit=2)
        plan = FaultPlan.kill_each_shard_once(2, seed=config.seed)
        report, stats = _serve(config, faults=plan)
        admission = stats.admission
        assert admission.held_peak <= 2
        assert admission.shed_total + admission.drained >= 0
        ids = [d.decision.request.request_id for d in report.decisions]
        assert len(ids) == len(set(ids)) == config.requests
